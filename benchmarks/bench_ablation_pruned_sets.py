"""Ablation -- partial pruned sets vs full group-level signatures (Section 5.1).

The paper stores only the routing-index value per node; this ablation
quantifies how much pruning the full signature would add and what it costs in
index size.
"""

from repro.experiments import figures


def test_ablation_pruned_sets(record_figure):
    result = record_figure(figures.ablation_pruned_sets)
    modes = {row["mode"]: row for row in result.rows}
    assert modes["full"]["pe"] >= modes["partial"]["pe"] - 1e-9
