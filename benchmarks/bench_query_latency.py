"""Query latency and throughput: columnar kernel vs reference traversal.

This is the repo's top-level perf trajectory for the serving workload
(ROADMAP north star): single-query latency percentiles, batch throughput,
and entities-scored work counters, for the reference pointer-walking
traversal vs the columnar kernel, on a single engine and a 2-shard
deployment.  Results are written both to the standard benchmark results
directory and -- as the machine-readable trajectory document -- to
``BENCH_query.json`` at the repository root.

Acceptance bars (checked by the standalone entry point's exit code):

* columnar single-query p50 latency >= 3x faster than reference;
* columnar batch throughput >= 5x the reference's.

``--smoke`` runs a down-scaled version for CI: it only asserts that the
columnar kernel is not slower than the reference (ratio >= 1.0), because
hosted runners are too noisy for the full bars -- and it writes its
document to ``benchmarks/results/query_latency_smoke.json`` so it can
never clobber the committed repo-root trajectory.

Run standalone (``python benchmarks/bench_query_latency.py [--smoke]``) or
via pytest; both print the data table and write the JSON documents.
"""

import argparse
import json
import statistics
import time
from pathlib import Path

from repro.core.engine import TraceQueryEngine
from repro.experiments.harness import ExperimentResult, resolve_scale
from repro.experiments.workloads import sample_queries, syn_workload
from repro.service.sharded import ShardedEngine

from conftest import RESULTS_DIR, benchmark_scale

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_query.json"
RESULTS_JSON = RESULTS_DIR / "query_latency.json"
#: Smoke runs write their trajectory document here instead of BENCH_JSON,
#: so a down-scaled CI/dev run can never clobber the committed repo-root
#: trajectory measured on the default workload.
SMOKE_JSON = RESULTS_DIR / "query_latency_smoke.json"

#: Full-run acceptance bars (the smoke bar is just "not slower").
SINGLE_SPEEDUP_TARGET = 3.0
BATCH_SPEEDUP_TARGET = 5.0

_K = 10


def _percentile(samples, fraction):
    ordered = sorted(samples)
    position = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[position]


def _measure_engine(engine, queries, rounds):
    """Per-query latency samples plus one batch-throughput measurement."""
    latencies = []
    entities_scored = 0
    engine.top_k(queries[0], k=_K)  # warm the kernel/compile outside timing
    for _ in range(rounds):
        for query in queries:
            started = time.perf_counter()
            result = engine.top_k(query, k=_K)
            latencies.append(time.perf_counter() - started)
            entities_scored += result.stats.entities_scored
    batch = engine.top_k_batch(queries, k=_K, workers=0)
    return {
        "queries_timed": len(latencies),
        "latency_p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "latency_p95_ms": _percentile(latencies, 0.95) * 1000.0,
        "latency_mean_ms": statistics.fmean(latencies) * 1000.0,
        "single_qps": len(latencies) / sum(latencies),
        "batch_qps": batch.queries_per_second,
        "batch_seconds": batch.wall_seconds,
        "entities_scored": entities_scored,
    }


def _engine_pair(dataset, num_shards, knobs):
    """(reference, columnar) engines -- single or sharded -- over one dataset."""
    if num_shards <= 1:
        reference = TraceQueryEngine(dataset, columnar_queries=False, **knobs).build()
        columnar = TraceQueryEngine(dataset, columnar_queries=True, **knobs).build()
    else:
        reference = ShardedEngine(
            dataset, num_shards=num_shards, columnar_queries=False, **knobs
        ).build()
        columnar = ShardedEngine(
            dataset, num_shards=num_shards, columnar_queries=True, **knobs
        ).build()
    return reference, columnar


def run_query_latency(scale=None, rounds=None, smoke=False) -> ExperimentResult:
    """Measure every (deployment, engine) combination and return the table."""
    scale = resolve_scale(scale)
    if rounds is None:
        rounds = 1 if smoke else 3
    dataset = syn_workload(scale)
    knobs = dict(num_hashes=scale.default_hashes, seed=1)
    queries = sample_queries(dataset, max(scale.num_queries, 8))

    result = ExperimentResult(
        name="query-latency (columnar vs reference)",
        metadata={
            "scale": scale.name,
            "num_hashes": scale.default_hashes,
            "entities": dataset.num_entities,
            "presences": dataset.num_presences,
            "queries": len(queries),
            "rounds": rounds,
            "k": _K,
            "smoke": smoke,
        },
    )

    document = {
        "benchmark": "query_latency",
        "workload": dict(result.metadata),
        "deployments": {},
    }
    for num_shards, label in ((1, "single"), (2, "sharded-2")):
        reference_engine, columnar_engine = _engine_pair(dataset, num_shards, knobs)
        measurements = {}
        for engine_label, engine in (
            ("reference", reference_engine),
            ("columnar", columnar_engine),
        ):
            measured = _measure_engine(engine, queries, rounds)
            measurements[engine_label] = measured
            result.add_row(deployment=label, engine=engine_label, **measured)
        speedups = {
            "latency_p50": (
                measurements["reference"]["latency_p50_ms"]
                / measurements["columnar"]["latency_p50_ms"]
            ),
            "latency_p95": (
                measurements["reference"]["latency_p95_ms"]
                / measurements["columnar"]["latency_p95_ms"]
            ),
            "batch_throughput": (
                measurements["columnar"]["batch_qps"]
                / measurements["reference"]["batch_qps"]
            ),
        }
        result.add_row(deployment=label, engine="speedup", **speedups)
        document["deployments"][label] = {**measurements, "speedup": speedups}

    single = document["deployments"]["single"]["speedup"]
    document["targets"] = {
        "single_latency_p50_speedup": {
            "target": 1.0 if smoke else SINGLE_SPEEDUP_TARGET,
            "measured": single["latency_p50"],
        },
        "batch_throughput_speedup": {
            "target": 1.0 if smoke else BATCH_SPEEDUP_TARGET,
            "measured": single["batch_throughput"],
        },
    }
    document["passed"] = all(
        entry["measured"] >= entry["target"] for entry in document["targets"].values()
    )
    result.metadata["speedup_single_p50"] = single["latency_p50"]
    result.metadata["speedup_batch"] = single["batch_throughput"]
    result.metadata["passed"] = document["passed"]
    result.metadata["document"] = document
    return result


def _finalise(result: ExperimentResult) -> ExperimentResult:
    print()
    print(result.to_table(max_rows=30))
    document = result.metadata.pop("document")
    RESULTS_DIR.mkdir(exist_ok=True)
    result.save_json(RESULTS_JSON)
    document_path = SMOKE_JSON if result.metadata["smoke"] else BENCH_JSON
    with open(document_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {RESULTS_JSON}")
    print(f"wrote {document_path}")
    for name, entry in document["targets"].items():
        print(f"{name}: {entry['measured']:.2f}x (target {entry['target']:.1f}x)")
    return result


def test_columnar_not_slower_than_reference(benchmark):
    """Pytest smoke: the columnar kernel must not lose to the reference."""
    result = benchmark.pedantic(
        lambda: run_query_latency(benchmark_scale(), smoke=True), rounds=1, iterations=1
    )
    _finalise(result)
    assert result.metadata["speedup_single_p50"] >= 1.0
    assert result.metadata["speedup_batch"] >= 1.0
    assert SMOKE_JSON.exists()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["tiny", "small", "medium"], default=None)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="down-scaled CI run: only asserts columnar >= reference",
    )
    arguments = parser.parse_args()
    scale = arguments.scale or ("tiny" if arguments.smoke else None)
    outcome = _finalise(
        run_query_latency(scale, rounds=arguments.rounds, smoke=arguments.smoke)
    )
    raise SystemExit(0 if outcome.metadata["passed"] else 1)
