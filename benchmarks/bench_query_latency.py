"""Query latency and throughput: columnar kernel vs reference traversal.

This is the repo's top-level perf trajectory for the serving workload
(ROADMAP north star): single-query latency percentiles, batch throughput,
and entities-scored work counters, for the reference pointer-walking
traversal vs the columnar kernel, on a single engine and a 2-shard
deployment.  Results are written both to the standard benchmark results
directory and -- as the machine-readable trajectory document -- to
``BENCH_query.json`` at the repository root.

Acceptance bars (checked by the standalone entry point's exit code):

* columnar single-query p50 latency >= 3x faster than reference;
* columnar batch throughput >= 5x the reference's.

``--smoke`` runs a down-scaled version for CI: it only asserts that the
columnar kernel is not slower than the reference (ratio >= 1.0), because
hosted runners are too noisy for the full bars -- and it writes its
document to ``benchmarks/results/query_latency_smoke.json`` so it can
never clobber the committed repo-root trajectory.

Run standalone (``python benchmarks/bench_query_latency.py [--smoke]``) or
via pytest; both print the data table and write the JSON documents.
"""

import argparse
import http.client
import json
import os
import statistics
import threading
import time
from pathlib import Path

from repro.core.engine import TraceQueryEngine
from repro.experiments.harness import ExperimentResult, resolve_scale
from repro.experiments.workloads import sample_queries, syn_workload
from repro.server.app import TraceServer, build_http_server
from repro.server.frontend import FrontendServer
from repro.service.sharded import ShardedEngine

from conftest import RESULTS_DIR, benchmark_scale

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_query.json"
RESULTS_JSON = RESULTS_DIR / "query_latency.json"
#: Smoke runs write their trajectory document here instead of BENCH_JSON,
#: so a down-scaled CI/dev run can never clobber the committed repo-root
#: trajectory measured on the default workload.
SMOKE_JSON = RESULTS_DIR / "query_latency_smoke.json"

#: Full-run acceptance bars (the smoke bar is just "not slower").
SINGLE_SPEEDUP_TARGET = 3.0
BATCH_SPEEDUP_TARGET = 5.0

_K = 10

#: ``repro serve --workers N`` settings measured by the saturating
#: multi-client mode (0 = the single-process in-process daemon).
MULTI_CLIENT_WORKER_COUNTS = (0, 1, 2, 4)
MULTI_CLIENT_THREADS = 8

#: Client discipline for the multi-client mode: a connect that hangs is a
#: different failure from a slow answer, so the budgets are split; both are
#: overridable from the command line (``--http-connect-timeout`` /
#: ``--http-read-timeout``).
HTTP_CONNECT_TIMEOUT = 10.0
HTTP_READ_TIMEOUT = 120.0

#: Connection-level failures worth one reconnect-and-resend: the peer reset
#: or dropped the keep-alive socket before a response was read (mirrors
#: ``repro.server.httpclient``, which the scenario backends use).
_RESET_ERRORS = (
    ConnectionResetError,
    ConnectionAbortedError,
    BrokenPipeError,
    http.client.RemoteDisconnected,
)


def _percentile(samples, fraction):
    ordered = sorted(samples)
    position = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[position]


def _measure_engine(engine, queries, rounds):
    """Per-query latency samples plus one batch-throughput measurement."""
    latencies = []
    entities_scored = 0
    engine.top_k(queries[0], k=_K)  # warm the kernel/compile outside timing
    for _ in range(rounds):
        for query in queries:
            started = time.perf_counter()
            result = engine.top_k(query, k=_K)
            latencies.append(time.perf_counter() - started)
            entities_scored += result.stats.entities_scored
    batch = engine.top_k_batch(queries, k=_K, workers=0)
    return {
        "queries_timed": len(latencies),
        "latency_p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "latency_p95_ms": _percentile(latencies, 0.95) * 1000.0,
        "latency_mean_ms": statistics.fmean(latencies) * 1000.0,
        "single_qps": len(latencies) / sum(latencies),
        "batch_qps": batch.queries_per_second,
        "batch_seconds": batch.wall_seconds,
        "entities_scored": entities_scored,
    }


def _engine_pair(dataset, num_shards, knobs):
    """(reference, columnar) engines -- single or sharded -- over one dataset."""
    if num_shards <= 1:
        reference = TraceQueryEngine(dataset, columnar_queries=False, **knobs).build()
        columnar = TraceQueryEngine(dataset, columnar_queries=True, **knobs).build()
    else:
        reference = ShardedEngine(
            dataset, num_shards=num_shards, columnar_queries=False, **knobs
        ).build()
        columnar = ShardedEngine(
            dataset, num_shards=num_shards, columnar_queries=True, **knobs
        ).build()
    return reference, columnar


def _http_connect(port, connect_timeout, read_timeout):
    """Keep-alive connection with split connect/read budgets."""
    connection = http.client.HTTPConnection(
        "127.0.0.1", port, timeout=connect_timeout
    )
    connection.connect()
    connection.sock.settimeout(read_timeout)
    return connection


def _measure_http_qps(
    port,
    queries,
    clients,
    requests_per_client,
    connect_timeout=HTTP_CONNECT_TIMEOUT,
    read_timeout=HTTP_READ_TIMEOUT,
):
    """Saturate a live daemon with keep-alive clients; return aggregate QPS.

    Every client holds one HTTP/1.1 connection and issues its requests
    back-to-back (closed-loop saturation); the wall clock runs from the
    post-warm-up barrier to the last response.  A reset keep-alive socket
    (daemon restart, dying worker) gets one reconnect-and-resend instead of
    failing the whole measurement; timeouts and HTTP errors still fail it.
    """
    barrier = threading.Barrier(clients + 1)
    errors = []
    headers = {"Content-Type": "application/json"}

    def exchange(connection, body):
        connection.request("POST", "/v1/topk", body=body, headers=headers)
        response = connection.getresponse()
        return response.status, response.read()

    def client(index):
        connection = _http_connect(port, connect_timeout, read_timeout)
        try:
            # Warm up: establish the connection (and the kernel compile /
            # worker adoption on the far side) outside the timed window.
            warm = json.dumps({"entity": queries[index % len(queries)], "k": _K})
            exchange(connection, warm)
            barrier.wait()
            for number in range(requests_per_client):
                entity = queries[(index + number) % len(queries)]
                body = json.dumps({"entity": entity, "k": _K})
                try:
                    status, payload = exchange(connection, body)
                except _RESET_ERRORS:
                    connection.close()
                    connection = _http_connect(port, connect_timeout, read_timeout)
                    status, payload = exchange(connection, body)
                if status != 200:
                    errors.append((status, payload))
                    return
            barrier.wait()
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            errors.append((0, repr(exc)))
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client, args=(index,)) for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    try:
        barrier.wait()
        elapsed = time.perf_counter() - started
    except threading.BrokenBarrierError:
        elapsed = time.perf_counter() - started
    for thread in threads:
        thread.join(timeout=300)
    if errors:
        raise RuntimeError(f"multi-client run failed: {errors[0]}")
    return (clients * requests_per_client) / elapsed


def run_multi_client(
    dataset,
    scale,
    smoke=False,
    worker_counts=MULTI_CLIENT_WORKER_COUNTS,
    connect_timeout=HTTP_CONNECT_TIMEOUT,
    read_timeout=HTTP_READ_TIMEOUT,
):
    """QPS versus ``--workers N`` under saturating concurrent clients.

    Returns the ``multi_client`` document section.  The section is
    deliberately *informational*: QPS scaling with worker processes is a
    property of the host's core count (recorded as ``cpus``), not of the
    code alone, so it never gates the benchmark's pass/fail verdict.
    """
    queries = sample_queries(dataset, max(resolve_scale(scale).num_queries, 8))
    requests_per_client = 25 if smoke else 80
    knobs = dict(num_hashes=resolve_scale(scale).default_hashes, seed=1)
    engine = TraceQueryEngine(dataset, columnar_queries=True, **knobs).build()
    section = {
        "cpus": os.cpu_count(),
        "clients": MULTI_CLIENT_THREADS,
        "requests_per_client": requests_per_client,
        "workers": {},
        "note": (
            "QPS under closed-loop saturation with keep-alive clients. "
            "Worker processes only add throughput when the host has spare "
            "cores; on a single-core host the multi-process tier trades a "
            "little IPC overhead for crash isolation and zero scaling."
        ),
    }
    for workers in worker_counts:
        if workers == 0:
            server = TraceServer(engine)
        else:
            server = FrontendServer(engine, workers=workers)
        httpd = build_http_server(server, port=0)
        port = httpd.server_address[1]
        serve_thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        serve_thread.start()
        try:
            qps = _measure_http_qps(
                port,
                queries,
                MULTI_CLIENT_THREADS,
                requests_per_client,
                connect_timeout=connect_timeout,
                read_timeout=read_timeout,
            )
        finally:
            httpd.shutdown()
            httpd.server_close()
            server.close()
            serve_thread.join(timeout=30)
        section["workers"][str(workers)] = {"qps": round(qps, 1)}
        print(f"multi-client: workers={workers} -> {qps:.1f} qps")
    baseline = section["workers"].get("0", {}).get("qps")
    top = section["workers"].get(str(max(worker_counts)), {}).get("qps")
    if baseline and top:
        section["speedup_at_max_workers"] = round(top / baseline, 3)
    return section


def run_tracing_overhead(dataset, scale, smoke=False):
    """p50 latency with tracing disabled vs sampling every query.

    Returns the ``tracing`` document section.  The instrumentation contract
    is "zero-cost when disabled, low single-digit percent when sampled";
    the section records both sides so the trajectory catches a regression
    that makes spans expensive.  Informational -- host noise at tiny scales
    swamps percent-level deltas, so it never gates ``passed``.
    """
    from repro.obs.trace import Tracer

    scale = resolve_scale(scale)
    queries = sample_queries(dataset, max(scale.num_queries, 8))
    knobs = dict(num_hashes=scale.default_hashes, seed=1)
    engine = TraceQueryEngine(dataset, columnar_queries=True, **knobs).build()
    tracer = Tracer(sample_rate=1.0)
    rounds = 2 if smoke else 5
    engine.top_k(queries[0], k=_K)  # warm the kernel outside timing
    untraced, traced = [], []
    # Interleaved per round, so drift (thermal, page cache) lands on both
    # sides equally instead of biasing whichever mode runs last.
    for _ in range(rounds):
        for query in queries:
            started = time.perf_counter()
            engine.top_k(query, k=_K)
            untraced.append(time.perf_counter() - started)
        for query in queries:
            trace = tracer.start_trace("bench.topk")
            started = time.perf_counter()
            engine.top_k(query, k=_K, trace=trace.context())
            traced.append(time.perf_counter() - started)
            tracer.finish(trace)
    untraced_p50 = _percentile(untraced, 0.50) * 1000.0
    traced_p50 = _percentile(traced, 0.50) * 1000.0
    section = {
        "queries_timed_per_mode": len(untraced),
        "untraced_p50_ms": round(untraced_p50, 4),
        "traced_p50_ms": round(traced_p50, 4),
        "overhead_p50": round(traced_p50 / untraced_p50, 3) if untraced_p50 else None,
        "note": (
            "sample_rate=1.0 on every query vs tracing disabled; target is "
            "<= 1.05 overhead, informational (does not gate passed)."
        ),
    }
    print(
        f"tracing overhead: untraced p50 {untraced_p50:.3f}ms, "
        f"traced p50 {traced_p50:.3f}ms ({section['overhead_p50']}x)"
    )
    return section


def run_query_latency(
    scale=None,
    rounds=None,
    smoke=False,
    connect_timeout=HTTP_CONNECT_TIMEOUT,
    read_timeout=HTTP_READ_TIMEOUT,
) -> ExperimentResult:
    """Measure every (deployment, engine) combination and return the table."""
    scale = resolve_scale(scale)
    if rounds is None:
        rounds = 1 if smoke else 3
    dataset = syn_workload(scale)
    knobs = dict(num_hashes=scale.default_hashes, seed=1)
    queries = sample_queries(dataset, max(scale.num_queries, 8))

    result = ExperimentResult(
        name="query-latency (columnar vs reference)",
        metadata={
            "scale": scale.name,
            "num_hashes": scale.default_hashes,
            "entities": dataset.num_entities,
            "presences": dataset.num_presences,
            "queries": len(queries),
            "rounds": rounds,
            "k": _K,
            "smoke": smoke,
        },
    )

    document = {
        "benchmark": "query_latency",
        "workload": dict(result.metadata),
        "deployments": {},
    }
    for num_shards, label in ((1, "single"), (2, "sharded-2")):
        reference_engine, columnar_engine = _engine_pair(dataset, num_shards, knobs)
        measurements = {}
        for engine_label, engine in (
            ("reference", reference_engine),
            ("columnar", columnar_engine),
        ):
            measured = _measure_engine(engine, queries, rounds)
            measurements[engine_label] = measured
            result.add_row(deployment=label, engine=engine_label, **measured)
        speedups = {
            "latency_p50": (
                measurements["reference"]["latency_p50_ms"]
                / measurements["columnar"]["latency_p50_ms"]
            ),
            "latency_p95": (
                measurements["reference"]["latency_p95_ms"]
                / measurements["columnar"]["latency_p95_ms"]
            ),
            "batch_throughput": (
                measurements["columnar"]["batch_qps"]
                / measurements["reference"]["batch_qps"]
            ),
        }
        result.add_row(deployment=label, engine="speedup", **speedups)
        document["deployments"][label] = {**measurements, "speedup": speedups}

    single = document["deployments"]["single"]["speedup"]
    document["targets"] = {
        "single_latency_p50_speedup": {
            "target": 1.0 if smoke else SINGLE_SPEEDUP_TARGET,
            "measured": single["latency_p50"],
        },
        "batch_throughput_speedup": {
            "target": 1.0 if smoke else BATCH_SPEEDUP_TARGET,
            "measured": single["batch_throughput"],
        },
    }
    document["passed"] = all(
        entry["measured"] >= entry["target"] for entry in document["targets"].values()
    )
    # Informational only (host-dependent): never feeds document["passed"].
    document["tracing"] = run_tracing_overhead(dataset, scale, smoke=smoke)
    document["multi_client"] = run_multi_client(
        dataset,
        scale,
        smoke=smoke,
        connect_timeout=connect_timeout,
        read_timeout=read_timeout,
    )
    result.metadata["speedup_single_p50"] = single["latency_p50"]
    result.metadata["speedup_batch"] = single["batch_throughput"]
    result.metadata["passed"] = document["passed"]
    result.metadata["document"] = document
    return result


def _finalise(result: ExperimentResult) -> ExperimentResult:
    print()
    print(result.to_table(max_rows=30))
    document = result.metadata.pop("document")
    RESULTS_DIR.mkdir(exist_ok=True)
    result.save_json(RESULTS_JSON)
    document_path = SMOKE_JSON if result.metadata["smoke"] else BENCH_JSON
    with open(document_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {RESULTS_JSON}")
    print(f"wrote {document_path}")
    for name, entry in document["targets"].items():
        print(f"{name}: {entry['measured']:.2f}x (target {entry['target']:.1f}x)")
    return result


def test_columnar_not_slower_than_reference(benchmark):
    """Pytest smoke: the columnar kernel must not lose to the reference."""
    result = benchmark.pedantic(
        lambda: run_query_latency(benchmark_scale(), smoke=True), rounds=1, iterations=1
    )
    _finalise(result)
    assert result.metadata["speedup_single_p50"] >= 1.0
    assert result.metadata["speedup_batch"] >= 1.0
    assert SMOKE_JSON.exists()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["tiny", "small", "medium"], default=None)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="down-scaled CI run: only asserts columnar >= reference",
    )
    parser.add_argument(
        "--http-connect-timeout",
        type=float,
        default=HTTP_CONNECT_TIMEOUT,
        help="seconds allowed for the multi-client mode's TCP connects",
    )
    parser.add_argument(
        "--http-read-timeout",
        type=float,
        default=HTTP_READ_TIMEOUT,
        help="seconds allowed for each multi-client response",
    )
    arguments = parser.parse_args()
    scale = arguments.scale or ("tiny" if arguments.smoke else None)
    outcome = _finalise(
        run_query_latency(
            scale,
            rounds=arguments.rounds,
            smoke=arguments.smoke,
            connect_timeout=arguments.http_connect_timeout,
            read_timeout=arguments.http_read_timeout,
        )
    )
    raise SystemExit(0 if outcome.metadata["passed"] else 1)
