"""Incremental kernel maintenance: delta-patch cost vs full recompile cost.

The claim behind ``EngineConfig.incremental_recompile`` (the default): after
a small mutation, splicing the touched entities into the compiled columnar
arrays (:meth:`~repro.core.columnar.ColumnarTree.patch`) costs time
proportional to the *delta*, while a full
:meth:`~repro.core.columnar.ColumnarTree.compile` costs time proportional
to the *dataset*.  Two sweeps pin it:

1. **Delta sweep** -- patch latency vs delta size (1, 2, 8, 32 touched
   entities) at a fixed dataset size, against the full-recompile cost of
   the same index.
2. **Dataset sweep** -- full-compile latency vs dataset size, with the
   patch latency of a fixed 2-entity delta alongside: the compile cost
   climbs with the dataset while the patch cost stays near-flat.

Results go to the standard results directory and -- as the machine-readable
trajectory document -- to ``BENCH_incremental.json`` at the repository
root.  Acceptance bars (standalone exit code):

* every measured patch is faster than the full recompile it replaces;
* across the dataset sweep, full-compile cost grows faster than patch cost
  (the "update cost tracks the delta, not the dataset" headline).

``--smoke`` is the down-scaled CI variant: same document shape, lenient
"patch is not slower" bar, written to
``benchmarks/results/incremental_update_smoke.json`` so it can never
clobber the committed repo-root trajectory.
"""

import argparse
import json
import time
from pathlib import Path

from repro.core.columnar import ColumnarTree
from repro.core.engine import TraceQueryEngine
from repro.experiments.harness import ExperimentResult, resolve_scale
from repro.experiments.workloads import syn_config
from repro.traces.events import PresenceInstance
from repro.mobility.hierarchical import generate_synthetic_dataset

from conftest import RESULTS_DIR, benchmark_scale

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_incremental.json"
RESULTS_JSON = RESULTS_DIR / "incremental_update.json"
SMOKE_JSON = RESULTS_DIR / "incremental_update_smoke.json"

DELTA_SWEEP = (1, 2, 8, 32)
_ROUNDS = 5
_FIXED_DELTA = 2  # entities touched per step of the dataset sweep


def _build_engine(scale, num_entities=None):
    overrides = {} if num_entities is None else {"num_entities": num_entities}
    dataset, _config = generate_synthetic_dataset(syn_config(scale, **overrides))
    return TraceQueryEngine(dataset, num_hashes=scale.default_hashes, seed=1).build()


def _measure_patch_vs_compile(engine, delta_entities, rounds=_ROUNDS, clock=[100_000]):
    """Best-of-``rounds`` (patch, full-compile) seconds for one delta size.

    Each round starts from a *fresh* kernel, touches ``delta_entities``
    entities with one appended event each, then times the patch and the
    from-scratch compile of the identical post-mutation index.  Patches are
    forced (``max_staleness=1.0``) so the large-delta points measure the
    splice itself rather than the staleness fallback, and every patched
    result is byte-checked against the fresh compile.
    """
    dataset = engine.dataset
    units = dataset.hierarchy.base_units
    population = sorted(dataset.entities)
    best_patch = best_compile = float("inf")
    for round_index in range(rounds):
        base = ColumnarTree.compile(engine._tree, dataset)
        touched = [
            population[(round_index * delta_entities + offset) % len(population)]
            for offset in range(delta_entities)
        ]
        # Distinct, ever-growing periods so appends never deduplicate.
        clock[0] += 10
        engine.add_records(
            [
                PresenceInstance(entity, units[index % len(units)], clock[0], clock[0] + 2)
                for index, entity in enumerate(touched)
            ]
        )
        started = time.perf_counter()
        patched = base.patch(engine._tree, dataset, max_staleness=1.0)
        patch_seconds = time.perf_counter() - started
        if patched is None:
            raise AssertionError(
                f"patch declined for a {delta_entities}-entity delta -- benchmark aborted"
            )
        started = time.perf_counter()
        fresh = ColumnarTree.compile(engine._tree, dataset)
        compile_seconds = time.perf_counter() - started
        patched_arrays = patched.export_arrays()
        for name, array in fresh.export_arrays().items():
            if array.tobytes() != patched_arrays[name].tobytes():
                raise AssertionError(
                    f"patched array {name!r} diverged from the fresh compile"
                )
        best_patch = min(best_patch, patch_seconds)
        best_compile = min(best_compile, compile_seconds)
    return best_patch, best_compile


def run_incremental_update(scale=None, smoke=False) -> ExperimentResult:
    scale = resolve_scale(scale)
    result = ExperimentResult(
        name="incremental update (delta patch vs full recompile)",
        metadata={
            "scale": scale.name,
            "num_hashes": scale.default_hashes,
            "smoke": smoke,
        },
    )

    # -- Delta sweep at the scale's full dataset size. --------------------
    engine = _build_engine(scale)
    fixed_entities = len(engine.dataset.entities)
    delta_rows = []
    for delta in DELTA_SWEEP:
        patch_seconds, compile_seconds = _measure_patch_vs_compile(engine, delta)
        speedup = compile_seconds / patch_seconds if patch_seconds > 0 else float("inf")
        row = {
            "delta_entities": delta,
            "patch_ms": patch_seconds * 1e3,
            "full_compile_ms": compile_seconds * 1e3,
            "speedup": speedup,
        }
        delta_rows.append(row)
        result.add_row(phase="delta_sweep", num_entities=fixed_entities, **row)

    # -- Dataset sweep with a fixed-size delta. ---------------------------
    sizes = sorted(
        {max(24, scale.num_entities // 4), scale.num_entities // 2, scale.num_entities}
    )
    dataset_rows = []
    for size in sizes:
        sized = _build_engine(scale, num_entities=size)
        patch_seconds, compile_seconds = _measure_patch_vs_compile(sized, _FIXED_DELTA)
        row = {
            "num_entities": len(sized.dataset.entities),
            "patch_ms": patch_seconds * 1e3,
            "full_compile_ms": compile_seconds * 1e3,
        }
        dataset_rows.append(row)
        result.add_row(phase="dataset_sweep", delta_entities=_FIXED_DELTA, **row)

    # Growth from the smallest to the largest dataset: the full compile
    # must climb faster than the fixed-delta patch.
    compile_growth = dataset_rows[-1]["full_compile_ms"] / dataset_rows[0]["full_compile_ms"]
    patch_growth = dataset_rows[-1]["patch_ms"] / dataset_rows[0]["patch_ms"]
    delta_proportionality = compile_growth / patch_growth

    document = {
        "benchmark": "incremental_update",
        "scale": scale.name,
        "num_hashes": scale.default_hashes,
        "delta_sweep": delta_rows,
        "dataset_sweep": dataset_rows,
        "targets": {
            # Smoke (hosted runners) only asserts "patch is not slower";
            # the committed trajectory must show a real win.
            "patch_faster_than_recompile": {
                "target": 1.0 if smoke else 2.0,
                "measured": min(row["speedup"] for row in delta_rows),
            },
            "update_cost_tracks_delta_not_dataset": {
                "target": 1.0,
                "measured": delta_proportionality,
            },
        },
    }
    document["passed"] = all(
        entry["measured"] >= entry["target"] for entry in document["targets"].values()
    )
    result.metadata["min_patch_speedup"] = document["targets"][
        "patch_faster_than_recompile"
    ]["measured"]
    result.metadata["delta_proportionality"] = delta_proportionality
    result.metadata["passed"] = document["passed"]
    result.metadata["document"] = document
    return result


def _finalise(result: ExperimentResult) -> ExperimentResult:
    print()
    print(result.to_table(max_rows=30))
    document = result.metadata.pop("document")
    RESULTS_DIR.mkdir(exist_ok=True)
    result.save_json(RESULTS_JSON)
    document_path = SMOKE_JSON if result.metadata["smoke"] else BENCH_JSON
    with open(document_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {RESULTS_JSON}")
    print(f"wrote {document_path}")
    for name, entry in document["targets"].items():
        print(f"{name}: {entry['measured']:.2f}x (target {entry['target']:.1f}x)")
    return result


def test_patch_cost_tracks_delta_not_dataset(benchmark):
    """Pytest smoke: patches must not lose to the recompile they replace."""
    result = benchmark.pedantic(
        lambda: run_incremental_update(benchmark_scale(), smoke=True),
        rounds=1,
        iterations=1,
    )
    _finalise(result)
    assert result.metadata["min_patch_speedup"] >= 1.0
    assert result.metadata["delta_proportionality"] >= 1.0
    assert SMOKE_JSON.exists()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["tiny", "small", "medium"], default=None)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="down-scaled run with the lenient 'not slower' bar; writes the "
        "document to the results directory instead of the repo root",
    )
    arguments = parser.parse_args()
    scale_name = arguments.scale or ("tiny" if arguments.smoke else None)
    outcome = _finalise(run_incremental_update(scale_name, smoke=arguments.smoke))
    raise SystemExit(0 if outcome.metadata["passed"] else 1)
