"""Shared helpers for the benchmark suite.

Every benchmark regenerates one figure of the paper's evaluation chapter by
calling the corresponding generator in :mod:`repro.experiments.figures` and
prints the resulting data table (run pytest with ``-s`` to see it, or check
the written CSVs under ``benchmarks/results/``).

The scale is controlled by the ``REPRO_SCALE`` environment variable
(``tiny`` / ``small`` / ``medium``); benchmarks default to ``tiny`` so that
``pytest benchmarks/ --benchmark-only`` finishes in a few minutes, while
``REPRO_SCALE=medium`` reproduces the paper-shaped sweeps.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

from repro.experiments.harness import ExperimentResult, resolve_scale

RESULTS_DIR = Path(__file__).parent / "results"


def benchmark_scale():
    """The scale used by the benchmark suite (defaults to tiny)."""
    return resolve_scale(os.environ.get("REPRO_SCALE", "tiny"))


@pytest.fixture
def record_figure(benchmark):
    """Run a figure generator once under pytest-benchmark and print its table.

    Usage::

        def test_figure_7_3(record_figure):
            record_figure(figures.figure_7_3)
    """

    def runner(generator, **kwargs) -> ExperimentResult:
        scale = benchmark_scale()
        result = benchmark.pedantic(
            lambda: generator(scale=scale, **kwargs), rounds=1, iterations=1
        )
        print()
        print(result.to_table(max_rows=60))
        RESULTS_DIR.mkdir(exist_ok=True)
        # Slugify the whole result name: the first-word-only scheme used to
        # collapse every "ablation: ..." result onto one (colon-bearing)
        # file, so the three ablations silently overwrote each other.
        slug = re.sub(r"[^a-z0-9]+", "_", result.name.lower()).strip("_")
        result.save_csv(RESULTS_DIR / f"{slug}.csv")
        return result

    return runner
