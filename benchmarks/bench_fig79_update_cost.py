"""Figure 7.9 -- update cost.

Time to apply a batch of new records through incremental MinSigTree updates,
for batches where 100%, 70% and 40% of the affected entities already exist.
The paper's shapes to reproduce: update time grows with n_h, and batches with
more brand-new entities are cheaper (no removal step).
"""

from repro.experiments import figures


def test_figure_7_9_update_cost(record_figure):
    result = record_figure(figures.figure_7_9)
    sweeps = sorted({row["num_hashes"] for row in result.rows})
    for fraction in {row["existing_fraction"] for row in result.rows}:
        series = sorted(
            result.filter(existing_fraction=fraction).rows, key=lambda r: r["num_hashes"]
        )
        assert all(row["update_seconds"] >= 0 for row in series)
    assert len(sweeps) >= 2
