"""Figure 7.5 -- pruning effectiveness vs ADM parameters.

Checked fraction while sweeping the ADM exponents u (level weight) and v
(duration weight) on both datasets.  The paper's shape to reproduce: larger v
(duration-dominated association) helps pruning; larger u (level-dominated)
hurts it, because AjPI level is not encoded in the signatures.
"""

from repro.experiments import figures


def test_figure_7_5_pe_vs_adm_parameters(record_figure):
    result = record_figure(figures.figure_7_5)
    for row in result.rows:
        assert 0.0 <= row["checked_fraction"] <= 1.0
    for dataset in ("SYN", "REAL(wifi)"):
        low_v = [row["checked_fraction"] for row in result.filter(dataset=dataset, v=2).rows]
        high_v = [row["checked_fraction"] for row in result.filter(dataset=dataset, v=5).rows]
        if low_v and high_v:
            assert sum(high_v) / len(high_v) <= sum(low_v) / len(low_v) + 0.1
