"""Ablation -- arg-max routing vs random routing (Section 4.2.2's grouping principle).

Routing entities on the position of their largest signature value keeps the
group-level signatures from collapsing towards zero; random routing destroys
that property and with it most of the pruning.
"""

from repro.experiments import figures


def test_ablation_grouping(record_figure):
    result = record_figure(figures.ablation_grouping)
    rows = {row["routing"]: row for row in result.rows}
    assert rows["argmax"]["pe"] >= rows["random"]["pe"] - 0.05
