"""Figure 7.1 -- data distribution.

Number of entities forming AjPIs with a query entity at each sp-index level,
and the per-level histogram of total AjPI duration, on the SYN and WiFi
(REAL-substitute) datasets.  The paper's shape to reproduce: counts decrease
monotonically from level 1 to level m, and most associated entities share
only short durations.
"""

from repro.experiments import figures


def test_figure_7_1_data_distribution(record_figure):
    result = record_figure(figures.figure_7_1)
    for dataset in ("SYN", "REAL(wifi)"):
        series = result.filter(series="ajpi_counts", dataset=dataset)
        values = [row["entities"] for row in sorted(series.rows, key=lambda r: r["level"])]
        assert values == sorted(values, reverse=True)
