"""Ablation -- the paper's lifted Theorem 4 bound vs the strictly admissible bound.

The lifted bound (artificial entity rebuilt from surviving base cells) prunes
aggressively but can in principle miss associations that exist only at coarse
levels; the per-level bound is safe but much looser.  This ablation reports
both PE and recall against the exhaustive oracle.
"""

from repro.experiments import figures


def test_ablation_bound_mode(record_figure):
    result = record_figure(figures.ablation_bound_mode)
    rows = {row["bound_mode"]: row for row in result.rows}
    assert rows["per_level"]["mean_recall"] >= 0.999
    assert rows["lift"]["mean_recall"] >= 0.8
    assert rows["lift"]["pe"] >= rows["per_level"]["pe"] - 1e-9
