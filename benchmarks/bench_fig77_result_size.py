"""Figure 7.7 -- pruning effectiveness vs result size (k), against the baseline.

PE of the MinSigTree with a smaller and a larger hash-function budget and of
the Section 7.2 cluster-bitmap baseline as k grows.  The paper's shapes to
reproduce: PE decreases slightly with k, more hash functions help, and the
MinSigTree dominates the baseline by a wide margin.
"""

from repro.experiments import figures


def test_figure_7_7_pe_vs_result_size(record_figure):
    result = record_figure(figures.figure_7_7)
    for dataset in ("SYN", "REAL(wifi)"):
        methods = {row["method"] for row in result.filter(dataset=dataset).rows}
        tree_methods = sorted(m for m in methods if m.startswith("minsigtree"))
        baseline_rows = result.filter(dataset=dataset, method="cluster-bitmap").rows
        tree_rows = result.filter(dataset=dataset, method=tree_methods[-1]).rows
        tree_pe = sum(row["pe"] for row in tree_rows) / len(tree_rows)
        baseline_pe = sum(row["pe"] for row in baseline_rows) / len(baseline_rows)
        # The MinSigTree should not lose to the baseline on average.
        assert tree_pe >= baseline_pe - 0.1
