"""Figure 7.6 -- search time vs memory size.

Simulated search time for Top-1/10/50 queries as the buffer pool grows from
10% to 100% of the data, with entity records laid out in MinSigTree leaf
order.  The paper's shape to reproduce: search time decreases (super-linearly
at first) as the memory fraction grows, then flattens around 40-50%.
"""

from repro.experiments import figures


def test_figure_7_6_search_time_vs_memory(record_figure):
    result = record_figure(figures.figure_7_6)
    for dataset in ("SYN", "REAL(wifi)"):
        for k in {row["k"] for row in result.rows}:
            series = sorted(
                result.filter(dataset=dataset, k=k).rows, key=lambda r: r["memory_fraction"]
            )
            times = [row["simulated_ms"] for row in series]
            assert times[-1] <= times[0]
