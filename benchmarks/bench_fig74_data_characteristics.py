"""Figure 7.4 -- pruning effectiveness vs data characteristics.

Checked fraction for Top-1/10/50 queries while sweeping each hierarchical-IM
parameter (alpha, beta, rho, gamma, zeta, a, b, m) one at a time.  The
paper's shapes to reproduce: alpha/gamma/zeta sweeps trend (higher locality
-> fewer entities checked), beta/a/b sweeps are nearly flat, larger m
increases the checked fraction.
"""

from repro.experiments import figures


def test_figure_7_4_pe_vs_data_characteristics(record_figure):
    result = record_figure(figures.figure_7_4)
    assert {row["parameter"] for row in result.rows} >= {"alpha", "beta", "rho", "gamma", "zeta", "a", "b", "m"}
    for row in result.rows:
        assert 0.0 <= row["checked_fraction"] <= 1.0
