"""Micro-benchmarks of the core operations (not tied to a specific figure).

These measure the building blocks whose costs the paper's Section 4.3 / 6.4
analysis is about: signature computation (both the per-entity path and the
vectorised bulk pipeline), MinSigTree construction, a single top-k query,
batched top-k throughput, a single incremental update, and the brute-force
scan they are all compared against.

``test_dataset_signing_*`` pit the two signature paths against each other on
the same workload: the bulk pipeline is expected to win by >= 3x on the
medium scale while producing bitwise-identical matrices (the equivalence
suite pins the latter).
"""

import pytest

from repro.baselines import BruteForceTopK
from repro.core.engine import TraceQueryEngine
from repro.core.hashing import HierarchicalHashFamily
from repro.core.minsigtree import MinSigTree
from repro.core.signatures import SignatureComputer
from repro.experiments.workloads import sample_queries, syn_workload
from repro.traces.events import PresenceInstance

from conftest import benchmark_scale


@pytest.fixture(scope="module")
def dataset():
    return syn_workload(benchmark_scale())


@pytest.fixture(scope="module")
def engine(dataset):
    scale = benchmark_scale()
    return TraceQueryEngine(dataset, num_hashes=scale.default_hashes, seed=1).build()


def _fresh_computer(dataset):
    """A signature computer over a cold hash family (no warm cell cache)."""
    scale = benchmark_scale()
    family = HierarchicalHashFamily(
        dataset.hierarchy,
        horizon=max(dataset.horizon, 1),
        num_hashes=scale.default_hashes,
        seed=1,
    )
    return SignatureComputer(family)


def test_signature_computation(benchmark, dataset, engine):
    computer = SignatureComputer(engine.hash_family)
    entity = dataset.entities[0]
    sequence = dataset.cell_sequence(entity)
    benchmark(computer.signature_matrix, sequence)


def test_dataset_signing_per_entity(benchmark, dataset):
    """Old build path: per-entity signing through the per-cell cache."""
    benchmark.pedantic(
        lambda: _fresh_computer(dataset).signatures_for_dataset(dataset, method="per_entity"),
        rounds=3,
        iterations=1,
    )


def test_dataset_signing_bulk(benchmark, dataset):
    """New build path: the vectorised bulk-signature pipeline."""
    benchmark.pedantic(
        lambda: _fresh_computer(dataset).bulk_signature_matrices(dataset),
        rounds=3,
        iterations=1,
    )


def test_minsigtree_build(benchmark, dataset, engine):
    computer = SignatureComputer(engine.hash_family)
    signatures = computer.signatures_for_dataset(dataset)
    benchmark.pedantic(
        MinSigTree.build,
        args=(signatures,),
        kwargs=dict(num_levels=dataset.num_levels, num_hashes=engine.config.num_hashes),
        rounds=3,
        iterations=1,
    )


def test_top_k_query(benchmark, dataset, engine):
    query = dataset.entities[len(dataset.entities) // 2]
    benchmark(engine.top_k, query, 10)


def test_batch_query_throughput(benchmark, dataset, engine):
    """Batched top-k over the shared executor (serial fan-out)."""
    queries = sample_queries(dataset, benchmark_scale().num_queries)
    benchmark.pedantic(engine.top_k_batch, args=(queries, 10), rounds=3, iterations=1)


def test_batch_query_throughput_workers(benchmark, dataset, engine):
    """Batched top-k with thread fan-out (results identical to serial)."""
    queries = sample_queries(dataset, benchmark_scale().num_queries)
    benchmark.pedantic(
        lambda: engine.top_k_batch(queries, 10, workers=4), rounds=3, iterations=1
    )


def test_brute_force_query(benchmark, dataset, engine):
    oracle = BruteForceTopK(dataset, engine.measure)
    query = dataset.entities[len(dataset.entities) // 2]
    benchmark(oracle.search, query, 10)


def test_incremental_update(benchmark, dataset, engine):
    base_unit = dataset.hierarchy.base_units[0]
    counter = iter(range(10_000_000))

    def update_once():
        entity = f"bench-new-{next(counter)}"
        engine.add_records([PresenceInstance(entity, base_unit, 0, 1)])

    benchmark.pedantic(update_once, rounds=20, iterations=1)
