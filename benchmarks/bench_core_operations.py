"""Micro-benchmarks of the core operations (not tied to a specific figure).

These measure the building blocks whose costs the paper's Section 4.3 / 6.4
analysis is about: signature computation, MinSigTree construction, a single
top-k query, a single incremental update, and the brute-force scan they are
all compared against.
"""

import pytest

from repro.baselines import BruteForceTopK
from repro.core.engine import TraceQueryEngine
from repro.core.minsigtree import MinSigTree
from repro.core.signatures import SignatureComputer
from repro.experiments.workloads import syn_workload
from repro.traces.events import PresenceInstance

from conftest import benchmark_scale


@pytest.fixture(scope="module")
def dataset():
    return syn_workload(benchmark_scale())


@pytest.fixture(scope="module")
def engine(dataset):
    scale = benchmark_scale()
    return TraceQueryEngine(dataset, num_hashes=scale.default_hashes, seed=1).build()


def test_signature_computation(benchmark, dataset, engine):
    computer = SignatureComputer(engine.hash_family)
    entity = dataset.entities[0]
    sequence = dataset.cell_sequence(entity)
    benchmark(computer.signature_matrix, sequence)


def test_minsigtree_build(benchmark, dataset, engine):
    computer = SignatureComputer(engine.hash_family)
    signatures = computer.signatures_for_dataset(dataset)
    benchmark.pedantic(
        MinSigTree.build,
        args=(signatures,),
        kwargs=dict(num_levels=dataset.num_levels, num_hashes=engine.config.num_hashes),
        rounds=3,
        iterations=1,
    )


def test_top_k_query(benchmark, dataset, engine):
    query = dataset.entities[len(dataset.entities) // 2]
    benchmark(engine.top_k, query, 10)


def test_brute_force_query(benchmark, dataset, engine):
    oracle = BruteForceTopK(dataset, engine.measure)
    query = dataset.entities[len(dataset.entities) // 2]
    benchmark(oracle.search, query, 10)


def test_incremental_update(benchmark, dataset, engine):
    base_unit = dataset.hierarchy.base_units[0]
    counter = iter(range(10_000_000))

    def update_once():
        entity = f"bench-new-{next(counter)}"
        engine.add_records([PresenceInstance(entity, base_unit, 0, 1)])

    benchmark.pedantic(update_once, rounds=20, iterations=1)
