"""Figure 7.2 -- association degree distribution.

Histogram of association degrees between a query entity and the population
for ADM parameter combinations (u, v) in {2, 5}^2.  The paper's shape to
reproduce: most entities have a low degree with any given query entity, and
(u=2, v=5) assigns high degrees to the fewest entities.
"""

from repro.experiments import figures


def test_figure_7_2_adm_distribution(record_figure):
    result = record_figure(figures.figure_7_2)
    for dataset in ("SYN", "REAL(wifi)"):
        rows = result.filter(dataset=dataset, u=2, v=2).rows
        low = sum(row["entities"] for row in rows if row["degree_from"] < 0.3)
        high = sum(row["entities"] for row in rows if row["degree_from"] >= 0.5)
        assert low >= high
