"""Snapshot cold-start vs full rebuild, and sharded vs single-engine queries.

Two serving questions behind the `repro.service` / `repro.storage.snapshot`
subsystem:

1. **Cold start.**  How much faster does a query process come up from a
   snapshot (`TraceQueryEngine.load`) than by re-parsing the trace CSV and
   re-signing the whole dataset?  The acceptance bar is >= 5x at the bench's
   default (tiny) scale; the gap widens with scale because signing grows
   with ``|E| * C * m * n_h`` while the snapshot load is a flat array read.
2. **Sharded serving.**  What does fanning a query out over N entity
   partitions cost (or save) relative to one engine over everything?

Run standalone (``python benchmarks/bench_snapshot_vs_rebuild.py``) or via
pytest; both print the data table and write the standard JSON results
document to ``benchmarks/results/snapshot_vs_rebuild.json``.
"""

import time
from pathlib import Path

from repro.core.engine import TraceQueryEngine
from repro.experiments.harness import ExperimentResult, resolve_scale
from repro.experiments.workloads import sample_queries, syn_workload
from repro.service.sharded import ShardedEngine
from repro.traces.io import (
    load_hierarchy_json,
    load_traces_csv,
    write_hierarchy_json,
    write_traces_csv,
)

from conftest import RESULTS_DIR, benchmark_scale

RESULTS_JSON = RESULTS_DIR / "snapshot_vs_rebuild.json"

_COLD_START_ROUNDS = 3
_SHARD_SWEEP = (1, 2, 4)


def _best_of(rounds, operation):
    best = float("inf")
    value = None
    for _ in range(rounds):
        started = time.perf_counter()
        value = operation()
        best = min(best, time.perf_counter() - started)
    return best, value


def run_snapshot_vs_rebuild(scale=None, workdir=None) -> ExperimentResult:
    """Run both comparisons and return the populated result."""
    scale = resolve_scale(scale)
    workdir = Path(workdir) if workdir is not None else RESULTS_DIR / "_snapshot_bench"
    workdir.mkdir(parents=True, exist_ok=True)

    dataset = syn_workload(scale)
    knobs = dict(num_hashes=scale.default_hashes, seed=1)

    traces_path = workdir / "traces.csv"
    hierarchy_path = workdir / "hierarchy.json"
    snapshot_path = workdir / "snapshot"
    write_traces_csv(dataset, traces_path)
    write_hierarchy_json(dataset.hierarchy, hierarchy_path)
    original = TraceQueryEngine(dataset, **knobs).build()
    original.save(snapshot_path)

    result = ExperimentResult(
        name="snapshot-vs-rebuild (cold start and sharded serving)",
        metadata={"scale": scale.name, "num_hashes": scale.default_hashes},
    )

    # -- Cold start: CSV parse + sign + build vs snapshot load. ----------
    def rebuild():
        hierarchy = load_hierarchy_json(hierarchy_path)
        return TraceQueryEngine(load_traces_csv(traces_path, hierarchy), **knobs).build()

    def cold_start():
        return TraceQueryEngine.load(snapshot_path)

    rebuild_seconds, rebuilt = _best_of(_COLD_START_ROUNDS, rebuild)
    load_seconds, loaded = _best_of(_COLD_START_ROUNDS, cold_start)
    # Sanity: the snapshot must restore the original engine exactly.  (The
    # CSV rebuild is the timing baseline only -- the interchange hierarchy
    # format sorts units, which permutes the hash family, so the rebuilt
    # engine is an equivalent index rather than a bit-identical one.)
    sanity_query = dataset.entities[0]
    if loaded.top_k(sanity_query, k=5).items != original.top_k(sanity_query, k=5).items:
        raise AssertionError("snapshot load diverged from the saved engine -- benchmark aborted")
    speedup = rebuild_seconds / load_seconds if load_seconds > 0 else float("inf")
    result.add_row(
        phase="cold_start",
        method="rebuild_from_csv",
        seconds=rebuild_seconds,
        entities=dataset.num_entities,
    )
    result.add_row(
        phase="cold_start",
        method="snapshot_load",
        seconds=load_seconds,
        entities=dataset.num_entities,
    )
    result.add_row(phase="cold_start", method="speedup", speedup=speedup)
    result.metadata["snapshot_speedup"] = speedup

    # -- Query latency: single engine vs sharded fan-out. ----------------
    queries = sample_queries(dataset, scale.num_queries)
    for num_shards in _SHARD_SWEEP:
        if num_shards == 1:
            engine = original
            label = "single"
        else:
            engine = ShardedEngine(dataset, num_shards=num_shards, **knobs).build()
            label = f"sharded-{num_shards}"
        batch = engine.top_k_batch(queries, k=10)
        result.add_row(
            phase="query",
            method=label,
            num_shards=num_shards,
            queries=len(queries),
            seconds=batch.wall_seconds,
            queries_per_second=batch.queries_per_second,
            entities_scored=batch.total_entities_scored,
        )
    return result


def _finalise(result: ExperimentResult) -> ExperimentResult:
    print()
    print(result.to_table(max_rows=30))
    RESULTS_DIR.mkdir(exist_ok=True)
    result.save_json(RESULTS_JSON)
    print(f"\nwrote {RESULTS_JSON}")
    return result


def test_snapshot_cold_start_speedup(benchmark, tmp_path):
    """Snapshot cold start must beat the CSV rebuild by >= 5x."""
    result = benchmark.pedantic(
        lambda: run_snapshot_vs_rebuild(benchmark_scale(), tmp_path),
        rounds=1,
        iterations=1,
    )
    _finalise(result)
    assert result.metadata["snapshot_speedup"] >= 5.0
    sharded_rows = [row for row in result.rows if row.get("phase") == "query"]
    assert {row["num_shards"] for row in sharded_rows} == set(_SHARD_SWEEP)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["tiny", "small", "medium"], default=None)
    arguments = parser.parse_args()
    outcome = _finalise(run_snapshot_vs_rebuild(arguments.scale))
    raise SystemExit(0 if outcome.metadata["snapshot_speedup"] >= 5.0 else 1)
