"""Figure 7.8 -- indexing cost.

Index construction time and MinSigTree size over the hash-function sweep on
both datasets.  The paper's shapes to reproduce: construction time grows
roughly linearly with n_h, and the index size grows with n_h but stays small
relative to the data.  The report also pits the old per-entity build path
against the vectorised bulk pipeline (``per_entity_seconds`` vs
``indexing_seconds``).
"""

from repro.experiments import figures


def test_figure_7_8_indexing_cost(record_figure):
    result = record_figure(figures.figure_7_8)
    for dataset in ("SYN", "REAL(wifi)"):
        series = sorted(result.filter(dataset=dataset).rows, key=lambda r: r["num_hashes"])
        times = [row["indexing_seconds"] for row in series]
        sizes = [row["index_bytes"] for row in series]
        assert times[-1] >= times[0]
        # Both build paths must have been timed; speed ratios are hardware
        # dependent (and noisy at tiny scale), so only require presence and
        # positivity here -- bench_core_operations carries the comparison.
        assert all(row["per_entity_seconds"] > 0 for row in series)
        assert all(row["bulk_speedup"] > 0 for row in series)
        # The node count (hence size) is data dependent and can dip slightly
        # at small scale; require it to stay positive and of stable magnitude.
        assert all(size > 0 for size in sizes)
        assert max(sizes) <= 4 * min(sizes)
