"""Figure 7.3 -- pruning effectiveness vs the number of hash functions.

Measured PE of the MinSigTree and the Section 6.3 model prediction over the
hash-function sweep, on both datasets.  The paper's shape to reproduce:
PE grows with n_h and saturates; the prediction tracks the measurement.
"""

from repro.experiments import figures


def test_figure_7_3_pe_vs_hash_functions(record_figure):
    result = record_figure(figures.figure_7_3)
    for dataset in ("SYN", "REAL(wifi)"):
        series = sorted(result.filter(dataset=dataset).rows, key=lambda r: r["num_hashes"])
        measured = [row["measured_pe"] for row in series]
        # More hash functions never hurt pruning (allow small noise).
        assert measured[-1] >= measured[0] - 0.05
