"""Property-based tests for the Section 3.2 measure contract (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.measures import DiceADM, FScoreADM, HierarchicalADM, JaccardADM, OverlapADM

MEASURES = [
    HierarchicalADM(num_levels=3),
    HierarchicalADM(num_levels=3, u=4, v=3),
    JaccardADM(num_levels=3),
    DiceADM(num_levels=3),
    OverlapADM(num_levels=3),
    FScoreADM(num_levels=3, beta=0.5),
]


@st.composite
def overlap_triples(draw, num_levels: int = 3):
    """Per-level (|A|, |B|, |A ∩ B|) triples consistent with real cell sets."""
    triples = []
    for _ in range(num_levels):
        size_a = draw(st.integers(min_value=0, max_value=60))
        size_b = draw(st.integers(min_value=0, max_value=60))
        shared = draw(st.integers(min_value=0, max_value=min(size_a, size_b)))
        triples.append((size_a, size_b, shared))
    return triples


@given(overlap_triples())
@settings(max_examples=200, deadline=None)
def test_normalisation(triples):
    """Every measure stays inside [0, 1] for any consistent overlap profile."""
    for measure in MEASURES:
        value = measure.score_levels(triples)
        assert -1e-9 <= value <= 1.0 + 1e-9


@given(overlap_triples(), st.integers(min_value=0, max_value=2))
@settings(max_examples=200, deadline=None)
def test_monotone_in_intersection(triples, level_index):
    """Growing one level's intersection (within bounds) never lowers the score."""
    size_a, size_b, shared = triples[level_index]
    if shared >= min(size_a, size_b):
        return
    grown = list(triples)
    grown[level_index] = (size_a, size_b, shared + 1)
    for measure in MEASURES:
        assert measure.score_levels(grown) >= measure.score_levels(triples) - 1e-12


@given(overlap_triples(), st.integers(min_value=0, max_value=2), st.integers(min_value=1, max_value=20))
@settings(max_examples=200, deadline=None)
def test_antimonotone_in_candidate_size(triples, level_index, extra):
    """Growing the candidate's total activity (|A|) never raises the score."""
    size_a, size_b, shared = triples[level_index]
    grown = list(triples)
    grown[level_index] = (size_a + extra, size_b, shared)
    for measure in MEASURES:
        assert measure.score_levels(grown) <= measure.score_levels(triples) + 1e-12


@given(overlap_triples())
@settings(max_examples=200, deadline=None)
def test_theorem4_bound_dominates(triples):
    """The artificial-entity bound dominates the real score.

    For any candidate profile ``(|A_l|, |B_l|, x_l)``, the bound computed on
    the restriction of the query to any per-level superset ``v_l >= x_l`` --
    i.e. the profile ``(v_l, |B_l|, v_l)`` -- must be at least the candidate's
    score.  This is the property the search's early termination relies on.
    """
    bound_profile = [(shared, size_b, shared) for _size_a, size_b, shared in triples]
    for measure in MEASURES:
        real = measure.score_levels(triples)
        bound = measure.score_levels(bound_profile)
        assert bound >= real - 1e-9


@given(overlap_triples(), st.lists(st.integers(min_value=0, max_value=10), min_size=3, max_size=3))
@settings(max_examples=200, deadline=None)
def test_theorem4_bound_monotone_in_survivors(triples, extras):
    """Adding surviving query cells to the artificial entity never lowers the bound."""
    smaller = [(shared, size_b, shared) for _a, size_b, shared in triples]
    larger = [
        (min(size_b, shared + extra), size_b, min(size_b, shared + extra))
        for (_a, size_b, shared), extra in zip(triples, extras)
    ]
    for measure in MEASURES:
        assert measure.score_levels(larger) >= measure.score_levels(smaller) - 1e-12


@given(overlap_triples())
@settings(max_examples=100, deadline=None)
def test_symmetry_of_symmetric_measures(triples):
    """Jaccard/Dice/Overlap and the paper ADM are symmetric in their arguments."""
    flipped = [(size_b, size_a, shared) for size_a, size_b, shared in triples]
    for measure in MEASURES:
        if isinstance(measure, FScoreADM):
            continue  # F-beta is intentionally asymmetric
        assert measure.score_levels(triples) == measure.score_levels(flipped)
