"""The streaming equivalence guarantee, pinned by fuzzing.

After **any** interleaving of micro-batched ingests, sliding-window
expiries, compactions, and queries, the streamed engine's ``top_k`` results
must be identical to a from-scratch engine built over the surviving events
with the same configuration and horizon -- for the single engine and for
sharded deployments (shard counts {1, 2, 4}), with the query cache enabled.

The fuzz runs use ``bound_mode="per_level"`` (strictly admissible), where
result equality is a theorem rather than an empirical observation: loose
group-level signatures left by retraction weaken pruning but can never
change an exact search's answer.  One fixed-seed scenario additionally runs
the paper's default ``lift`` bound, pinning that the equivalence holds there
too on a representative stream (the repo documents the lift bound's known
coarse-level corner case; see ``repro.service.sharded``).
"""


import pytest

from repro import (
    EventIngestor,
    PresenceInstance,
    ShardedEngine,
    SpatialHierarchy,
    TraceDataset,
    TraceQueryEngine,
)
from repro.core.columnar import ColumnarTree

HORIZON = 120
KNOBS = dict(num_hashes=32, seed=7, bound_mode="per_level")


@pytest.fixture(scope="module")
def hierarchy():
    return SpatialHierarchy.regular([2, 3, 2], prefix="f")


def make_stream(hierarchy, rng, count, num_entities=14, span=100, long_every=0):
    """A time-ordered random event stream over a small entity population.

    ``long_every > 0`` mixes in one long-duration event per that many
    events; a long event pushes the watermark far ahead of same-``start``
    short events, which is exactly the interleaving where flush-time
    late-arrival dropping matters.
    """
    events = []
    for index in range(count):
        start = rng.randrange(0, span)
        duration = rng.randrange(1, 4)
        if long_every and index % long_every == 0:
            duration = rng.randrange(20, 60)
        events.append(
            PresenceInstance(
                entity=f"s{rng.randrange(num_entities)}",
                unit=rng.choice(hierarchy.base_units),
                start=start,
                end=start + duration,
            )
        )
    events.sort(key=lambda p: (p.start, p.end, p.entity, p.unit))
    return events


def scratch_engine(hierarchy, events, **extra):
    """A from-scratch single engine over exactly ``events``."""
    dataset = TraceDataset(hierarchy, horizon=HORIZON)
    for event in events:
        dataset.add_presence(event)
    knobs = dict(KNOBS)
    knobs.update(extra)
    return TraceQueryEngine(dataset, **knobs).build()


def surviving(events, cutoff):
    """The events a window with the given cutoff retains (all, when None)."""
    if cutoff is None:
        return list(events)
    return [event for event in events if event.end > cutoff]


def assert_streamed_matches_scratch(streamed, scratch, k_values=(1, 3, 10)):
    streamed_entities = sorted(streamed.dataset.entities)
    assert streamed_entities == sorted(scratch.dataset.entities)
    for query in streamed_entities:
        for k in k_values:
            live = streamed.top_k(query, k=k)
            fresh = scratch.top_k(query, k=k)
            assert live.items == fresh.items, (
                f"divergence for query {query!r} k={k}: {live.items} != {fresh.items}"
            )


class TestSingleEngineFuzz:
    @pytest.mark.parametrize("fuzz_seed", [11, 23, 47])
    def test_random_ingest_expire_query_interleavings(self, hierarchy, fuzz_seed, seeded_rng):
        rng = seeded_rng(fuzz_seed)
        events = make_stream(hierarchy, rng, count=240)
        engine = scratch_engine(hierarchy, [])
        ingestor = EventIngestor(
            engine,
            max_batch_events=rng.choice([1, 5, 16]),
            window=rng.choice([25, 40]),
            compact_after=rng.choice([0, 8]),
        )
        flushed = 0
        for index, event in enumerate(events, start=1):
            ingestor.submit(event)
            if rng.random() < 0.05:
                # Checkpoint: flush the tail and face off against scratch.
                ingestor.flush()
                flushed = index
                scratch = scratch_engine(
                    hierarchy, surviving(events[:flushed], ingestor.window.cutoff)
                )
                assert_streamed_matches_scratch(engine, scratch, k_values=(3,))
        ingestor.close()
        scratch = scratch_engine(hierarchy, surviving(events, ingestor.window.cutoff))
        assert_streamed_matches_scratch(engine, scratch)

    @pytest.mark.parametrize("fuzz_seed", [13, 61])
    def test_long_duration_events_and_late_arrivals(self, hierarchy, fuzz_seed, seeded_rng):
        """Regression fuzz: long events race the watermark past short ones.

        A long-duration event can push the cutoff beyond a same-``start``
        short event still in flight; the ingestor must drop such late
        arrivals instead of indexing records the window can never expire.
        """
        rng = seeded_rng(fuzz_seed)
        events = make_stream(hierarchy, rng, count=200, long_every=7)
        engine = scratch_engine(hierarchy, [])
        ingestor = EventIngestor(engine, max_batch_events=3, window=25, compact_after=9)
        ingestor.extend(events)
        ingestor.close()
        assert ingestor.stats.events_dropped_late > 0  # the race actually fired
        scratch = scratch_engine(hierarchy, surviving(events, ingestor.window.cutoff))
        assert_streamed_matches_scratch(engine, scratch)

    def test_everything_can_expire(self, hierarchy, seeded_rng):
        """A stream with a gap longer than the window empties the index."""
        rng = seeded_rng(5)
        early = make_stream(hierarchy, rng, count=40, span=10)
        late = [
            PresenceInstance("phoenix", hierarchy.base_units[0], 100, 102),
        ]
        engine = scratch_engine(hierarchy, [])
        ingestor = EventIngestor(engine, max_batch_events=8, window=20)
        ingestor.extend(early + late)
        ingestor.close()
        assert sorted(engine.dataset.entities) == ["phoenix"]
        scratch = scratch_engine(hierarchy, surviving(early + late, ingestor.window.cutoff))
        assert_streamed_matches_scratch(engine, scratch)

    def test_default_lift_bound_on_a_fixed_stream(self, hierarchy, seeded_rng):
        """The paper's default bound, pinned on one representative stream."""
        rng = seeded_rng(99)
        events = make_stream(hierarchy, rng, count=200)
        engine = scratch_engine(hierarchy, [], bound_mode="lift")
        ingestor = EventIngestor(engine, max_batch_events=10, window=30, compact_after=6)
        ingestor.extend(events)
        ingestor.close()
        scratch = scratch_engine(
            hierarchy, surviving(events, ingestor.window.cutoff), bound_mode="lift"
        )
        assert_streamed_matches_scratch(engine, scratch)


class TestShardedFuzz:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_sharded_streamed_matches_single_scratch(self, hierarchy, num_shards, seeded_rng):
        """Streamed sharded serving (cache on) == from-scratch single engine.

        This is the strongest cross-check: the streamed index diverges from
        scratch in tree tightness, the sharded merge reassembles partials,
        and the cache serves repeats -- results must still be identical.
        """
        rng = seeded_rng(300 + num_shards)
        events = make_stream(hierarchy, rng, count=220)
        dataset = TraceDataset(hierarchy, horizon=HORIZON)
        # Sized above the distinct partial-key count (entities x k values x
        # shards), so the second face-off pass really serves from the cache.
        sharded = ShardedEngine(
            dataset, num_shards=num_shards, query_cache_size=512, **KNOBS
        ).build()
        ingestor = EventIngestor(
            sharded, max_batch_events=12, window=35, compact_after=10
        )
        for index, event in enumerate(events, start=1):
            ingestor.submit(event)
            # Interleave cached queries against the half-ingested stream;
            # each result must match an uncached from-scratch single engine
            # over the flushed-and-surviving prefix.
            if index % 60 == 0:
                ingestor.flush()
                scratch = scratch_engine(
                    hierarchy, surviving(events[:index], ingestor.window.cutoff)
                )
                assert_streamed_matches_scratch(sharded, scratch, k_values=(3,))
        ingestor.close()
        scratch = scratch_engine(hierarchy, surviving(events, ingestor.window.cutoff))
        # Twice: the second pass is served from the (partial-result) cache.
        assert_streamed_matches_scratch(sharded, scratch)
        assert_streamed_matches_scratch(sharded, scratch)
        assert sharded.query_cache.stats.hits > 0

    def test_round_robin_partitioner_fuzz(self, hierarchy, seeded_rng):
        rng = seeded_rng(77)
        events = make_stream(hierarchy, rng, count=150)
        dataset = TraceDataset(hierarchy, horizon=HORIZON)
        sharded = ShardedEngine(
            dataset,
            num_shards=3,
            partitioner="round_robin",
            query_cache_size=32,
            **KNOBS,
        ).build()
        ingestor = EventIngestor(sharded, max_batch_events=9, window=45)
        ingestor.extend(events)
        ingestor.close()
        scratch = scratch_engine(hierarchy, surviving(events, ingestor.window.cutoff))
        assert_streamed_matches_scratch(sharded, scratch)


class TestIncrementalRecompileFuzz:
    """The delta-patch kernel maintenance path, under streamed mutations.

    ``incremental_recompile=True`` is the default, so every fuzz above
    already answers through patched kernels; this class pins the *stronger*
    guarantee the patch path promises: at every checkpoint the live
    (possibly patched) kernel's exported arrays are **byte-identical** to a
    from-scratch :meth:`ColumnarTree.compile` over the same tree and
    dataset -- and at least one checkpoint was actually served by a patch,
    so the assertion exercises the splice, not just the fallback.
    """

    @pytest.mark.parametrize("fuzz_seed", [17, 29, 53])
    def test_patched_kernel_byte_identical_to_fresh_compile(
        self, hierarchy, fuzz_seed, seeded_rng
    ):
        rng = seeded_rng(fuzz_seed)
        # Small micro-batches over a wider population keep per-flush churn
        # under the staleness threshold, so flushes patch instead of
        # falling back to a full recompile.
        events = make_stream(hierarchy, rng, count=240, num_entities=24)
        engine = scratch_engine(hierarchy, [])
        assert engine.config.incremental_recompile  # the default, explicit
        ingestor = EventIngestor(
            engine,
            max_batch_events=rng.choice([1, 2, 3]),
            window=rng.choice([30, 45]),
            compact_after=rng.choice([0, 6]),
        )
        checkpoints = 0
        for index, event in enumerate(events, start=1):
            ingestor.submit(event)
            if rng.random() < 0.06:
                ingestor.flush()
                if not engine.dataset.entities:
                    continue
                # Serve one query so the kernel refreshes (patch or
                # recompile), then face the live arrays off against a
                # from-scratch compile of the very same tree.
                engine.top_k(sorted(engine.dataset.entities)[0], k=3)
                live = engine.searcher.compiled_tree().export_arrays()
                fresh = ColumnarTree.compile(engine._tree, engine.dataset).export_arrays()
                assert sorted(live) == sorted(fresh)
                for name, array in live.items():
                    assert array.dtype == fresh[name].dtype, name
                    assert array.tobytes() == fresh[name].tobytes(), (
                        f"seed {fuzz_seed}: array {name!r} diverged after "
                        f"{index} events ({engine.searcher.kernel_patches} patches, "
                        f"{engine.searcher.kernel_compiles} compiles)"
                    )
                checkpoints += 1
        ingestor.close()
        assert checkpoints >= 4  # the 6% checkpoint coin actually fired
        assert engine.searcher.kernel_patches > 0  # the splice path really ran
        scratch = scratch_engine(hierarchy, surviving(events, ingestor.window.cutoff))
        assert_streamed_matches_scratch(engine, scratch)

    @pytest.mark.parametrize("fuzz_seed", [19, 37])
    def test_incremental_on_and_off_answer_identically(
        self, hierarchy, fuzz_seed, seeded_rng
    ):
        """Same interleaving, twice: patched kernels vs always-recompile."""
        rng = seeded_rng(fuzz_seed)
        events = make_stream(hierarchy, rng, count=200, num_entities=24)
        patched = scratch_engine(hierarchy, [])
        recompiled = scratch_engine(hierarchy, [], incremental_recompile=False)
        knobs = dict(max_batch_events=2, window=40, compact_after=7)
        left = EventIngestor(patched, **knobs)
        right = EventIngestor(recompiled, **knobs)
        for index, event in enumerate(events, start=1):
            left.submit(event)
            right.submit(event)
            if index % 50 == 0:
                left.flush()
                right.flush()
                assert_streamed_matches_scratch(patched, recompiled, k_values=(3,))
        left.close()
        right.close()
        assert patched.searcher.kernel_patches > 0
        assert recompiled.searcher.kernel_patches == 0
        assert_streamed_matches_scratch(patched, recompiled)
