"""Tests for top-k query processing (repro.core.query)."""

import pytest

from repro.baselines import BruteForceTopK
from repro.core.query import TopKSearcher
from repro.measures import HierarchicalADM, JaccardADM


class TestResults:
    def test_strong_associate_ranked_first(self, small_engine):
        result = small_engine.top_k("a", k=3)
        assert result.entities[0] == "b"

    def test_scores_sorted_descending(self, small_engine):
        result = small_engine.top_k("a", k=4)
        assert result.scores == sorted(result.scores, reverse=True)

    def test_query_entity_not_in_results(self, small_engine):
        result = small_engine.top_k("a", k=4)
        assert "a" not in result.entities

    def test_zero_score_entities_excluded(self, small_engine):
        result = small_engine.top_k("a", k=4)
        # d and e never co-occur with a (different region entirely).
        assert "d" not in result.entities
        assert "e" not in result.entities

    def test_k_larger_than_population(self, small_engine):
        result = small_engine.top_k("a", k=100)
        assert len(result) <= small_engine.dataset.num_entities - 1

    def test_k_one(self, small_engine):
        result = small_engine.top_k("a", k=1)
        assert len(result) == 1
        assert result.entities == ["b"]

    def test_invalid_k(self, small_engine):
        with pytest.raises(ValueError):
            small_engine.top_k("a", k=0)

    def test_unknown_query_entity(self, small_engine):
        with pytest.raises(KeyError):
            small_engine.top_k("ghost", k=2)

    def test_result_iterable_and_len(self, small_engine):
        result = small_engine.top_k("a", k=2)
        pairs = list(result)
        assert len(pairs) == len(result)
        assert all(isinstance(entity, str) and isinstance(score, float) for entity, score in pairs)

    def test_symmetric_pair_found_both_directions(self, small_engine):
        assert small_engine.top_k("d", k=1).entities == ["e"]
        assert small_engine.top_k("e", k=1).entities == ["d"]


class TestStats:
    def test_population_and_k_recorded(self, small_engine):
        result = small_engine.top_k("a", k=2)
        assert result.stats.population == small_engine.dataset.num_entities
        assert result.stats.k == 2

    def test_entities_scored_at_most_population(self, small_engine):
        result = small_engine.top_k("a", k=2)
        assert 0 < result.stats.entities_scored < small_engine.dataset.num_entities

    def test_checked_fraction_and_pe_consistent(self, small_engine):
        stats = small_engine.top_k("a", k=2).stats
        assert stats.checked_fraction == pytest.approx(
            stats.entities_scored / stats.population
        )
        assert stats.pruning_effectiveness == pytest.approx(1.0 - stats.checked_fraction)

    def test_definition5_pe_matches_definition(self, small_engine):
        stats = small_engine.top_k("a", k=2).stats
        expected = max(0, stats.entities_scored - 2) / stats.population
        assert stats.definition5_pe == pytest.approx(expected)

    def test_nodes_and_bounds_counted(self, small_engine):
        stats = small_engine.top_k("a", k=2).stats
        assert stats.nodes_visited >= 1
        assert stats.bound_computations >= 1
        assert stats.leaves_visited >= 1

    def test_empty_population_stats(self):
        from repro.core.query import QueryStats

        stats = QueryStats()
        assert stats.checked_fraction == 0.0
        assert stats.definition5_pe == 0.0


class TestSearcherConfiguration:
    def test_bound_mode_validation(self, small_engine):
        with pytest.raises(ValueError):
            TopKSearcher(
                small_engine.tree,
                small_engine.dataset,
                small_engine.measure,
                small_engine.hash_family,
                bound_mode="nope",
            )

    def test_per_level_mode_matches_brute_force(self, small_engine):
        searcher = TopKSearcher(
            small_engine.tree,
            small_engine.dataset,
            small_engine.measure,
            small_engine.hash_family,
            bound_mode="per_level",
        )
        oracle = BruteForceTopK(small_engine.dataset, small_engine.measure)
        for query in small_engine.dataset.entities:
            indexed = searcher.search(query, 3)
            exact = oracle.search(query, 3)
            assert [round(s, 9) for s in indexed.scores] == [round(s, 9) for s in exact.scores]

    def test_candidate_filter_restricts_results(self, small_engine):
        result = small_engine.searcher.search("a", 3, candidate_filter=lambda e: e != "b")
        assert "b" not in result.entities

    def test_alternative_measure(self, small_engine):
        measure = JaccardADM(num_levels=small_engine.dataset.num_levels)
        searcher = TopKSearcher(
            small_engine.tree, small_engine.dataset, measure, small_engine.hash_family
        )
        oracle = BruteForceTopK(small_engine.dataset, measure)
        result = searcher.search("a", 2)
        exact = oracle.search("a", 2)
        assert result.entities[0] == exact.entities[0]

    def test_sequence_fetcher_hook_used(self, small_engine):
        calls = []

        def fetcher(entity):
            calls.append(entity)
            return small_engine.dataset.cell_sequence(entity)

        result = small_engine.searcher.search("a", 2, sequence_fetcher=fetcher)
        assert len(calls) == result.stats.entities_scored

    def test_search_many(self, small_engine):
        results = small_engine.searcher.search_many(["a", "d"], 2)
        assert [r.query_entity for r in results] == ["a", "d"]


class TestEarlyTermination:
    def test_early_termination_on_synthetic_data(self, syn_engine):
        """At least some queries over group-structured data terminate early."""
        terminated = 0
        for query in syn_engine.dataset.entities[:20]:
            result = syn_engine.top_k(query, k=1)
            terminated += int(result.stats.terminated_early)
        assert terminated > 0

    def test_termination_never_loses_the_top_answer(self, syn_engine):
        oracle = BruteForceTopK(syn_engine.dataset, syn_engine.measure)
        for query in syn_engine.dataset.entities[:15]:
            best_indexed = syn_engine.top_k(query, k=1)
            best_exact = oracle.search(query, k=1)
            if not best_exact.scores:
                continue
            assert best_indexed.scores, query
            assert best_indexed.scores[0] == pytest.approx(best_exact.scores[0])
