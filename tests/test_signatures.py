"""Tests for per-entity signature computation (repro.core.signatures)."""

import numpy as np
import pytest

from repro.core.hashing import HierarchicalHashFamily
from repro.core.signatures import SignatureComputer
from repro.traces.events import STCell


@pytest.fixture
def computer(small_hierarchy):
    family = HierarchicalHashFamily(small_hierarchy, horizon=48, num_hashes=12, seed=2)
    return SignatureComputer(family)


class TestSignatureMatrix:
    def test_shape(self, computer, small_dataset):
        matrix = computer.signature_matrix(small_dataset.cell_sequence("a"))
        assert matrix.shape == (small_dataset.num_levels, 12)

    def test_values_within_hash_range(self, computer, small_dataset):
        matrix = computer.signature_matrix(small_dataset.cell_sequence("a"))
        assert (matrix >= 0).all()
        assert (matrix < computer.hash_family.hash_range).all()

    def test_signature_is_min_over_cells(self, computer, small_dataset):
        """sig^m[u] equals the minimum hash over the entity's base cells."""
        sequence = small_dataset.cell_sequence("a")
        matrix = computer.signature_matrix(sequence)
        expected = np.stack(
            [computer.hash_family.hash_cell(cell) for cell in sequence.base_cells]
        ).min(axis=0)
        assert np.array_equal(matrix[-1], expected)

    def test_theorem1_levels_are_monotone(self, computer, small_dataset):
        """Theorem 1: sig^i[u] <= sig^{i+1}[u] for every entity and u."""
        for entity in small_dataset.entities:
            matrix = computer.signature_matrix(small_dataset.cell_sequence(entity))
            for level in range(matrix.shape[0] - 1):
                assert (matrix[level] <= matrix[level + 1]).all()

    def test_theorem2_pruning_direction(self, computer, small_dataset, small_hierarchy):
        """Theorem 2: sig^i[u] > h_u(s) implies the entity is absent from s."""
        entity = "a"
        sequence = small_dataset.cell_sequence(entity)
        matrix = computer.signature_matrix(sequence)
        family = computer.hash_family
        for time in range(0, 48, 7):
            for unit in small_hierarchy.base_units:
                cell = STCell(time, unit)
                hashes = family.hash_cell(cell)
                for level in range(matrix.shape[0]):
                    witnessed = (matrix[level] > hashes).any()
                    if witnessed:
                        assert cell not in sequence.base_cells

    def test_empty_sequence_uses_sentinel(self, computer, small_hierarchy):
        from repro.traces.events import cells_from_presences

        empty = cells_from_presences([], small_hierarchy)
        matrix = computer.signature_matrix(empty)
        assert (matrix == computer.empty_value).all()

    def test_single_cell_signature_equals_cell_hash(self, computer, small_hierarchy, small_dataset):
        from repro.traces.events import PresenceInstance, cells_from_presences

        base = small_hierarchy.base_units[0]
        sequence = cells_from_presences([PresenceInstance("x", base, 5, 6)], small_hierarchy)
        matrix = computer.signature_matrix(sequence)
        assert np.array_equal(matrix[-1], computer.hash_family.hash_cell(STCell(5, base)))


class TestDatasetSignatures:
    def test_all_entities_signed(self, computer, small_dataset):
        signatures = computer.signatures_for_dataset(small_dataset)
        assert set(signatures) == set(small_dataset.entities)

    def test_subset_of_entities(self, computer, small_dataset):
        signatures = computer.signatures_for_dataset(small_dataset, entities=["a", "b"])
        assert set(signatures) == {"a", "b"}

    def test_hash_operations_positive_and_scales_with_nh(self, small_dataset, small_hierarchy):
        small_family = HierarchicalHashFamily(small_hierarchy, 48, 4, seed=2)
        large_family = HierarchicalHashFamily(small_hierarchy, 48, 16, seed=2)
        small_ops = SignatureComputer(small_family).hash_operations(small_dataset)
        large_ops = SignatureComputer(large_family).hash_operations(small_dataset)
        assert small_ops > 0
        assert large_ops == small_ops * 4
