"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main
from repro.traces.io import load_hierarchy_json, load_traces_csv


@pytest.fixture
def generated_files(tmp_path):
    traces = tmp_path / "traces.csv"
    hierarchy = tmp_path / "hierarchy.json"
    code = main(
        [
            "generate",
            "syn",
            "--entities",
            "40",
            "--horizon",
            "48",
            "--seed",
            "3",
            "--output",
            str(traces),
            "--hierarchy",
            str(hierarchy),
        ]
    )
    assert code == 0
    return traces, hierarchy


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(
            ["generate", "wifi", "--output", "o.csv", "--hierarchy", "h.json"]
        )
        assert args.kind == "wifi"
        assert args.entities == 300

    def test_query_defaults(self):
        args = build_parser().parse_args(
            ["query", "--traces", "t.csv", "--hierarchy", "h.json", "--entity", "x"]
        )
        assert args.k == 10
        assert args.bound_mode == "lift"


class TestGenerate:
    def test_files_written_and_loadable(self, generated_files):
        traces, hierarchy_path = generated_files
        hierarchy = load_hierarchy_json(hierarchy_path)
        dataset = load_traces_csv(traces, hierarchy)
        assert dataset.num_entities == 40
        assert dataset.num_levels == 4

    def test_wifi_generation(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                "wifi",
                "--entities",
                "25",
                "--output",
                str(tmp_path / "wifi.csv"),
                "--hierarchy",
                str(tmp_path / "wifi.json"),
            ]
        )
        assert code == 0
        assert "25 entities" in capsys.readouterr().out


class TestStats:
    def test_stats_output(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(["stats", "--traces", str(traces), "--hierarchy", str(hierarchy)])
        assert code == 0
        output = capsys.readouterr().out
        assert "entities=40" in output
        assert "ST-cell universe" in output


class TestQuery:
    def test_query_runs_and_prints_results(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--entity",
                "syn-0",
                "--k",
                "3",
                "--num-hashes",
                "32",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "top-3 associates of syn-0" in output
        assert "pruning effectiveness" in output

    def test_unknown_entity_fails_gracefully(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--entity",
                "nobody",
            ]
        )
        assert code == 2
        assert "unknown entity" in capsys.readouterr().err

    def test_batch_query_prints_aggregate_report(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--batch",
                "syn-0",
                "syn-1",
                "syn-2",
                "--workers",
                "2",
                "--k",
                "3",
                "--num-hashes",
                "32",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "top-3 associates of syn-0" in output
        assert "top-3 associates of syn-2" in output
        assert "batch: 3 queries" in output
        assert "workers=2" in output

    def test_batch_and_entity_are_mutually_exclusive(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--entity",
                "syn-0",
                "--batch",
                "syn-1",
            ]
        )
        assert code == 2
        assert "exactly one of --entity or --batch" in capsys.readouterr().err

    def test_neither_entity_nor_batch_fails(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(["query", "--traces", str(traces), "--hierarchy", str(hierarchy)])
        assert code == 2
        assert "exactly one of --entity or --batch" in capsys.readouterr().err

    def test_negative_workers_fails_gracefully(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--batch",
                "syn-0",
                "--workers",
                "-1",
            ]
        )
        assert code == 2
        assert "--workers must be >= 0" in capsys.readouterr().err

    def test_workers_without_batch_rejected(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--entity",
                "syn-0",
                "--workers",
                "4",
            ]
        )
        assert code == 2
        assert "--workers only applies to --batch" in capsys.readouterr().err

    def test_batch_unknown_entity_fails_gracefully(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--batch",
                "syn-0",
                "nobody",
            ]
        )
        assert code == 2
        assert "unknown entity 'nobody'" in capsys.readouterr().err

    def test_approximate_query(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--entity",
                "syn-1",
                "--k",
                "2",
                "--num-hashes",
                "16",
                "--approximation",
                "0.2",
            ]
        )
        assert code == 0


class TestFigures:
    def test_single_figure(self, capsys):
        code = main(["figures", "--only", "7.8", "--scale", "tiny"])
        assert code == 0
        assert "figure-7.8" in capsys.readouterr().out

    def test_unknown_figure_rejected(self, capsys):
        code = main(["figures", "--only", "9.9"])
        assert code == 2
        assert "unknown figure" in capsys.readouterr().err
