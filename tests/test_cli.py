"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main
from repro.traces.io import load_hierarchy_json, load_traces_csv


@pytest.fixture
def generated_files(tmp_path):
    traces = tmp_path / "traces.csv"
    hierarchy = tmp_path / "hierarchy.json"
    code = main(
        [
            "generate",
            "syn",
            "--entities",
            "40",
            "--horizon",
            "48",
            "--seed",
            "3",
            "--output",
            str(traces),
            "--hierarchy",
            str(hierarchy),
        ]
    )
    assert code == 0
    return traces, hierarchy


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(
            ["generate", "wifi", "--output", "o.csv", "--hierarchy", "h.json"]
        )
        assert args.kind == "wifi"
        assert args.entities == 300

    def test_query_defaults(self):
        args = build_parser().parse_args(
            ["query", "--traces", "t.csv", "--hierarchy", "h.json", "--entity", "x"]
        )
        assert args.k == 10
        assert args.shards == 0
        # Index-shaping options default to None so the command can tell an
        # explicit flag from a default when --snapshot fixes the index.
        assert args.bound_mode is None
        assert args.num_hashes is None

    def test_index_build_arguments(self):
        args = build_parser().parse_args(
            [
                "index",
                "build",
                "--traces",
                "t.csv",
                "--hierarchy",
                "h.json",
                "--output",
                "snap",
            ]
        )
        assert args.index_command == "build"
        assert args.num_hashes == 256
        assert args.bound_mode == "lift"
        assert args.shards == 0


class TestGenerate:
    def test_files_written_and_loadable(self, generated_files):
        traces, hierarchy_path = generated_files
        hierarchy = load_hierarchy_json(hierarchy_path)
        dataset = load_traces_csv(traces, hierarchy)
        assert dataset.num_entities == 40
        assert dataset.num_levels == 4

    def test_wifi_generation(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                "wifi",
                "--entities",
                "25",
                "--output",
                str(tmp_path / "wifi.csv"),
                "--hierarchy",
                str(tmp_path / "wifi.json"),
            ]
        )
        assert code == 0
        assert "25 entities" in capsys.readouterr().out


class TestStats:
    def test_stats_output(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(["stats", "--traces", str(traces), "--hierarchy", str(hierarchy)])
        assert code == 0
        output = capsys.readouterr().out
        assert "entities=40" in output
        assert "ST-cell universe" in output


class TestQuery:
    def test_query_runs_and_prints_results(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--entity",
                "syn-0",
                "--k",
                "3",
                "--num-hashes",
                "32",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "top-3 associates of syn-0" in output
        assert "pruning effectiveness" in output

    def test_unknown_entity_fails_gracefully(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--entity",
                "nobody",
            ]
        )
        assert code == 2
        assert "unknown entity" in capsys.readouterr().err

    def test_batch_query_prints_aggregate_report(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--batch",
                "syn-0",
                "syn-1",
                "syn-2",
                "--workers",
                "2",
                "--k",
                "3",
                "--num-hashes",
                "32",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "top-3 associates of syn-0" in output
        assert "top-3 associates of syn-2" in output
        assert "batch: 3 queries" in output
        assert "workers=2" in output

    def test_batch_and_entity_are_mutually_exclusive(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--entity",
                "syn-0",
                "--batch",
                "syn-1",
            ]
        )
        assert code == 2
        assert "exactly one of --entity or --batch" in capsys.readouterr().err

    def test_neither_entity_nor_batch_fails(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(["query", "--traces", str(traces), "--hierarchy", str(hierarchy)])
        assert code == 2
        assert "exactly one of --entity or --batch" in capsys.readouterr().err

    def test_negative_workers_fails_gracefully(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--batch",
                "syn-0",
                "--workers",
                "-1",
            ]
        )
        assert code == 2
        assert "--workers must be >= 0" in capsys.readouterr().err

    def test_workers_without_batch_rejected(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--entity",
                "syn-0",
                "--workers",
                "4",
            ]
        )
        assert code == 2
        assert "--workers only applies to --batch" in capsys.readouterr().err

    def test_batch_unknown_entity_fails_gracefully(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--batch",
                "syn-0",
                "nobody",
            ]
        )
        assert code == 2
        assert "unknown entity 'nobody'" in capsys.readouterr().err

    def test_empty_dataset_exits_2_with_message(self, generated_files, tmp_path, capsys):
        """Regression: a trace file with no records must not raise."""
        _traces, hierarchy = generated_files
        empty = tmp_path / "empty.csv"
        empty.write_text("entity,unit,start,end\n")
        code = main(
            [
                "query",
                "--traces",
                str(empty),
                "--hierarchy",
                str(hierarchy),
                "--entity",
                "anyone",
            ]
        )
        assert code == 2
        assert "contains no trace records" in capsys.readouterr().err

    def test_headerless_trace_file_exits_2(self, generated_files, tmp_path, capsys):
        """Regression: a zero-byte/garbage CSV exits 2 instead of tracebacking."""
        _traces, hierarchy = generated_files
        blank = tmp_path / "blank.csv"
        blank.write_text("")
        code = main(
            ["query", "--traces", str(blank), "--hierarchy", str(hierarchy), "--entity", "x"]
        )
        assert code == 2
        assert "cannot load traces" in capsys.readouterr().err

    def test_missing_trace_file_exits_2(self, generated_files, capsys):
        _traces, hierarchy = generated_files
        code = main(
            ["query", "--traces", "no-such.csv", "--hierarchy", str(hierarchy), "--entity", "x"]
        )
        assert code == 2
        assert "cannot load traces" in capsys.readouterr().err

    def test_missing_hierarchy_exits_2(self, generated_files, capsys):
        traces, _hierarchy = generated_files
        code = main(
            ["query", "--traces", str(traces), "--hierarchy", "no-such.json", "--entity", "x"]
        )
        assert code == 2
        assert "cannot load sp-index" in capsys.readouterr().err

    def test_approximate_query(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--entity",
                "syn-1",
                "--k",
                "2",
                "--num-hashes",
                "16",
                "--approximation",
                "0.2",
            ]
        )
        assert code == 0


class TestQueryModes:
    def test_sharded_query_matches_single_engine(self, generated_files, capsys):
        traces, hierarchy = generated_files
        base = [
            "query",
            "--traces",
            str(traces),
            "--hierarchy",
            str(hierarchy),
            "--entity",
            "syn-0",
            "--k",
            "3",
            "--num-hashes",
            "32",
        ]
        assert main(base) == 0
        single_output = capsys.readouterr().out
        assert main(base + ["--shards", "2"]) == 0
        sharded_output = capsys.readouterr().out
        # Ranked results (the lines before the stats line) must be identical.
        assert single_output.splitlines()[:4] == sharded_output.splitlines()[:4]

    def test_snapshot_and_traces_are_mutually_exclusive(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--snapshot",
                "somewhere",
                "--entity",
                "syn-0",
            ]
        )
        assert code == 2
        assert "either --snapshot or --traces" in capsys.readouterr().err

    def test_missing_inputs_rejected(self, capsys):
        code = main(["query", "--entity", "syn-0"])
        assert code == 2
        assert "pass --snapshot" in capsys.readouterr().err

    def test_nonexistent_snapshot_fails_gracefully(self, tmp_path, capsys):
        code = main(["query", "--snapshot", str(tmp_path / "missing"), "--entity", "x"])
        assert code == 2
        assert "not a snapshot directory" in capsys.readouterr().err

    def test_partitioner_requires_shards(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--entity",
                "syn-0",
                "--partitioner",
                "round_robin",
            ]
        )
        assert code == 2
        assert "--partitioner only applies together with --shards" in capsys.readouterr().err


class TestIndex:
    @pytest.fixture
    def snapshot_dir(self, generated_files, tmp_path, capsys):
        traces, hierarchy = generated_files
        snapshot = tmp_path / "snap"
        code = main(
            [
                "index",
                "build",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--output",
                str(snapshot),
                "--num-hashes",
                "32",
            ]
        )
        assert code == 0
        capsys.readouterr()
        return snapshot

    def test_build_and_info(self, snapshot_dir, capsys):
        code = main(["index", "info", "--snapshot", str(snapshot_dir)])
        assert code == 0
        output = capsys.readouterr().out
        assert "repro-engine-snapshot" in output
        assert "num_hashes=32" in output
        assert "fingerprint" in output

    def test_query_from_snapshot_matches_adhoc_build(self, generated_files, snapshot_dir, capsys):
        traces, hierarchy = generated_files
        code = main(["query", "--snapshot", str(snapshot_dir), "--entity", "syn-0", "--k", "3"])
        assert code == 0
        snapshot_output = capsys.readouterr().out
        code = main(
            [
                "query",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--entity",
                "syn-0",
                "--k",
                "3",
                "--num-hashes",
                "32",
            ]
        )
        assert code == 0
        adhoc_output = capsys.readouterr().out
        assert snapshot_output == adhoc_output

    def test_snapshot_unknown_entity_fails_gracefully(self, snapshot_dir, capsys):
        code = main(["query", "--snapshot", str(snapshot_dir), "--entity", "nobody"])
        assert code == 2
        assert "unknown entity 'nobody'" in capsys.readouterr().err

    def test_corrupt_snapshot_fails_gracefully(self, snapshot_dir, capsys):
        (snapshot_dir / "manifest.json").write_text("{truncated")
        code = main(["query", "--snapshot", str(snapshot_dir), "--entity", "syn-0"])
        assert code == 2
        assert "unreadable snapshot manifest" in capsys.readouterr().err

    def test_snapshot_rejects_index_options(self, snapshot_dir, capsys):
        code = main(
            [
                "query",
                "--snapshot",
                str(snapshot_dir),
                "--entity",
                "syn-0",
                "--num-hashes",
                "64",
            ]
        )
        assert code == 2
        assert "cannot be combined with --snapshot" in capsys.readouterr().err

    def test_sharded_build_and_batch_query(self, generated_files, tmp_path, capsys):
        traces, hierarchy = generated_files
        snapshot = tmp_path / "sharded-snap"
        code = main(
            [
                "index",
                "build",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--output",
                str(snapshot),
                "--num-hashes",
                "32",
                "--shards",
                "3",
            ]
        )
        assert code == 0
        assert "3-shard" in capsys.readouterr().out
        code = main(["index", "info", "--snapshot", str(snapshot)])
        assert code == 0
        assert "shards: 3" in capsys.readouterr().out
        code = main(
            [
                "query",
                "--snapshot",
                str(snapshot),
                "--batch",
                "syn-0",
                "syn-1",
                "--k",
                "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "top-3 associates of syn-0" in output
        assert "batch: 2 queries" in output


class TestStream:
    def test_stream_replays_and_reports(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "stream",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--batch-size",
                "32",
                "--window",
                "24",
                "--query-every",
                "200",
                "--k",
                "3",
                "--num-hashes",
                "16",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "streaming" in output and "single-engine index" in output
        assert "micro-batches" in output
        assert "window:" in output
        assert "queries:" in output
        assert "final index:" in output

    def test_stream_sharded_with_explicit_queries(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "stream",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--shards",
                "2",
                "--batch-size",
                "64",
                "--queries",
                "syn-0",
                "--query-every",
                "150",
                "--k",
                "2",
                "--num-hashes",
                "16",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "2-shard index" in output
        assert "top-2 of syn-0" in output

    def test_stream_empty_log_exits_2(self, generated_files, tmp_path, capsys):
        _traces, hierarchy = generated_files
        empty = tmp_path / "empty.csv"
        empty.write_text("entity,unit,start,end\n")
        code = main(
            ["stream", "--traces", str(empty), "--hierarchy", str(hierarchy)]
        )
        assert code == 2
        assert "contains no events" in capsys.readouterr().err

    def test_stream_unknown_query_entity_exits_2(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "stream",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--queries",
                "nobody",
                "--query-every",
                "100",
            ]
        )
        assert code == 2
        assert "never appears in the event log" in capsys.readouterr().err

    def test_stream_queries_require_query_every(self, generated_files, capsys):
        traces, hierarchy = generated_files
        code = main(
            [
                "stream",
                "--traces",
                str(traces),
                "--hierarchy",
                str(hierarchy),
                "--queries",
                "syn-0",
            ]
        )
        assert code == 2
        assert "--queries only applies together with --query-every" in capsys.readouterr().err

    def test_stream_mismatched_hierarchy_exits_2(self, generated_files, tmp_path, capsys):
        """Regression: log units unknown to the sp-index exit 2, no traceback."""
        from repro import SpatialHierarchy
        from repro.traces.io import write_hierarchy_json

        traces, _hierarchy = generated_files
        other = tmp_path / "other-hierarchy.json"
        # A valid sp-index whose unit names share nothing with the syn log.
        write_hierarchy_json(SpatialHierarchy.regular([2, 2], prefix="zz"), other)
        code = main(["stream", "--traces", str(traces), "--hierarchy", str(other)])
        assert code == 2
        assert "invalid event in" in capsys.readouterr().err

    def test_stream_rejects_negative_options(self, generated_files, capsys):
        traces, hierarchy = generated_files
        base = ["stream", "--traces", str(traces), "--hierarchy", str(hierarchy)]
        assert main(base + ["--rate", "-1"]) == 2
        assert main(base + ["--window", "-1"]) == 2
        assert main(base + ["--batch-size", "0"]) == 2
        capsys.readouterr()


class TestFigures:
    def test_single_figure(self, capsys):
        code = main(["figures", "--only", "7.8", "--scale", "tiny"])
        assert code == 0
        assert "figure-7.8" in capsys.readouterr().out

    def test_unknown_figure_rejected(self, capsys):
        code = main(["figures", "--only", "9.9"])
        assert code == 2
        assert "unknown figure" in capsys.readouterr().err
