"""Tests for the LRU buffer pool (repro.storage.buffer)."""

import pytest

from repro.storage.buffer import LRUBufferPool


def loader(key):
    return f"page-{key}"


class TestBasics:
    def test_miss_then_hit(self):
        pool = LRUBufferPool(capacity=4)
        assert pool.get(1, loader) == "page-1"
        assert pool.misses == 1 and pool.hits == 0
        assert pool.get(1, loader) == "page-1"
        assert pool.hits == 1

    def test_capacity_zero_always_misses(self):
        pool = LRUBufferPool(capacity=0)
        for _ in range(3):
            pool.get(1, loader)
        assert pool.misses == 3
        assert pool.hits == 0
        assert len(pool) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUBufferPool(capacity=-1)

    def test_len_and_contains(self):
        pool = LRUBufferPool(capacity=2)
        pool.get("a", loader)
        assert "a" in pool
        assert len(pool) == 1

    def test_hit_rate(self):
        pool = LRUBufferPool(capacity=4)
        pool.get(1, loader)
        pool.get(1, loader)
        pool.get(2, loader)
        assert pool.hit_rate == pytest.approx(1 / 3)

    def test_hit_rate_no_accesses(self):
        assert LRUBufferPool(capacity=2).hit_rate == 0.0


class TestEviction:
    def test_lru_eviction_order(self):
        pool = LRUBufferPool(capacity=2)
        pool.get(1, loader)
        pool.get(2, loader)
        pool.get(1, loader)  # refresh 1; 2 becomes LRU
        pool.get(3, loader)  # evicts 2
        assert 1 in pool and 3 in pool and 2 not in pool
        assert pool.evictions == 1

    def test_eviction_count(self):
        pool = LRUBufferPool(capacity=1)
        for key in range(5):
            pool.get(key, loader)
        assert pool.evictions == 4

    def test_put_refreshes_existing_without_eviction(self):
        pool = LRUBufferPool(capacity=2)
        pool.put("a", 1)
        pool.put("b", 2)
        pool.put("a", 3)
        assert pool.peek("a") == 3
        assert pool.evictions == 0

    def test_peek_does_not_affect_counters_or_recency(self):
        pool = LRUBufferPool(capacity=2)
        pool.get(1, loader)
        pool.get(2, loader)
        pool.peek(1)
        hits, misses = pool.hits, pool.misses
        pool.get(3, loader)  # evicts 1 (peek did not refresh it)
        assert 1 not in pool
        assert (pool.hits, pool.misses) == (hits, misses + 1)

    def test_loader_called_only_on_miss(self):
        calls = []

        def counting_loader(key):
            calls.append(key)
            return key

        pool = LRUBufferPool(capacity=4)
        pool.get("x", counting_loader)
        pool.get("x", counting_loader)
        assert calls == ["x"]


class TestReset:
    def test_reset_counters_keeps_content(self):
        pool = LRUBufferPool(capacity=2)
        pool.get(1, loader)
        pool.reset_counters()
        assert pool.misses == 0
        assert 1 in pool

    def test_clear_drops_content(self):
        pool = LRUBufferPool(capacity=2)
        pool.get(1, loader)
        pool.clear()
        assert len(pool) == 0
        assert pool.accesses == 0
