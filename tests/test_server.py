"""Tests for the serving daemon (repro.server): protocol, coalescer,
metrics, the transport-free TraceServer core, the HTTP layer, and the
``repro serve`` CLI error paths."""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.cli import main
from repro.core.engine import TraceQueryEngine
from repro.obs import parse_exposition
from repro.server.app import TraceServer, build_http_server
from repro.server.coalescer import QueueFullError, RequestCoalescer
from repro.server.metrics import LATENCY_BUCKETS, LatencyHistogram, ServerMetrics
from repro.server.protocol import (
    ProtocolError,
    dumps,
    parse_events_request,
    parse_topk_request,
    topk_result_payload,
)
from repro.service.sharded import ShardedEngine
from repro.streaming.ingestor import StreamingConfig
from repro.traces.dataset import TraceDataset
from repro.traces.events import PresenceInstance
from repro.traces.spatial import SpatialHierarchy


def small_dataset() -> TraceDataset:
    hierarchy = SpatialHierarchy.regular([2, 3])
    dataset = TraceDataset(hierarchy, horizon=48)
    for index in range(12):
        unit = f"u2_{index % 2}_{index % 3}"
        dataset.add_record(f"e{index:02d}", unit, time=(index % 5) * 3, duration=3)
        dataset.add_record(f"e{index:02d}", "u2_0_0", time=30, duration=2)
    return dataset


@pytest.fixture(scope="module")
def engine():
    return TraceQueryEngine(small_dataset(), num_hashes=32, seed=5).build()


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestTopKRequestParsing:
    def test_single_form(self):
        request = parse_topk_request({"entity": "e01", "k": 3, "approximation": 0.5})
        assert request.entities == ["e01"]
        assert request.k == 3
        assert request.approximation == 0.5
        assert not request.batch

    def test_batch_form_defaults(self):
        request = parse_topk_request({"entities": ["a", "b"]})
        assert request.entities == ["a", "b"]
        assert request.k == 10
        assert request.batch

    @pytest.mark.parametrize(
        "payload",
        [
            [],
            "x",
            {},
            {"entity": "a", "entities": ["b"]},
            {"entity": ""},
            {"entity": 7},
            {"entities": []},
            {"entities": "abc"},
            {"entities": ["a", 3]},
            {"entity": "a", "k": 0},
            {"entity": "a", "k": True},
            {"entity": "a", "k": "many"},
            {"entity": "a", "approximation": -0.1},
            {"entity": "a", "approximation": "lots"},
            # json.loads accepts the non-standard NaN/Infinity literals; a
            # NaN slack would defeat every pruning comparison (exhaustive
            # scan per query), Infinity returns arbitrary results.
            {"entity": "a", "approximation": float("nan")},
            {"entity": "a", "approximation": float("inf")},
            {"entity": "a", "unknown_knob": 1},
        ],
    )
    def test_rejects_malformed(self, payload):
        with pytest.raises(ProtocolError) as excinfo:
            parse_topk_request(payload)
        assert excinfo.value.status == 400

    def test_oversized_batch_is_413(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_topk_request({"entities": ["e"] * 5000})
        assert excinfo.value.status == 413


class TestEventsRequestParsing:
    def test_events_and_flush(self):
        request = parse_events_request(
            {
                "events": [{"entity": "a", "unit": "u", "start": 0, "end": 2}],
                "flush": True,
            }
        )
        assert request.events == [PresenceInstance("a", "u", 0, 2)]
        assert request.flush

    def test_empty_flush_only(self):
        request = parse_events_request({"flush": True})
        assert request.events == []
        assert request.flush

    @pytest.mark.parametrize(
        "payload",
        [
            {"events": "nope"},
            {"events": [{"entity": "a", "unit": "u", "start": 0}]},
            {"events": [{"entity": "a", "unit": "u", "start": 0, "end": 0}]},
            {"events": [{"entity": "a", "unit": "u", "start": -1, "end": 2}]},
            {"events": [{"entity": "a", "unit": "u", "start": "x", "end": 2}]},
            {"events": [{"entity": "", "unit": "u", "start": 0, "end": 2}]},
            {"events": [{"entity": "a", "unit": "u", "start": 0, "end": 2, "extra": 1}]},
            {"events": [], "flush": "yes"},
            {"events": [], "extra": True},
        ],
    )
    def test_rejects_malformed(self, payload):
        with pytest.raises(ProtocolError):
            parse_events_request(payload)


class TestPayloads:
    def test_dumps_is_canonical(self):
        assert dumps({"b": 1, "a": 2}) == b'{"a":2,"b":1}\n'

    def test_topk_result_payload_shape(self, engine):
        payload = topk_result_payload(engine.top_k("e00", k=2))
        assert payload["query"] == "e00"
        assert all(set(row) == {"entity", "score"} for row in payload["results"])
        assert {"entities_scored", "population"} <= set(payload["stats"])


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_histogram_buckets_are_le_semantics(self):
        histogram = LatencyHistogram()
        histogram.observe(0.0004)  # 0.4 ms -> first bucket (<= 0.0005 s)
        histogram.observe(0.001)   # exactly 1 ms -> le_0.001
        histogram.observe(99.0)    # far beyond the last edge -> le_inf
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["buckets"]["le_0.0005"] == 1
        assert snapshot["buckets"]["le_0.001"] == 1
        assert snapshot["buckets"]["le_inf"] == 1
        assert snapshot["max_seconds"] == pytest.approx(99.0)
        assert len(snapshot["buckets"]) == len(LATENCY_BUCKETS) + 1

    def test_four_millisecond_observation_lands_in_the_5ms_bucket(self):
        # Regression for the ms/seconds unit seam: observe() takes seconds
        # and the edges are seconds, so 4 ms must land in the le_0.005
        # bucket (index 3), not be misread as 0.004 "ms" or 4 "seconds".
        histogram = LatencyHistogram()
        histogram.observe(0.004)
        assert histogram.bucket_counts[3] == 1
        assert LATENCY_BUCKETS[3] == 0.005
        snapshot = histogram.snapshot()
        assert snapshot["buckets"]["le_0.005"] == 1
        assert snapshot["buckets"]["le_0.002"] == 0
        assert sum(histogram.bucket_counts) == 1

    def test_server_metrics_aggregates_by_endpoint_and_status(self):
        metrics = ServerMetrics()
        metrics.observe("/v1/topk", status=200, seconds=0.001)
        metrics.observe("/v1/topk", status=404, seconds=0.001)
        metrics.observe("/v1/healthz", status=200, seconds=0.0001)
        snapshot = metrics.snapshot()
        assert snapshot["/v1/topk"]["requests"] == 2
        assert snapshot["/v1/topk"]["status"] == {"200": 1, "404": 1}
        assert snapshot["/v1/healthz"]["latency"]["count"] == 1

    def test_concurrent_observations_are_not_lost(self):
        metrics = ServerMetrics()

        def hammer():
            for _ in range(500):
                metrics.observe("/v1/topk", status=200, seconds=0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.snapshot()["/v1/topk"]["requests"] == 4000


# ----------------------------------------------------------------------
# Coalescer
# ----------------------------------------------------------------------
class TestCoalescer:
    def test_results_match_direct_topk(self, engine):
        with RequestCoalescer(engine, threading.Lock()) as coalescer:
            for entity in ("e00", "e05", "e11"):
                assert (
                    coalescer.submit(entity, k=3).items
                    == engine.top_k(entity, k=3).items
                )

    def test_concurrent_submissions_coalesce(self, engine):
        coalescer = RequestCoalescer(
            engine, threading.Lock(), window_seconds=0.05, max_batch=64
        )
        results = {}
        barrier = threading.Barrier(8)

        def query(entity):
            barrier.wait()
            results[entity] = coalescer.submit(entity, k=2)

        threads = [
            threading.Thread(target=query, args=(f"e{index:02d}",)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        coalescer.close()
        assert len(results) == 8
        for entity, result in results.items():
            assert result.items == engine.top_k(entity, k=2).items
        # 8 queries released together inside one 50 ms window must share
        # dispatch rounds: strictly fewer batches than queries.
        assert coalescer.stats.batches < 8
        assert coalescer.stats.coalesced > 0

    def test_mixed_k_groups_still_answer_correctly(self, engine):
        coalescer = RequestCoalescer(engine, threading.Lock(), window_seconds=0.05)
        results = {}
        barrier = threading.Barrier(4)

        def query(entity, k):
            barrier.wait()
            results[(entity, k)] = coalescer.submit(entity, k=k)

        threads = [
            threading.Thread(target=query, args=(f"e{index:02d}", 1 + index % 2))
            for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        coalescer.close()
        for (entity, k), result in results.items():
            assert result.items == engine.top_k(entity, k=k).items

    def test_unknown_entity_raises_keyerror_without_poisoning_batch(self, engine):
        coalescer = RequestCoalescer(engine, threading.Lock(), window_seconds=0.05)
        outcomes = {}
        barrier = threading.Barrier(3)

        def query(entity):
            barrier.wait()
            try:
                outcomes[entity] = coalescer.submit(entity, k=2)
            except KeyError as exc:
                outcomes[entity] = exc

        threads = [
            threading.Thread(target=query, args=(entity,))
            for entity in ("e00", "ghost", "e03")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        coalescer.close()
        assert isinstance(outcomes["ghost"], KeyError)
        assert outcomes["e00"].items == engine.top_k("e00", k=2).items
        assert outcomes["e03"].items == engine.top_k("e03", k=2).items

    def test_queue_overflow_raises(self, engine):
        lock = threading.Lock()
        coalescer = RequestCoalescer(
            engine, lock, window_seconds=0.0, max_pending=1, max_batch=1
        )
        outcomes = []
        outcomes_lock = threading.Lock()

        def worker():
            try:
                coalescer.submit("e00", k=1)
                outcome = "ok"
            except QueueFullError:
                outcome = "full"
            with outcomes_lock:
                outcomes.append(outcome)

        # Starve the dispatcher by holding the engine lock: it can absorb at
        # most one in-flight query, the bounded queue holds one more, and
        # every further submission must be rejected.
        with lock:
            threads = [threading.Thread(target=worker, daemon=True) for _ in range(10)]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with outcomes_lock:
                    if outcomes.count("full") >= 8:
                        break
                time.sleep(0.002)
        for thread in threads:
            thread.join(timeout=5)
        coalescer.close()
        assert outcomes.count("full") >= 8
        assert outcomes.count("ok") >= 1
        assert coalescer.stats.rejected >= 8

    def test_submit_after_close_raises(self, engine):
        coalescer = RequestCoalescer(engine, threading.Lock())
        coalescer.close()
        with pytest.raises(RuntimeError):
            coalescer.submit("e00")

    def test_validates_parameters(self, engine):
        lock = threading.Lock()
        with pytest.raises(ValueError):
            RequestCoalescer(engine, lock, window_seconds=-1)
        with pytest.raises(ValueError):
            RequestCoalescer(engine, lock, max_pending=0)
        with pytest.raises(ValueError):
            RequestCoalescer(engine, lock, max_batch=0)


# ----------------------------------------------------------------------
# TraceServer core (transport-free)
# ----------------------------------------------------------------------
class TestTraceServer:
    @pytest.fixture
    def server(self):
        engine = TraceQueryEngine(
            small_dataset(), num_hashes=32, seed=5, query_cache_size=16
        ).build()
        server = TraceServer(engine, coalesce_window=0.0)
        yield server
        server.close()

    def test_requires_built_engine(self):
        with pytest.raises(ValueError):
            TraceServer(TraceQueryEngine(small_dataset(), num_hashes=8))

    def test_topk_single_matches_engine(self, server):
        status, payload = server.handle_topk({"entity": "e00", "k": 3})
        assert status == 200
        direct = server.engine.top_k("e00", k=3)
        assert payload == topk_result_payload(direct)

    def test_topk_batch_matches_engine_and_skips_coalescer(self, server):
        entities = ["e00", "e03", "e07"]
        status, payload = server.handle_topk({"entities": entities, "k": 2})
        assert status == 200
        assert payload == {
            "results": [
                topk_result_payload(server.engine.top_k(entity, k=2))
                for entity in entities
            ]
        }
        # Batch requests dispatch directly as one top_k_batch call under
        # the engine lock, not entity-by-entity through the coalescer.
        assert server.coalescer.stats.submitted == 0

    def test_topk_batch_unknown_entity_is_404(self, server):
        status, payload = server.handle_topk({"entities": ["e00", "ghost"]})
        assert status == 404
        assert "ghost" in payload["error"]

    def test_topk_unknown_entity_is_404(self, server):
        status, payload = server.handle_topk({"entity": "ghost"})
        assert status == 404
        assert "ghost" in payload["error"]

    def test_topk_malformed_is_400(self, server):
        status, payload = server.handle_topk({"k": 3})
        assert status == 400
        assert "error" in payload

    def test_events_buffer_then_flush(self, server):
        status, payload = server.handle_events(
            {"events": [{"entity": "new", "unit": "u2_0_0", "start": 1, "end": 4}]}
        )
        assert status == 200
        assert payload == {
            "accepted": 1, "buffered": 1, "flushed_events": 0, "dropped_late": 0,
        }
        # Buffered events are invisible to queries until a flush.
        assert server.handle_topk({"entity": "new"})[0] == 404
        status, payload = server.handle_events({"flush": True})
        assert status == 200
        assert payload["flushed_events"] == 1
        assert payload["affected_entities"] == ["new"]
        assert server.handle_topk({"entity": "new"})[0] == 200

    def test_events_reject_unknown_unit_atomically(self, server):
        status, payload = server.handle_events(
            {
                "events": [
                    {"entity": "a", "unit": "u2_0_0", "start": 1, "end": 2},
                    {"entity": "b", "unit": "mars", "start": 1, "end": 2},
                ]
            }
        )
        assert status == 400
        assert "mars" in payload["error"]
        # Nothing from the rejected batch was buffered.
        assert server.ingestor.buffered_events == 0

    def test_events_reject_non_base_unit(self, server):
        status, payload = server.handle_events(
            {"events": [{"entity": "a", "unit": "u1_0", "start": 1, "end": 2}]}
        )
        assert status == 400
        assert "base unit" in payload["error"]

    def test_events_reject_period_beyond_horizon(self, server):
        # The horizon bound is load-bearing: signature work is O(duration)
        # under the engine lock, and a far-future end would poison the
        # monotone watermark of a windowed deployment.
        status, payload = server.handle_events(
            {"events": [{"entity": "a", "unit": "u2_0_0", "start": 0, "end": 10**6}]}
        )
        assert status == 400
        assert "beyond the served horizon" in payload["error"]
        assert server.ingestor.buffered_events == 0

    def test_windowed_late_arrivals_are_reported_in_the_response(self):
        engine = TraceQueryEngine(small_dataset(), num_hashes=32, seed=5).build()
        with TraceServer(
            engine, streaming=StreamingConfig(max_batch_events=100, window=10)
        ) as server:
            status, payload = server.handle_events(
                {
                    "events": [
                        {"entity": "now", "unit": "u2_0_0", "start": 40, "end": 44}
                    ],
                    "flush": True,
                }
            )
            assert (status, payload["dropped_late"]) == (200, 0)
            # end=2 is already outside [watermark - window, ...) = [34, ...)
            status, payload = server.handle_events(
                {
                    "events": [
                        {"entity": "old", "unit": "u2_0_0", "start": 1, "end": 2}
                    ],
                    "flush": True,
                }
            )
            assert status == 200
            assert payload["accepted"] == 1
            assert payload["flushed_events"] == 0
            assert payload["dropped_late"] == 1
            assert "old" not in engine.dataset

    def test_healthz(self, server):
        status, payload = server.handle_healthz()
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["entities"] == 12
        assert payload["uptime_seconds"] >= 0

    def test_healthz_flips_to_503_once_closed(self, server):
        assert server.handle_healthz()[0] == 200
        server.close()
        status, payload = server.handle_healthz()
        # Load balancers key on the status code, not the body: a draining
        # instance answering 200 with "shutting_down" would stay in rotation.
        assert status == 503
        assert payload["status"] == "shutting_down"

    def test_stats_sections(self, server):
        server.handle_topk({"entity": "e00"})
        server.handle_topk({"entity": "e00"})
        status, payload = server.handle_stats()
        assert status == 200
        assert set(payload) == {
            "engine", "ingest", "coalescer", "endpoints", "tracing", "uptime_seconds",
        }
        assert payload["engine"]["kind"] == "single"
        assert payload["engine"]["cache"]["hits"] >= 1
        assert payload["coalescer"]["submitted"] == 2
        assert payload["ingest"]["events_submitted"] == 0

    def test_stats_shard_sizes_for_sharded_engine(self):
        engine = ShardedEngine(
            small_dataset(), num_shards=3, num_hashes=32, seed=5, query_cache_size=16
        ).build()
        with TraceServer(engine, coalesce_window=0.0) as server:
            status, payload = server.handle_stats()
        assert status == 200
        assert payload["engine"]["kind"] == "sharded"
        assert len(payload["engine"]["shard_sizes"]) == 3
        assert sum(payload["engine"]["shard_sizes"]) == 12
        assert payload["engine"]["loose_operations"] == 0

    def test_close_flushes_buffered_events(self):
        engine = TraceQueryEngine(small_dataset(), num_hashes=32, seed=5).build()
        server = TraceServer(engine, streaming=StreamingConfig(max_batch_events=100))
        server.handle_events(
            {"events": [{"entity": "tail", "unit": "u2_0_0", "start": 1, "end": 3}]}
        )
        assert "tail" not in engine.dataset
        server.close()
        assert "tail" in engine.dataset
        # Idempotent.
        server.close()

    def test_events_rejected_while_closed(self, server):
        server.close()
        status, payload = server.handle_events({"flush": True})
        assert status == 503

    def test_topk_rejected_while_closed_in_both_forms(self, server):
        server.close()
        assert server.handle_topk({"entity": "e00"})[0] == 503
        assert server.handle_topk({"entities": ["e00"], "k": 1})[0] == 503


# ----------------------------------------------------------------------
# Observability endpoints (transport-free)
# ----------------------------------------------------------------------
def _span_names(nodes):
    names = set()
    for node in nodes:
        names.add(node["name"])
        names.update(_span_names(node["children"]))
    return names


class TestObservabilityEndpoints:
    def build_server(self, **kwargs):
        engine = TraceQueryEngine(
            small_dataset(), num_hashes=32, seed=5, query_cache_size=16
        ).build()
        return TraceServer(engine, coalesce_window=0.0, **kwargs)

    def test_metrics_exposition_is_valid_and_counts_requests(self):
        with self.build_server() as server:
            server.handle_topk({"entity": "e00"})
            server.handle_topk({"entities": ["e01", "e02"], "k": 2})
            server.metrics.observe("/v1/topk", 200, 0.004)
            server.metrics.observe("/v1/topk", 200, 0.004)
            status, text = server.handle_metrics()
        assert status == 200
        families = parse_exposition(text)
        for name in (
            "repro_requests_total",
            "repro_request_latency_seconds",
            "repro_stage_latency_seconds",
            "repro_trace_sample_rate",
            "repro_coalescer_queries_total",
            "repro_ingest_buffered_events",
            "repro_cache_entries",
            "repro_index_entities",
            "repro_uptime_seconds",
        ):
            assert name in families, name
        samples = families["repro_requests_total"]["samples"]
        topk = [s for s in samples if s[1].get("endpoint") == "/v1/topk"]
        assert [value for _, _, value in topk] == [2.0]
        # The 4ms observations land in cumulative buckets at le=0.005+.
        latency = families["repro_request_latency_seconds"]["samples"]
        by_le = {
            s[1]["le"]: s[2]
            for s in latency
            if s[0].endswith("_bucket") and s[1].get("endpoint") == "/v1/topk"
        }
        assert by_le["0.002"] == 0.0
        assert by_le["0.005"] == 2.0
        assert by_le["+Inf"] == 2.0

    def test_tracing_is_zero_cost_when_disabled(self):
        with self.build_server() as server:
            for _ in range(5):
                server.handle_topk({"entity": "e00"})
            counters = server.tracer.counters_snapshot()
        assert counters["started"] == 0
        assert counters["recorded"] == 0
        assert server.tracer.recent_snapshot() == []

    def test_traced_results_stay_byte_identical(self):
        with self.build_server() as plain, self.build_server(
            trace_sample=1.0
        ) as traced:
            for request in (
                {"entity": "e00", "k": 3},
                {"entities": ["e01", "e05", "e09"], "k": 2},
            ):
                assert traced.handle_topk(dict(request)) == plain.handle_topk(
                    dict(request)
                )

    def test_traced_query_yields_full_span_tree(self):
        with self.build_server(trace_sample=1.0) as server:
            server.handle_topk({"entity": "e00", "k": 3})
            records = server.tracer.recent_snapshot()
        (record,) = records
        assert record["status"] == 200
        (root,) = record["spans"]
        assert root["name"] == "request.topk"
        assert root["attributes"]["queries"] == 1
        names = _span_names(record["spans"])
        assert {"coalesce.wait", "coalesce.dispatch"} <= names
        # The kernel stages run on a cache miss; cache.lookup always runs.
        assert {"cache.lookup", "kernel.bounds", "kernel.traverse",
                "kernel.scores", "kernel.merge"} <= names

    def test_client_errors_keep_their_status_but_are_not_errored(self):
        # 4xx responses are the client's fault: they are retained in the
        # ring/slow log with their status, but only 5xx and raised
        # exceptions land in the errored buffer.
        with self.build_server(trace_sample=1.0) as server:
            server.handle_topk({"entity": "ghost"})
            status, payload = server.handle_debug_slow()
        assert status == 200
        assert set(payload) == {"sample_rate", "slowest", "errored"}
        assert payload["sample_rate"] == 1.0
        assert payload["errored"] == []
        (record,) = payload["slowest"]
        assert record["status"] == 404
        assert record["error"] is False

    def test_debug_slow_retains_sampled_traces(self):
        with self.build_server(trace_sample=1.0) as server:
            for index in range(4):
                server.handle_topk({"entity": f"e{index:02d}"})
            status, payload = server.handle_debug_slow()
        assert status == 200
        assert len(payload["slowest"]) == 4
        for record in payload["slowest"]:
            assert record["trace_id"]
            assert record["duration_seconds"] >= 0.0

    def test_stats_reports_tracing_counters(self):
        with self.build_server(trace_sample=1.0) as server:
            server.handle_topk({"entity": "e00"})
            status, payload = server.handle_stats()
        assert status == 200
        tracing = payload["tracing"]
        assert tracing["sample_rate"] == 1.0
        assert tracing["started"] == 1
        assert tracing["recorded"] == 1


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
class _Daemon:
    """A live daemon on an ephemeral port, with a tiny JSON client."""

    def __init__(self, engine, **server_kwargs):
        self.trace_server = TraceServer(engine, **server_kwargs)
        self.httpd = build_http_server(self.trace_server, port=0)
        self.port = self.httpd.server_address[1]
        self.thread = threading.Thread(target=self.httpd.serve_forever, daemon=True)
        self.thread.start()

    def request(self, method, path, payload=None):
        connection = http.client.HTTPConnection("127.0.0.1", self.port, timeout=10)
        try:
            body = None if payload is None else json.dumps(payload)
            connection.request(
                method, path, body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            raw = response.read()
            return response.status, json.loads(raw)
        finally:
            connection.close()

    def close(self):
        self.httpd.shutdown()
        self.httpd.server_close()
        self.trace_server.close()
        self.thread.join(timeout=5)


@pytest.fixture
def daemon():
    engine = TraceQueryEngine(
        small_dataset(), num_hashes=32, seed=5, query_cache_size=16
    ).build()
    daemon = _Daemon(engine, coalesce_window=0.0)
    yield daemon
    daemon.close()


class TestHTTP:
    def test_topk_roundtrip(self, daemon):
        status, payload = daemon.request("POST", "/v1/topk", {"entity": "e00", "k": 2})
        assert status == 200
        expected = topk_result_payload(daemon.trace_server.engine.top_k("e00", k=2))
        assert payload == json.loads(dumps(expected))

    def test_events_then_query(self, daemon):
        status, payload = daemon.request(
            "POST",
            "/v1/events",
            {
                "events": [
                    {"entity": "fresh", "unit": "u2_1_1", "start": 2, "end": 6},
                    {"entity": "e00", "unit": "u2_1_1", "start": 2, "end": 6},
                ],
                "flush": True,
            },
        )
        assert status == 200
        assert payload["flushed_events"] == 2
        status, payload = daemon.request("POST", "/v1/topk", {"entity": "fresh", "k": 1})
        assert status == 200
        expected = daemon.trace_server.engine.top_k("fresh", k=1)
        assert payload["results"][0]["entity"] == expected.entities[0]

    def test_healthz_and_stats(self, daemon):
        assert daemon.request("GET", "/v1/healthz")[0] == 200
        daemon.request("POST", "/v1/topk", {"entity": "e01"})
        status, payload = daemon.request("GET", "/v1/stats")
        assert status == 200
        assert payload["endpoints"]["/v1/topk"]["requests"] == 1
        assert payload["endpoints"]["/v1/topk"]["status"]["200"] == 1

    def test_error_statuses(self, daemon):
        assert daemon.request("POST", "/v1/topk", {"entity": "ghost"})[0] == 404
        assert daemon.request("POST", "/v1/topk", {"bad": 1})[0] == 400
        assert daemon.request("GET", "/v1/nope")[0] == 404
        assert daemon.request("GET", "/v1/topk")[0] == 405
        assert daemon.request("POST", "/v1/unknown", {})[0] == 404

    def test_unrouted_paths_share_one_metrics_key(self, daemon):
        for suffix in ("a", "b", "c"):
            assert daemon.request("GET", f"/v1/scan-{suffix}")[0] == 404
        assert daemon.request("POST", "/v1/also-unknown", {})[0] == 404
        # Query strings are stripped both for routing and for metrics keys.
        assert daemon.request("GET", "/v1/healthz?probe=1")[0] == 200
        snapshot = daemon.trace_server.metrics.snapshot()
        assert snapshot["other"]["requests"] == 4
        assert snapshot["/v1/healthz"]["requests"] == 1
        assert set(snapshot) <= {
            "/v1/topk", "/v1/events", "/v1/healthz", "/v1/stats", "other",
        }

    def test_invalid_json_body_is_400(self, daemon):
        connection = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=10)
        try:
            connection.request(
                "POST",
                "/v1/topk",
                body="{nope",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert b"not valid JSON" in response.read()
        finally:
            connection.close()

    def test_unread_body_closes_the_keepalive_connection(self, daemon):
        # A 413 (body never read) must not leave a keep-alive connection
        # desynchronised -- the unread bytes would otherwise be parsed as
        # the next request line.
        connection = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=10)
        try:
            connection.putrequest("POST", "/v1/topk")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(99999999999))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()
        # A fresh connection keeps working.
        assert daemon.request("GET", "/v1/healthz")[0] == 200

    def test_get_with_a_body_closes_the_connection(self, daemon):
        connection = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=10)
        try:
            connection.request("GET", "/v1/healthz", body="stray body")
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()

    def test_unknown_post_path_is_404_even_with_garbage_body(self, daemon):
        connection = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=10)
        try:
            connection.request(
                "POST",
                "/v1/not-an-endpoint",
                body="not json at all",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 404
            assert b"unknown path" in response.read()
        finally:
            connection.close()

    def test_admission_control_returns_429(self):
        engine = TraceQueryEngine(small_dataset(), num_hashes=32, seed=5).build()
        daemon = _Daemon(
            engine, coalesce_window=0.0, max_pending=1, max_batch=1
        )
        try:
            statuses = []
            lock = daemon.trace_server.engine_lock
            with lock:
                # With the engine lock held the dispatcher cannot finish a
                # round, so concurrent requests pile into the bounded queue.
                threads = []
                collected = threading.Lock()

                def fire():
                    status, _ = daemon.request(
                        "POST", "/v1/topk", {"entity": "e00", "k": 1}
                    )
                    with collected:
                        statuses.append(status)

                for _ in range(8):
                    thread = threading.Thread(target=fire)
                    thread.start()
                    threads.append(thread)
                deadline = time.monotonic() + 5.0
                while len(statuses) < 6 and time.monotonic() < deadline:
                    time.sleep(0.005)
            for thread in threads:
                thread.join(timeout=5)
            assert 429 in statuses
            assert statuses.count(200) >= 1
        finally:
            daemon.close()

    def test_metrics_served_as_prometheus_text(self):
        engine = TraceQueryEngine(small_dataset(), num_hashes=32, seed=5).build()
        daemon = _Daemon(engine, coalesce_window=0.0, trace_sample=1.0)
        try:
            daemon.request("POST", "/v1/topk", {"entity": "e00", "k": 2})
            connection = http.client.HTTPConnection(
                "127.0.0.1", daemon.port, timeout=10
            )
            try:
                connection.request("GET", "/metrics")
                response = connection.getresponse()
                content_type = response.getheader("Content-Type")
                text = response.read().decode("utf-8")
            finally:
                connection.close()
            assert response.status == 200
            assert content_type == "text/plain; version=0.0.4; charset=utf-8"
            families = parse_exposition(text)
            assert "repro_requests_total" in families
            assert "repro_traces_total" in families
            # /metrics requests are themselves metered.
            status, payload = daemon.request("GET", "/v1/stats")
            assert status == 200
            assert payload["endpoints"]["/metrics"]["requests"] == 1
        finally:
            daemon.close()

    def test_debug_slow_over_http(self):
        engine = TraceQueryEngine(small_dataset(), num_hashes=32, seed=5).build()
        daemon = _Daemon(engine, coalesce_window=0.0, trace_sample=1.0)
        try:
            daemon.request("POST", "/v1/topk", {"entity": "e00", "k": 2})
            status, payload = daemon.request("GET", "/v1/debug/slow")
            assert status == 200
            assert payload["sample_rate"] == 1.0
            (record,) = payload["slowest"]
            assert record["spans"][0]["name"] == "request.topk"
        finally:
            daemon.close()


# ----------------------------------------------------------------------
# CLI error paths (satellite: serve-adjacent errors exit 2, no traceback)
# ----------------------------------------------------------------------
class TestServeCLIErrors:
    def test_missing_snapshot_exits_2(self, tmp_path, capsys):
        assert main(["serve", "--snapshot", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_corrupt_snapshot_exits_2(self, tmp_path, capsys):
        snapshot = tmp_path / "corrupt"
        snapshot.mkdir()
        (snapshot / "manifest.json").write_text("{broken")
        assert main(["serve", "--snapshot", str(snapshot)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_port_in_use_exits_2(self, tmp_path, capsys):
        engine = TraceQueryEngine(small_dataset(), num_hashes=16, seed=5).build()
        snapshot = tmp_path / "snap"
        engine.save(snapshot)
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            port = blocker.getsockname()[1]
            code = main(["serve", "--snapshot", str(snapshot), "--port", str(port)])
        finally:
            blocker.close()
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot bind" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize(
        "argv",
        [
            ["serve"],
            ["serve", "--snapshot", "s", "--traces", "t", "--hierarchy", "h"],
            ["serve", "--traces", "t"],
            ["serve", "--snapshot", "s", "--port", "70000"],
            ["serve", "--snapshot", "s", "--port", "-1"],
            ["serve", "--snapshot", "s", "--shards", "2"],
            ["serve", "--snapshot", "s", "--num-hashes", "64"],
            ["serve", "--snapshot", "s", "--horizon", "99"],
            ["serve", "--snapshot", "s", "--coalesce-window", "-1"],
            ["serve", "--snapshot", "s", "--max-pending", "0"],
            ["serve", "--snapshot", "s", "--max-batch", "0"],
            ["serve", "--snapshot", "s", "--batch-size", "0"],
            ["serve", "--snapshot", "s", "--window", "-1"],
            ["serve", "--snapshot", "s", "--compact-every", "-1"],
            ["serve", "--snapshot", "s", "--cache", "-1"],
            ["serve", "--snapshot", "s", "--partitioner", "hash"],
        ],
    )
    def test_invalid_options_exit_2(self, argv, capsys):
        assert main(argv) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_index_build_horizon_carries_into_served_snapshot(self, tmp_path):
        # The remedy the /v1/events beyond-horizon error prescribes for
        # snapshot deployments must actually exist: `index build --horizon`
        # over-provisions the hash range, and the snapshot serves it.
        traces = tmp_path / "t.csv"
        hierarchy = tmp_path / "h.json"
        assert (
            main(
                [
                    "generate", "syn", "--entities", "20", "--horizon", "48",
                    "--seed", "3", "--output", str(traces),
                    "--hierarchy", str(hierarchy),
                ]
            )
            == 0
        )
        snapshot = tmp_path / "snap"
        assert (
            main(
                [
                    "index", "build", "--traces", str(traces),
                    "--hierarchy", str(hierarchy), "--output", str(snapshot),
                    "--num-hashes", "16", "--horizon", "500",
                ]
            )
            == 0
        )
        engine = TraceQueryEngine.load(snapshot)
        assert engine.dataset.horizon == 500
        with TraceServer(engine, coalesce_window=0.0) as server:
            unit = engine.dataset.trace(next(iter(engine.dataset.entities)))[0].unit
            status, payload = server.handle_events(
                {
                    "events": [
                        {"entity": "late", "unit": unit, "start": 400, "end": 404}
                    ],
                    "flush": True,
                }
            )
        assert (status, payload["affected_entities"]) == (200, ["late"])

    def test_index_build_rejects_bad_horizon(self, tmp_path, capsys):
        assert (
            main(
                [
                    "index", "build", "--traces", "t", "--hierarchy", "h",
                    "--output", str(tmp_path / "s"), "--horizon", "0",
                ]
            )
            == 2
        )
        assert "--horizon must be >= 1" in capsys.readouterr().err

    def test_unreadable_traces_exit_2(self, tmp_path, capsys):
        hierarchy = tmp_path / "h.json"
        hierarchy.write_text("{}")
        assert (
            main(
                [
                    "serve",
                    "--traces",
                    str(tmp_path / "missing.csv"),
                    "--hierarchy",
                    str(hierarchy),
                ]
            )
            == 2
        )
        assert capsys.readouterr().err.startswith("error:")
