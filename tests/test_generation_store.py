"""Unit tests for the multi-process tier's storage pieces.

:class:`~repro.server.generation.GenerationStore` -- the single-writer
publish / many-reader adopt protocol -- and
:func:`~repro.core.columnar.load_npz_mmap` -- the zero-copy columnar-array
loader that lets every query worker share one physical copy of the compiled
arrays through the page cache.  The end-to-end behaviour (workers adopting
generations mid-traffic, byte-identical responses) is pinned by
``test_server_equivalence.py``; this module covers the pieces in isolation.
"""

import shutil
import threading
import time

import numpy as np
import pytest

from repro.core.columnar import load_npz_mmap
from repro.server.generation import KEEP_GENERATIONS, GenerationStore, SnapshotDelta
from repro.storage.snapshot import SnapshotError, load_engine_snapshot
from repro.traces.events import PresenceInstance


class TestLoadNpzMmap:
    def test_byte_identical_to_np_load(self, tmp_path):
        path = tmp_path / "arrays.npz"
        rng = np.random.default_rng(7)
        arrays = {
            "floats": rng.random((13, 4)),
            "ints": rng.integers(0, 1 << 40, size=57).astype(np.int64),
            "fortran": np.asfortranarray(rng.random((6, 5))),
            "empty": np.zeros((0, 3), dtype=np.float32),
        }
        np.savez(path, **arrays)
        mapped = load_npz_mmap(path)
        assert mapped is not None
        assert set(mapped) == set(arrays)
        for key, value in arrays.items():
            assert mapped[key].dtype == value.dtype
            assert mapped[key].shape == value.shape
            np.testing.assert_array_equal(np.asarray(mapped[key]), value)
        # Non-empty members are real memory maps (shared pages), not copies,
        # and the Fortran layout survives the round trip.
        assert isinstance(mapped["floats"], np.memmap)
        assert mapped["fortran"].flags["F_CONTIGUOUS"]

    def test_compressed_archive_falls_back(self, tmp_path):
        # np.savez_compressed members are deflated: not mappable.  The
        # loader must decline (None) so callers fall back to np.load.
        path = tmp_path / "compressed.npz"
        np.savez_compressed(path, data=np.arange(100))
        assert load_npz_mmap(path) is None

    def test_garbage_file_returns_none(self, tmp_path):
        path = tmp_path / "not_a.npz"
        path.write_bytes(b"definitely not a zip archive")
        assert load_npz_mmap(path) is None

    def test_compressed_fallback_is_byte_identical_via_np_load(self, tmp_path):
        # When the mapper declines, callers answer through np.load: pin that
        # the fallback path reads back the exact bytes that were saved.
        path = tmp_path / "compressed.npz"
        rng = np.random.default_rng(11)
        arrays = {"floats": rng.random((9, 3)), "ints": rng.integers(0, 99, size=17)}
        np.savez_compressed(path, **arrays)
        assert load_npz_mmap(path) is None
        with np.load(path) as fallback:
            assert set(fallback.files) == set(arrays)
            for key, value in arrays.items():
                loaded = fallback[key]
                assert loaded.dtype == value.dtype
                np.testing.assert_array_equal(loaded, value)
                assert loaded.tobytes() == value.tobytes()

    def test_mixed_stored_and_deflated_members_fall_back(self, tmp_path):
        # One deflated member poisons the whole archive: mapping must decline
        # even though the other member is stored, and np.load must still read
        # both back byte-identically.
        import io
        import zipfile

        path = tmp_path / "mixed.npz"
        stored = np.arange(24, dtype=np.int32).reshape(4, 6)
        deflated = np.linspace(0.0, 1.0, 40)

        def npy_bytes(array):
            buffer = io.BytesIO()
            np.lib.format.write_array(buffer, array)
            return buffer.getvalue()

        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr(
                zipfile.ZipInfo("stored.npy"),
                npy_bytes(stored),
                compress_type=zipfile.ZIP_STORED,
            )
            archive.writestr(
                zipfile.ZipInfo("deflated.npy"),
                npy_bytes(deflated),
                compress_type=zipfile.ZIP_DEFLATED,
            )
        assert load_npz_mmap(path) is None
        with np.load(path) as fallback:
            np.testing.assert_array_equal(fallback["stored"], stored)
            assert fallback["stored"].tobytes() == stored.tobytes()
            np.testing.assert_array_equal(fallback["deflated"], deflated)
            assert fallback["deflated"].tobytes() == deflated.tobytes()

    def test_truncated_archive_returns_none(self, tmp_path):
        # Cut a valid archive mid-payload: the ZIP directory (at the end of
        # the file) is gone, so mapping must decline instead of raising.
        path = tmp_path / "whole.npz"
        np.savez(path, data=np.arange(1000, dtype=np.int64))
        blob = path.read_bytes()
        for keep in (len(blob) // 2, 30, 4):
            truncated = tmp_path / f"truncated_{keep}.npz"
            truncated.write_bytes(blob[:keep])
            assert load_npz_mmap(truncated) is None

    def test_corrupt_local_header_returns_none(self, tmp_path):
        # A readable central directory but a clobbered local file header:
        # the per-member header check must decline rather than map garbage.
        path = tmp_path / "clobbered.npz"
        np.savez(path, data=np.arange(64, dtype=np.int16))
        blob = bytearray(path.read_bytes())
        assert blob[:4] == b"PK\x03\x04"
        blob[:4] = b"XXXX"
        path.write_bytes(bytes(blob))
        assert load_npz_mmap(path) is None

    def test_zero_length_arrays_round_trip(self, tmp_path):
        # Empty arrays have no payload to map; they come back as in-memory
        # zeros but must still be byte-identical to what np.load reads.
        path = tmp_path / "empties.npz"
        arrays = {
            "empty_1d": np.zeros((0,), dtype=np.float64),
            "empty_mid": np.zeros((3, 0, 2), dtype=np.int32),
            "nonempty": np.arange(5, dtype=np.uint8),
        }
        np.savez(path, **arrays)
        mapped = load_npz_mmap(path)
        assert mapped is not None
        with np.load(path) as reference:
            for key in arrays:
                via_np_load = reference[key]
                assert mapped[key].dtype == via_np_load.dtype
                assert mapped[key].shape == via_np_load.shape
                np.testing.assert_array_equal(np.asarray(mapped[key]), via_np_load)
                assert np.asarray(mapped[key]).tobytes() == via_np_load.tobytes()
        # Empty members are plain arrays (nothing to share); the non-empty
        # member is a real map and is read-only.
        assert not isinstance(mapped["empty_1d"], np.memmap)
        assert isinstance(mapped["nonempty"], np.memmap)
        with pytest.raises((ValueError, OSError)):
            mapped["nonempty"][0] = 1


class TestGenerationStore:
    def test_publish_and_current_round_trip(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path / "store")
        assert store.current() is None
        assert store.publish(small_engine) == 1
        current = store.current()
        assert current is not None
        number, directory = current
        assert number == 1
        assert directory.name == "gen-000001"
        restored = load_engine_snapshot(directory)
        assert restored.top_k("a", k=3).items == small_engine.top_k("a", k=3).items

    def test_prune_keeps_the_retention_window(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path)
        total = KEEP_GENERATIONS + 2
        for _ in range(total):
            store.publish(small_engine)
        names = sorted(p.name for p in tmp_path.iterdir() if p.name.startswith("gen-"))
        kept = range(total - KEEP_GENERATIONS + 1, total + 1)
        assert names == [f"gen-{generation:06d}" for generation in kept]
        # CURRENT still names the newest, surviving generation.
        number, directory = store.current()
        assert number == total
        assert directory.exists()

    def test_load_current_newer_than_semantics(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path)
        store.publish(small_engine)
        # A reader opening the store fresh (a worker process) sees it.
        reader = GenerationStore(tmp_path)
        loaded = reader.load_current(newer_than=0, timeout=5)
        assert loaded is not None
        generation, engine = loaded
        assert generation == 1
        assert engine.top_k("a", k=3).items == small_engine.top_k("a", k=3).items
        # Nothing newer than what the reader already has: no reload.
        assert reader.load_current(newer_than=1, timeout=5) is None

    def test_load_current_times_out_on_an_empty_store(self, tmp_path):
        store = GenerationStore(tmp_path)
        with pytest.raises(SnapshotError, match="no generation published"):
            store.load_current(timeout=0.05)

    def test_mmap_adopted_generation_answers_identically(self, small_engine, tmp_path):
        # Force a columnar compile so the snapshot carries columnar.npz.
        baseline = small_engine.top_k("a", k=3)
        store = GenerationStore(tmp_path)
        store.publish(small_engine)
        generation, engine = store.load_current(timeout=5)
        assert generation == 1
        result = engine.top_k("a", k=3)
        assert result.items == baseline.items
        assert result.stats.__dict__ == baseline.stats.__dict__


class TestDeltaGenerations:
    """Delta publishes: one flush's operations as a small JSON document.

    A reader standing on the chain applies the missing deltas in place
    (:meth:`GenerationStore.catch_up`); a cold reader materialises the full
    base plus the chain (:meth:`GenerationStore.load_current`); the chain's
    length is bounded by ``delta_limit``, after which a full snapshot is
    forced and older chains pruned.
    """

    def delta_for(self, engine, events, cutoff=None, compacted=False):
        """Mutate ``engine`` as one flush would, and describe it as a delta."""
        delta = SnapshotDelta(events=list(events), cutoff=cutoff, compacted=compacted)
        delta.apply(engine)
        return delta

    def new_event(self, engine, index):
        unit = engine.dataset.hierarchy.base_units[index % 4]
        return PresenceInstance(f"fresh-{index}", unit, 30 + index, 33 + index)

    def test_publish_update_writes_delta_documents(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path, delta_limit=4)
        store.publish(small_engine)
        delta = self.delta_for(small_engine, [self.new_event(small_engine, 0)])
        assert store.publish_update(small_engine, delta=delta) == 2
        assert (tmp_path / "delta-000002.json").exists()
        assert not (tmp_path / "gen-000002").exists()
        number, path = store.current()
        assert number == 2 and path.name == "delta-000002.json"

    def test_cold_load_materialises_base_plus_chain(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path, delta_limit=4)
        store.publish(small_engine)
        for index in range(2):
            delta = self.delta_for(
                small_engine, [self.new_event(small_engine, index)], cutoff=4 + index
            )
            store.publish_update(small_engine, delta=delta)
        reader = GenerationStore(tmp_path, delta_limit=4)
        generation, engine = reader.load_current(timeout=5)
        assert generation == 3
        assert sorted(engine.dataset.entities) == sorted(small_engine.dataset.entities)
        for entity in sorted(small_engine.dataset.entities):
            assert engine.top_k(entity, k=3).items == small_engine.top_k(entity, k=3).items

    def test_catch_up_applies_the_delta_suffix_in_place(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path, delta_limit=8)
        store.publish(small_engine)
        reader = GenerationStore(tmp_path, delta_limit=8)
        generation, engine = reader.load_current(timeout=5)
        assert generation == 1
        assert reader.catch_up(engine, generation) is None  # nothing newer

        for index in range(3):
            delta = self.delta_for(small_engine, [self.new_event(small_engine, index)])
            store.publish_update(small_engine, delta=delta)
        caught_up = reader.catch_up(engine, generation)
        assert caught_up == 4
        for entity in sorted(small_engine.dataset.entities):
            assert engine.top_k(entity, k=3).items == small_engine.top_k(entity, k=3).items
        # Standing at the newest generation now: a further catch-up no-ops.
        assert reader.catch_up(engine, caught_up) is None

    def test_catch_up_declines_across_a_full_snapshot(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path, delta_limit=8)
        store.publish(small_engine)
        store.publish(small_engine)  # newest is full: readers must reload
        reader = GenerationStore(tmp_path, delta_limit=8)
        assert reader.catch_up(object(), 1) is None

    def test_chain_limit_forces_a_full_snapshot(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path, delta_limit=2)
        store.publish(small_engine)
        for index in range(3):
            delta = self.delta_for(small_engine, [self.new_event(small_engine, index)])
            store.publish_update(small_engine, delta=delta)
        # Generations 2 and 3 were deltas; 4 hit the limit and went full.
        assert (tmp_path / "delta-000002.json").exists()
        assert (tmp_path / "delta-000003.json").exists()
        assert (tmp_path / "gen-000004").exists()
        number, path = store.current()
        assert number == 4 and path.name == "gen-000004"
        # The next update chains off the new full base.
        delta = self.delta_for(small_engine, [self.new_event(small_engine, 9)])
        assert store.publish_update(small_engine, delta=delta) == 5
        assert (tmp_path / "delta-000005.json").exists()

    def test_delta_limit_zero_publishes_every_generation_full(
        self, small_engine, tmp_path
    ):
        store = GenerationStore(tmp_path, delta_limit=0)
        store.publish(small_engine)
        delta = self.delta_for(small_engine, [self.new_event(small_engine, 0)])
        assert store.publish_update(small_engine, delta=delta) == 2
        assert (tmp_path / "gen-000002").exists()
        assert not (tmp_path / "delta-000002.json").exists()

    def test_full_publish_prunes_chains_older_than_the_previous_full(
        self, small_engine, tmp_path
    ):
        store = GenerationStore(tmp_path, delta_limit=2)
        store.publish(small_engine)  # gen 1 full
        # Updates produce: deltas 2,3 -> full 4 -> deltas 5,6 -> full 7.
        for index in range(6):
            delta = self.delta_for(small_engine, [self.new_event(small_engine, index)])
            store.publish_update(small_engine, delta=delta)
        assert store.generation == 7
        names = set(p.name for p in tmp_path.iterdir() if p.name != "CURRENT")
        # The second full publish (7) prunes everything below the previous
        # full (4): generation 1's chain is unreachable and gone, while the
        # previous chain (full 4 + deltas 5,6) survives for readers that
        # just fetched the old CURRENT.
        assert "gen-000001" not in names
        assert "delta-000002.json" not in names
        assert "delta-000003.json" not in names
        assert {"gen-000004", "delta-000005.json", "delta-000006.json", "gen-000007"} <= names

    def test_current_meta_reads_extra_from_either_kind(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path, delta_limit=4)
        store.publish(small_engine, extra_meta={"wal_seq": 3, "stream": {"watermark": 7}})
        assert store.current_meta() == {"wal_seq": 3, "stream": {"watermark": 7}}
        delta = self.delta_for(small_engine, [self.new_event(small_engine, 0)])
        store.publish_update(
            small_engine, delta=delta, extra_meta={"wal_seq": 4, "stream": {"watermark": 9}}
        )
        assert store.current_meta() == {"wal_seq": 4, "stream": {"watermark": 9}}

    def test_delta_payload_round_trips(self, small_engine, tmp_path):
        events = [self.new_event(small_engine, 0), self.new_event(small_engine, 1)]
        delta = SnapshotDelta(events=events, cutoff=12, compacted=True)
        clone = SnapshotDelta.from_payload(delta.to_payload())
        assert clone.events == events
        assert clone.cutoff == 12
        assert clone.compacted is True
        assert not delta.is_empty()
        assert SnapshotDelta().is_empty()


class TestCurrentRecovery:
    """Recovery when ``CURRENT`` names a pruned or half-deleted generation.

    The publish protocol never *creates* this state (directories are
    complete before ``CURRENT`` swaps, pruning only drops unreachable
    chains), but crashes and operator mistakes can: a reader must neither
    hang forever nor serve a torn snapshot.  The contract is bounded
    retry -- long enough for a concurrent publish to repair the store,
    then a clean :class:`SnapshotError`.
    """

    def test_current_naming_a_pruned_directory_raises_after_bounded_retry(
        self, small_engine, tmp_path
    ):
        store = GenerationStore(tmp_path)
        store.publish(small_engine)
        _, directory = store.current()
        shutil.rmtree(directory)  # the directory CURRENT names is gone
        reader = GenerationStore(tmp_path)
        started = time.monotonic()
        with pytest.raises(SnapshotError):
            reader.load_current(timeout=0.3)
        # It kept retrying (a publish could have repaired the store) and
        # gave up only once the budget was spent -- no instant failure,
        # no unbounded hang.
        assert 0.25 <= time.monotonic() - started < 5.0

    def test_current_naming_a_half_deleted_directory_raises(
        self, small_engine, tmp_path
    ):
        store = GenerationStore(tmp_path)
        store.publish(small_engine)
        _, directory = store.current()
        # A partially deleted generation: the directory exists but its
        # files are gone -- indistinguishable from a torn snapshot.
        for entry in list(directory.iterdir()):
            if entry.is_file():
                entry.unlink()
        reader = GenerationStore(tmp_path)
        with pytest.raises(SnapshotError):
            reader.load_current(timeout=0.3)

    def test_reader_recovers_when_a_publish_lands_during_the_retry_window(
        self, small_engine, tmp_path
    ):
        store = GenerationStore(tmp_path)
        store.publish(small_engine)
        _, directory = store.current()
        shutil.rmtree(directory)

        def repair():
            time.sleep(0.25)
            store.publish(small_engine)  # generation 2, CURRENT re-swapped

        repairer = threading.Thread(target=repair)
        repairer.start()
        try:
            reader = GenerationStore(tmp_path)
            loaded = reader.load_current(timeout=10.0)
        finally:
            repairer.join()
        assert loaded is not None
        generation, engine = loaded
        assert generation == 2
        assert engine.top_k("a", k=3).items == small_engine.top_k("a", k=3).items

    def test_vanished_current_with_a_prior_generation_is_fatal_immediately(
        self, small_engine, tmp_path
    ):
        store = GenerationStore(tmp_path)
        store.publish(small_engine)
        (tmp_path / "CURRENT").unlink()
        reader = GenerationStore(tmp_path)
        # A store that once had generations never legitimately returns to
        # having none: a reader standing at generation 1 fails fast
        # instead of burning its whole retry budget.
        started = time.monotonic()
        with pytest.raises(SnapshotError, match="lost its CURRENT"):
            reader.load_current(newer_than=1, timeout=30.0)
        assert time.monotonic() - started < 1.0
