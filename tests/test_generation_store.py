"""Unit tests for the multi-process tier's storage pieces.

:class:`~repro.server.generation.GenerationStore` -- the single-writer
publish / many-reader adopt protocol -- and
:func:`~repro.core.columnar.load_npz_mmap` -- the zero-copy columnar-array
loader that lets every query worker share one physical copy of the compiled
arrays through the page cache.  The end-to-end behaviour (workers adopting
generations mid-traffic, byte-identical responses) is pinned by
``test_server_equivalence.py``; this module covers the pieces in isolation.
"""

import numpy as np
import pytest

from repro.core.columnar import load_npz_mmap
from repro.server.generation import KEEP_GENERATIONS, GenerationStore
from repro.storage.snapshot import SnapshotError, load_engine_snapshot


class TestLoadNpzMmap:
    def test_byte_identical_to_np_load(self, tmp_path):
        path = tmp_path / "arrays.npz"
        rng = np.random.default_rng(7)
        arrays = {
            "floats": rng.random((13, 4)),
            "ints": rng.integers(0, 1 << 40, size=57).astype(np.int64),
            "fortran": np.asfortranarray(rng.random((6, 5))),
            "empty": np.zeros((0, 3), dtype=np.float32),
        }
        np.savez(path, **arrays)
        mapped = load_npz_mmap(path)
        assert mapped is not None
        assert set(mapped) == set(arrays)
        for key, value in arrays.items():
            assert mapped[key].dtype == value.dtype
            assert mapped[key].shape == value.shape
            np.testing.assert_array_equal(np.asarray(mapped[key]), value)
        # Non-empty members are real memory maps (shared pages), not copies,
        # and the Fortran layout survives the round trip.
        assert isinstance(mapped["floats"], np.memmap)
        assert mapped["fortran"].flags["F_CONTIGUOUS"]

    def test_compressed_archive_falls_back(self, tmp_path):
        # np.savez_compressed members are deflated: not mappable.  The
        # loader must decline (None) so callers fall back to np.load.
        path = tmp_path / "compressed.npz"
        np.savez_compressed(path, data=np.arange(100))
        assert load_npz_mmap(path) is None

    def test_garbage_file_returns_none(self, tmp_path):
        path = tmp_path / "not_a.npz"
        path.write_bytes(b"definitely not a zip archive")
        assert load_npz_mmap(path) is None


class TestGenerationStore:
    def test_publish_and_current_round_trip(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path / "store")
        assert store.current() is None
        assert store.publish(small_engine) == 1
        current = store.current()
        assert current is not None
        number, directory = current
        assert number == 1
        assert directory.name == "gen-000001"
        restored = load_engine_snapshot(directory)
        assert restored.top_k("a", k=3).items == small_engine.top_k("a", k=3).items

    def test_prune_keeps_the_retention_window(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path)
        total = KEEP_GENERATIONS + 2
        for _ in range(total):
            store.publish(small_engine)
        names = sorted(p.name for p in tmp_path.iterdir() if p.name.startswith("gen-"))
        kept = range(total - KEEP_GENERATIONS + 1, total + 1)
        assert names == [f"gen-{generation:06d}" for generation in kept]
        # CURRENT still names the newest, surviving generation.
        number, directory = store.current()
        assert number == total
        assert directory.exists()

    def test_load_current_newer_than_semantics(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path)
        store.publish(small_engine)
        # A reader opening the store fresh (a worker process) sees it.
        reader = GenerationStore(tmp_path)
        loaded = reader.load_current(newer_than=0, timeout=5)
        assert loaded is not None
        generation, engine = loaded
        assert generation == 1
        assert engine.top_k("a", k=3).items == small_engine.top_k("a", k=3).items
        # Nothing newer than what the reader already has: no reload.
        assert reader.load_current(newer_than=1, timeout=5) is None

    def test_load_current_times_out_on_an_empty_store(self, tmp_path):
        store = GenerationStore(tmp_path)
        with pytest.raises(SnapshotError, match="no generation published"):
            store.load_current(timeout=0.05)

    def test_mmap_adopted_generation_answers_identically(self, small_engine, tmp_path):
        # Force a columnar compile so the snapshot carries columnar.npz.
        baseline = small_engine.top_k("a", k=3)
        store = GenerationStore(tmp_path)
        store.publish(small_engine)
        generation, engine = store.load_current(timeout=5)
        assert generation == 1
        result = engine.top_k("a", k=3)
        assert result.items == baseline.items
        assert result.stats.__dict__ == baseline.stats.__dict__
