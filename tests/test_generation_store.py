"""Unit tests for the multi-process tier's storage pieces.

:class:`~repro.server.generation.GenerationStore` -- the single-writer
publish / many-reader adopt protocol -- and
:func:`~repro.core.columnar.load_npz_mmap` -- the zero-copy columnar-array
loader that lets every query worker share one physical copy of the compiled
arrays through the page cache.  The end-to-end behaviour (workers adopting
generations mid-traffic, byte-identical responses) is pinned by
``test_server_equivalence.py``; this module covers the pieces in isolation.
"""

import numpy as np
import pytest

from repro.core.columnar import load_npz_mmap
from repro.server.generation import KEEP_GENERATIONS, GenerationStore
from repro.storage.snapshot import SnapshotError, load_engine_snapshot


class TestLoadNpzMmap:
    def test_byte_identical_to_np_load(self, tmp_path):
        path = tmp_path / "arrays.npz"
        rng = np.random.default_rng(7)
        arrays = {
            "floats": rng.random((13, 4)),
            "ints": rng.integers(0, 1 << 40, size=57).astype(np.int64),
            "fortran": np.asfortranarray(rng.random((6, 5))),
            "empty": np.zeros((0, 3), dtype=np.float32),
        }
        np.savez(path, **arrays)
        mapped = load_npz_mmap(path)
        assert mapped is not None
        assert set(mapped) == set(arrays)
        for key, value in arrays.items():
            assert mapped[key].dtype == value.dtype
            assert mapped[key].shape == value.shape
            np.testing.assert_array_equal(np.asarray(mapped[key]), value)
        # Non-empty members are real memory maps (shared pages), not copies,
        # and the Fortran layout survives the round trip.
        assert isinstance(mapped["floats"], np.memmap)
        assert mapped["fortran"].flags["F_CONTIGUOUS"]

    def test_compressed_archive_falls_back(self, tmp_path):
        # np.savez_compressed members are deflated: not mappable.  The
        # loader must decline (None) so callers fall back to np.load.
        path = tmp_path / "compressed.npz"
        np.savez_compressed(path, data=np.arange(100))
        assert load_npz_mmap(path) is None

    def test_garbage_file_returns_none(self, tmp_path):
        path = tmp_path / "not_a.npz"
        path.write_bytes(b"definitely not a zip archive")
        assert load_npz_mmap(path) is None

    def test_compressed_fallback_is_byte_identical_via_np_load(self, tmp_path):
        # When the mapper declines, callers answer through np.load: pin that
        # the fallback path reads back the exact bytes that were saved.
        path = tmp_path / "compressed.npz"
        rng = np.random.default_rng(11)
        arrays = {"floats": rng.random((9, 3)), "ints": rng.integers(0, 99, size=17)}
        np.savez_compressed(path, **arrays)
        assert load_npz_mmap(path) is None
        with np.load(path) as fallback:
            assert set(fallback.files) == set(arrays)
            for key, value in arrays.items():
                loaded = fallback[key]
                assert loaded.dtype == value.dtype
                np.testing.assert_array_equal(loaded, value)
                assert loaded.tobytes() == value.tobytes()

    def test_mixed_stored_and_deflated_members_fall_back(self, tmp_path):
        # One deflated member poisons the whole archive: mapping must decline
        # even though the other member is stored, and np.load must still read
        # both back byte-identically.
        import io
        import zipfile

        path = tmp_path / "mixed.npz"
        stored = np.arange(24, dtype=np.int32).reshape(4, 6)
        deflated = np.linspace(0.0, 1.0, 40)

        def npy_bytes(array):
            buffer = io.BytesIO()
            np.lib.format.write_array(buffer, array)
            return buffer.getvalue()

        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr(
                zipfile.ZipInfo("stored.npy"),
                npy_bytes(stored),
                compress_type=zipfile.ZIP_STORED,
            )
            archive.writestr(
                zipfile.ZipInfo("deflated.npy"),
                npy_bytes(deflated),
                compress_type=zipfile.ZIP_DEFLATED,
            )
        assert load_npz_mmap(path) is None
        with np.load(path) as fallback:
            np.testing.assert_array_equal(fallback["stored"], stored)
            assert fallback["stored"].tobytes() == stored.tobytes()
            np.testing.assert_array_equal(fallback["deflated"], deflated)
            assert fallback["deflated"].tobytes() == deflated.tobytes()

    def test_truncated_archive_returns_none(self, tmp_path):
        # Cut a valid archive mid-payload: the ZIP directory (at the end of
        # the file) is gone, so mapping must decline instead of raising.
        path = tmp_path / "whole.npz"
        np.savez(path, data=np.arange(1000, dtype=np.int64))
        blob = path.read_bytes()
        for keep in (len(blob) // 2, 30, 4):
            truncated = tmp_path / f"truncated_{keep}.npz"
            truncated.write_bytes(blob[:keep])
            assert load_npz_mmap(truncated) is None

    def test_corrupt_local_header_returns_none(self, tmp_path):
        # A readable central directory but a clobbered local file header:
        # the per-member header check must decline rather than map garbage.
        path = tmp_path / "clobbered.npz"
        np.savez(path, data=np.arange(64, dtype=np.int16))
        blob = bytearray(path.read_bytes())
        assert blob[:4] == b"PK\x03\x04"
        blob[:4] = b"XXXX"
        path.write_bytes(bytes(blob))
        assert load_npz_mmap(path) is None

    def test_zero_length_arrays_round_trip(self, tmp_path):
        # Empty arrays have no payload to map; they come back as in-memory
        # zeros but must still be byte-identical to what np.load reads.
        path = tmp_path / "empties.npz"
        arrays = {
            "empty_1d": np.zeros((0,), dtype=np.float64),
            "empty_mid": np.zeros((3, 0, 2), dtype=np.int32),
            "nonempty": np.arange(5, dtype=np.uint8),
        }
        np.savez(path, **arrays)
        mapped = load_npz_mmap(path)
        assert mapped is not None
        with np.load(path) as reference:
            for key in arrays:
                via_np_load = reference[key]
                assert mapped[key].dtype == via_np_load.dtype
                assert mapped[key].shape == via_np_load.shape
                np.testing.assert_array_equal(np.asarray(mapped[key]), via_np_load)
                assert np.asarray(mapped[key]).tobytes() == via_np_load.tobytes()
        # Empty members are plain arrays (nothing to share); the non-empty
        # member is a real map and is read-only.
        assert not isinstance(mapped["empty_1d"], np.memmap)
        assert isinstance(mapped["nonempty"], np.memmap)
        with pytest.raises((ValueError, OSError)):
            mapped["nonempty"][0] = 1


class TestGenerationStore:
    def test_publish_and_current_round_trip(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path / "store")
        assert store.current() is None
        assert store.publish(small_engine) == 1
        current = store.current()
        assert current is not None
        number, directory = current
        assert number == 1
        assert directory.name == "gen-000001"
        restored = load_engine_snapshot(directory)
        assert restored.top_k("a", k=3).items == small_engine.top_k("a", k=3).items

    def test_prune_keeps_the_retention_window(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path)
        total = KEEP_GENERATIONS + 2
        for _ in range(total):
            store.publish(small_engine)
        names = sorted(p.name for p in tmp_path.iterdir() if p.name.startswith("gen-"))
        kept = range(total - KEEP_GENERATIONS + 1, total + 1)
        assert names == [f"gen-{generation:06d}" for generation in kept]
        # CURRENT still names the newest, surviving generation.
        number, directory = store.current()
        assert number == total
        assert directory.exists()

    def test_load_current_newer_than_semantics(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path)
        store.publish(small_engine)
        # A reader opening the store fresh (a worker process) sees it.
        reader = GenerationStore(tmp_path)
        loaded = reader.load_current(newer_than=0, timeout=5)
        assert loaded is not None
        generation, engine = loaded
        assert generation == 1
        assert engine.top_k("a", k=3).items == small_engine.top_k("a", k=3).items
        # Nothing newer than what the reader already has: no reload.
        assert reader.load_current(newer_than=1, timeout=5) is None

    def test_load_current_times_out_on_an_empty_store(self, tmp_path):
        store = GenerationStore(tmp_path)
        with pytest.raises(SnapshotError, match="no generation published"):
            store.load_current(timeout=0.05)

    def test_mmap_adopted_generation_answers_identically(self, small_engine, tmp_path):
        # Force a columnar compile so the snapshot carries columnar.npz.
        baseline = small_engine.top_k("a", k=3)
        store = GenerationStore(tmp_path)
        store.publish(small_engine)
        generation, engine = store.load_current(timeout=5)
        assert generation == 1
        result = engine.top_k("a", k=3)
        assert result.items == baseline.items
        assert result.stats.__dict__ == baseline.stats.__dict__
