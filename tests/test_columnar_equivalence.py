"""The columnar kernel's bitwise-equivalence guarantee, pinned by fuzzing.

The columnar query engine (``EngineConfig.columnar_queries``, the default)
must produce **bit-identical** ``TopKResult``s -- items, ordering, scores,
and every ``QueryStats`` counter -- to the reference pointer-walking
traversal, across:

* random workloads × result sizes × approximation slacks × bound modes ×
  candidate filters × the full-signature ablation;
* every registered association measure (the batched ``score_levels_batch``
  / ``bound_batch_kernel`` kernels are pinned directly, too);
* streaming ingest/expire/compact interleavings (the compiled arrays must
  invalidate and recompile on every index or data mutation);
* sharded deployments (shard counts {1, 2});
* snapshot save/load, including the round-trip of the compiled arrays
  themselves and the version-1 (pre-columnar) backward-compat path.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro import (
    EventIngestor,
    PresenceInstance,
    ShardedEngine,
    SpatialHierarchy,
    TraceDataset,
    TraceQueryEngine,
)
from repro.core.columnar import ColumnarTree
from repro.measures.adm import ExampleDiceADM, HierarchicalADM
from repro.measures.setsim import DiceADM, FScoreADM, JaccardADM, OverlapADM

HORIZON = 96


@pytest.fixture(scope="module")
def hierarchy():
    return SpatialHierarchy.regular([2, 3, 2], prefix="c")


@pytest.fixture(scope="module")
def two_level_hierarchy():
    return SpatialHierarchy.regular([3, 4], prefix="d")


def random_events(hierarchy, rng, num_entities=16, max_events=7, span=90):
    events = []
    for index in range(num_entities):
        name = f"e{index}"
        for _ in range(rng.randrange(1, max_events)):
            start = rng.randrange(0, span)
            events.append(
                PresenceInstance(
                    entity=name,
                    unit=rng.choice(hierarchy.base_units),
                    start=start,
                    end=start + rng.randrange(1, 4),
                )
            )
    return events


def dataset_from(hierarchy, events):
    dataset = TraceDataset(hierarchy, horizon=HORIZON)
    for event in events:
        dataset.add_presence(event)
    return dataset


def paired_engines(hierarchy, events, measure=None, **knobs):
    """(reference, columnar) engines over independent but identical datasets.

    Independent datasets let update tests mutate both engines through their
    own APIs without double-appending to a shared dataset.
    """
    reference = TraceQueryEngine(
        dataset_from(hierarchy, events), measure=measure, columnar_queries=False, **knobs
    ).build()
    columnar = TraceQueryEngine(
        dataset_from(hierarchy, events), measure=measure, columnar_queries=True, **knobs
    ).build()
    return reference, columnar


def assert_identical(reference_result, columnar_result):
    assert columnar_result.items == reference_result.items, (
        f"items diverge for {reference_result.query_entity!r}: "
        f"{columnar_result.items} != {reference_result.items}"
    )
    assert dataclasses.asdict(columnar_result.stats) == dataclasses.asdict(
        reference_result.stats
    ), f"stats diverge for {reference_result.query_entity!r}"


def assert_engines_identical(reference, columnar, k_values=(1, 4, 25), **search_kwargs):
    assert columnar.searcher.columnar and not reference.searcher.columnar
    for query in reference.dataset.entities:
        for k in k_values:
            assert_identical(
                reference.searcher.search(query, k, **search_kwargs),
                columnar.searcher.search(query, k, **search_kwargs),
            )


class TestFuzzedEquivalence:
    @pytest.mark.parametrize("fuzz_seed", [3, 17, 59])
    @pytest.mark.parametrize("bound_mode", ["lift", "per_level"])
    def test_random_workloads(self, hierarchy, fuzz_seed, bound_mode, seeded_rng):
        rng = seeded_rng(fuzz_seed)
        events = random_events(hierarchy, rng)
        reference, columnar = paired_engines(
            hierarchy, events, num_hashes=24, seed=5, bound_mode=bound_mode
        )
        assert_engines_identical(reference, columnar)

    @pytest.mark.parametrize("approximation", [0.01, 0.2])
    def test_approximate_top_k(self, hierarchy, approximation, seeded_rng):
        rng = seeded_rng(71)
        events = random_events(hierarchy, rng)
        reference, columnar = paired_engines(hierarchy, events, num_hashes=24, seed=5)
        assert_engines_identical(
            reference, columnar, k_values=(2, 6), approximation=approximation
        )

    def test_candidate_filter(self, hierarchy, seeded_rng):
        rng = seeded_rng(29)
        events = random_events(hierarchy, rng)
        reference, columnar = paired_engines(hierarchy, events, num_hashes=24, seed=5)
        keep = {f"e{index}" for index in range(0, 16, 2)}
        assert_engines_identical(
            reference, columnar, k_values=(3,), candidate_filter=keep.__contains__
        )

    def test_full_signature_ablation(self, hierarchy, seeded_rng):
        rng = seeded_rng(41)
        events = random_events(hierarchy, rng)
        reference, columnar = paired_engines(
            hierarchy,
            events,
            num_hashes=24,
            seed=5,
            store_full_signatures=True,
            use_full_signatures=True,
        )
        assert_engines_identical(reference, columnar, k_values=(3,))

    @pytest.mark.parametrize(
        "measure_factory",
        [
            lambda m: HierarchicalADM(num_levels=m, u=3.0, v=1.5),
            lambda m: JaccardADM(num_levels=m),
            lambda m: DiceADM(num_levels=m),
            lambda m: OverlapADM(num_levels=m),
            lambda m: FScoreADM(num_levels=m, beta=0.7),
        ],
        ids=["hierarchical-u3-v1.5", "jaccard", "dice", "overlap", "fscore"],
    )
    def test_measures(self, hierarchy, measure_factory, seeded_rng):
        rng = seeded_rng(13)
        events = random_events(hierarchy, rng, num_entities=12)
        measure = measure_factory(hierarchy.num_levels)
        reference, columnar = paired_engines(
            hierarchy, events, measure=measure, num_hashes=16, seed=2
        )
        assert_engines_identical(reference, columnar, k_values=(3,))

    def test_example_dice_two_levels(self, two_level_hierarchy, seeded_rng):
        rng = seeded_rng(37)
        events = random_events(two_level_hierarchy, rng, num_entities=10)
        reference, columnar = paired_engines(
            two_level_hierarchy, events, measure=ExampleDiceADM(), num_hashes=16, seed=2
        )
        assert_engines_identical(reference, columnar, k_values=(2, 5))


class TestMeasureBatchKernels:
    """score_levels_batch / bound_batch_kernel are bit-identical per row."""

    MEASURES = [
        HierarchicalADM(num_levels=3),
        HierarchicalADM(num_levels=3, u=4.0, v=3.0),
        HierarchicalADM(num_levels=3, u=1.3, v=1.7),
        JaccardADM(num_levels=3),
        DiceADM(num_levels=3, weights=(0.0, 1.0, 2.0)),
        OverlapADM(num_levels=3),
        FScoreADM(num_levels=3, beta=0.5),
        ExampleDiceADM(weights=(0.3, 0.2, 0.5)),
    ]

    @pytest.mark.parametrize(
        "measure", MEASURES, ids=lambda m: f"{m.name}-{id(m) % 97}"
    )
    def test_score_levels_batch_matches_scalar(self, measure, seeded_rng):
        rng = seeded_rng(5)
        rows = []
        for _ in range(300):
            row = []
            for _level in range(3):
                size_a = rng.randrange(0, 9)
                size_b = rng.randrange(0, 9)
                shared = rng.randrange(0, min(size_a, size_b) + 1)
                row.append((size_a, size_b, shared))
            rows.append(row)
        sizes_a = np.array([[r[0] for r in row] for row in rows], dtype=np.int64)
        sizes_b = np.array([[r[1] for r in row] for row in rows], dtype=np.int64)
        shared = np.array([[r[2] for r in row] for row in rows], dtype=np.int64)
        batched = measure.score_levels_batch(sizes_a, sizes_b, shared)
        for index, row in enumerate(rows):
            assert batched[index] == measure.score_levels(row)

    @pytest.mark.parametrize(
        "measure", MEASURES, ids=lambda m: f"{m.name}-{id(m) % 97}"
    )
    def test_bound_kernel_matches_scalar(self, measure):
        query_sizes = (4, 7, 5)
        kernel = measure.bound_batch_kernel(query_sizes)
        survivors = np.array(
            [
                [s1, s2, s3]
                for s1 in range(5)
                for s2 in range(8)
                for s3 in range(6)
            ],
            dtype=np.int64,
        )
        batched = kernel(survivors)
        for index, row in enumerate(survivors):
            overlaps = [
                (int(s), int(q), int(s)) for s, q in zip(row, query_sizes)
            ]
            assert batched[index] == measure.score_levels(overlaps)


class TestStreamingInterleavings:
    @pytest.mark.parametrize("fuzz_seed", [7, 31])
    def test_ingest_expire_interleavings(self, hierarchy, fuzz_seed, seeded_rng):
        rng = seeded_rng(fuzz_seed)
        events = random_events(hierarchy, rng, num_entities=12, max_events=9)
        events.sort(key=lambda p: (p.start, p.end, p.entity, p.unit))
        reference, columnar = paired_engines(hierarchy, [], num_hashes=24, seed=5)
        window = rng.choice([25, 40])
        batch = rng.choice([4, 16])
        compact_after = rng.choice([0, 6])
        ingestors = [
            EventIngestor(
                engine, max_batch_events=batch, window=window, compact_after=compact_after
            )
            for engine in (reference, columnar)
        ]
        for index, event in enumerate(events, start=1):
            for ingestor in ingestors:
                ingestor.submit(event)
            if rng.random() < 0.08:
                for ingestor in ingestors:
                    ingestor.flush()
                assert_engines_identical(reference, columnar, k_values=(3,))
        for ingestor in ingestors:
            ingestor.close()
        assert_engines_identical(reference, columnar)

    def test_incremental_updates_recompile(self, hierarchy, seeded_rng):
        rng = seeded_rng(97)
        events = random_events(hierarchy, rng, num_entities=10)
        reference, columnar = paired_engines(hierarchy, events, num_hashes=24, seed=5)
        compiled_before = columnar.searcher.compiled_tree()
        assert_engines_identical(reference, columnar, k_values=(3,))
        extra = [
            PresenceInstance("e1", hierarchy.base_units[0], 10, 13),
            PresenceInstance("newcomer", hierarchy.base_units[-1], 4, 6),
        ]
        for engine in (reference, columnar):
            engine.add_records(extra)
            engine.remove_entity("e2")
            engine.expire_events(8)
            engine.compact()
        assert_engines_identical(reference, columnar, k_values=(1, 5))
        # The mutations must have invalidated the compiled arrays.
        assert columnar.searcher.compiled_tree() is not compiled_before


class TestIncrementalPatch:
    """The delta-patch maintenance path (``EngineConfig.incremental_recompile``).

    A stale compiled kernel is *patched* -- membership rows spliced, leaf
    spans and tree paths rewritten for touched entities only -- instead of
    recompiled, and the patched arrays must be byte-identical to what a
    from-scratch compile would produce.  Bulk churn falls back to a full
    recompile; either way the arrays below must match a fresh compile.
    """

    def fresh_arrays(self, engine):
        return ColumnarTree.compile(engine._tree, engine.dataset).export_arrays()

    def assert_kernel_matches_fresh(self, engine):
        live = engine.searcher.compiled_tree().export_arrays()
        fresh = self.fresh_arrays(engine)
        assert sorted(live) == sorted(fresh)
        for name, array in live.items():
            assert array.dtype == fresh[name].dtype, name
            assert array.tobytes() == fresh[name].tobytes(), name

    def test_patched_arrays_byte_identical_after_each_mutation(
        self, hierarchy, seeded_rng
    ):
        rng = seeded_rng(101)
        events = random_events(hierarchy, rng, num_entities=16)
        engine = TraceQueryEngine(
            dataset_from(hierarchy, events), num_hashes=24, seed=5
        ).build()
        engine.top_k("e0", k=3)  # first query pays the one full compile
        assert engine.searcher.kernel_compiles == 1
        mutations = [
            lambda: engine.add_records(
                [PresenceInstance("e3", hierarchy.base_units[2], 91, 94)]
            ),
            lambda: engine.add_records(
                [PresenceInstance("newcomer", hierarchy.base_units[-1], 50, 53)]
            ),
            lambda: engine.remove_entity("e7"),
            lambda: engine.add_records(
                [PresenceInstance("e5", hierarchy.base_units[0], 2, 4)]
            ),
        ]
        for index, mutate in enumerate(mutations, start=1):
            mutate()
            engine.top_k("e0", k=3)
            assert engine.searcher.kernel_patches == index  # patched, not recompiled
            assert engine.searcher.kernel_compiles == 1
            self.assert_kernel_matches_fresh(engine)

    def test_bulk_churn_falls_back_to_full_recompile(self, hierarchy, seeded_rng):
        rng = seeded_rng(103)
        events = random_events(hierarchy, rng, num_entities=16)
        engine = TraceQueryEngine(
            dataset_from(hierarchy, events), num_hashes=24, seed=5
        ).build()
        engine.top_k("e0", k=3)
        # Expiry touches most of the population: over the staleness
        # threshold, the patch path must decline and recompile instead.
        engine.expire_events(60)
        engine.top_k("e0", k=3)
        assert engine.searcher.kernel_compiles == 2
        assert engine.searcher.kernel_patches == 0
        self.assert_kernel_matches_fresh(engine)

    def test_first_query_after_compact_does_not_recompile(
        self, hierarchy, seeded_rng, monkeypatch
    ):
        """Regression: ``compact()`` used to leave the kernel stale, so the
        rebuild's recompile was paid *again* by the first query after it.
        Compaction now refreshes the kernel itself; the next query must not
        touch ``ColumnarTree.compile`` at all."""
        rng = seeded_rng(107)
        events = random_events(hierarchy, rng, num_entities=12)
        engine = TraceQueryEngine(
            dataset_from(hierarchy, events), num_hashes=24, seed=5
        ).build()
        engine.top_k("e0", k=3)
        engine.expire_events(30)
        engine.compact()  # rebuild + the one recompile, paid here
        compiles_after_compact = engine.searcher.kernel_compiles

        def no_compile(*args, **kwargs):  # pragma: no cover - guard only
            raise AssertionError("first query after compact() recompiled the kernel")

        monkeypatch.setattr(ColumnarTree, "compile", no_compile)
        result = engine.top_k("e0", k=3)
        assert result.items is not None
        assert engine.searcher.kernel_compiles == compiles_after_compact
        monkeypatch.undo()
        self.assert_kernel_matches_fresh(engine)


class TestShardedEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2])
    def test_sharded_columnar_matches_reference(self, hierarchy, num_shards, seeded_rng):
        rng = seeded_rng(83)
        events = random_events(hierarchy, rng)
        knobs = dict(num_hashes=24, seed=5, num_shards=num_shards)
        reference = ShardedEngine(
            dataset_from(hierarchy, events), columnar_queries=False, **knobs
        ).build()
        columnar = ShardedEngine(
            dataset_from(hierarchy, events), columnar_queries=True, **knobs
        ).build()
        for query in reference.dataset.entities:
            for k in (1, 4, 25):
                assert_identical(reference.top_k(query, k), columnar.top_k(query, k))


class TestSnapshotRoundTrip:
    def test_compiled_arrays_round_trip(self, hierarchy, tmp_path, monkeypatch, seeded_rng):
        from repro.core.columnar import ColumnarTree

        rng = seeded_rng(19)
        events = random_events(hierarchy, rng)
        engine = TraceQueryEngine(
            dataset_from(hierarchy, events), num_hashes=24, seed=5
        ).build()
        snap = engine.save(tmp_path / "snap")
        assert (snap / "columnar.npz").exists()
        loaded = TraceQueryEngine.load(snap)

        # Load defers the columnar import: nothing compiled yet, but the
        # first query must import the persisted arrays -- never recompile.
        assert loaded.searcher._compiled is None
        assert loaded.searcher._compiled_loader is not None

        def no_compile(*args, **kwargs):  # pragma: no cover - guard only
            raise AssertionError("snapshot load must import, not recompile")

        monkeypatch.setattr(ColumnarTree, "compile", no_compile)
        installed = loaded.searcher.compiled_tree()
        assert installed is not None
        saved_arrays = engine.searcher.compiled_tree().export_arrays()
        loaded_arrays = installed.export_arrays()
        assert set(saved_arrays) == set(loaded_arrays)
        for key, value in saved_arrays.items():
            assert np.array_equal(value, loaded_arrays[key]), key
        monkeypatch.undo()

        assert_engines_identical(
            TraceQueryEngine(
                dataset_from(hierarchy, events), num_hashes=24, seed=5,
                columnar_queries=False,
            ).build(),
            loaded,
            k_values=(3,),
        )

    def test_streamed_snapshot_round_trip(self, hierarchy, tmp_path, seeded_rng):
        """Save/load after streaming updates (arrays recompiled at save)."""
        rng = seeded_rng(53)
        events = random_events(hierarchy, rng, num_entities=10)
        reference, columnar = paired_engines(hierarchy, events, num_hashes=24, seed=5)
        extra = [PresenceInstance("e0", hierarchy.base_units[2], 50, 55)]
        for engine in (reference, columnar):
            engine.add_records(extra)
            engine.expire_events(12)
        columnar.save(tmp_path / "snap")
        loaded = TraceQueryEngine.load(tmp_path / "snap")
        assert loaded.searcher._compiled_loader is not None
        assert_engines_identical(reference, loaded, k_values=(1, 6))

    def test_mutation_before_first_query_discards_stale_arrays(
        self, hierarchy, tmp_path, seeded_rng
    ):
        """A post-load mutation must win over the persisted compile."""
        rng = seeded_rng(61)
        events = random_events(hierarchy, rng, num_entities=8)
        reference, columnar = paired_engines(hierarchy, events, num_hashes=16, seed=3)
        columnar.save(tmp_path / "snap")
        loaded = TraceQueryEngine.load(tmp_path / "snap")
        extra = [PresenceInstance("e3", hierarchy.base_units[1], 60, 63)]
        reference.add_records(extra)
        loaded.add_records(extra)  # before any query: loader must bail out
        assert_engines_identical(reference, loaded, k_values=(2, 5))

    def test_missing_or_corrupt_columnar_payload_falls_back(self, hierarchy, tmp_path, seeded_rng):
        """The columnar payload is a cache: losing it must not fail the load."""
        rng = seeded_rng(73)
        events = random_events(hierarchy, rng, num_entities=8)
        engine = TraceQueryEngine(
            dataset_from(hierarchy, events), num_hashes=16, seed=3
        ).build()
        query = engine.dataset.entities[0]
        expected = engine.top_k(query, k=5).items

        snap = engine.save(tmp_path / "missing")
        (snap / "columnar.npz").unlink()
        loaded = TraceQueryEngine.load(snap)
        assert loaded.top_k(query, k=5).items == expected
        assert loaded.searcher._compiled is not None  # recompiled lazily

        snap = engine.save(tmp_path / "corrupt")
        (snap / "columnar.npz").write_bytes(b"not an npz")
        loaded = TraceQueryEngine.load(snap)
        assert loaded.top_k(query, k=5).items == expected

    def test_version1_snapshot_still_loads_and_recompiles(self, hierarchy, tmp_path, seeded_rng):
        from repro.storage.snapshot import _file_digest

        rng = seeded_rng(67)
        events = random_events(hierarchy, rng, num_entities=8)
        engine = TraceQueryEngine(
            dataset_from(hierarchy, events), num_hashes=16, seed=3
        ).build()
        snap = engine.save(tmp_path / "snap")

        # Rewrite the snapshot as a faithful version-1 artifact: no columnar
        # payload, no columnar config key, version 1, fresh content digests.
        (snap / "columnar.npz").unlink()
        manifest = json.loads((snap / "manifest.json").read_text())
        manifest["format_version"] = 1
        manifest["config"].pop("columnar_queries")
        manifest["content"].pop("columnar.npz")
        manifest["content"]["arrays.npz"] = _file_digest(snap / "arrays.npz")
        (snap / "manifest.json").write_text(json.dumps(manifest))

        loaded = TraceQueryEngine.load(snap)
        assert loaded.searcher._compiled is None  # nothing precompiled...
        assert loaded.searcher._compiled_loader is None
        assert loaded.config.columnar_queries  # ...but columnar still on
        query = loaded.dataset.entities[0]
        assert loaded.top_k(query, k=5).items == engine.top_k(query, k=5).items
        assert loaded.searcher._compiled is not None  # lazily recompiled


class TestSearchManyParity:
    """Satellite regression: search_many passes every search knob through."""

    def test_approximation_and_filter_pass_through(self, hierarchy, seeded_rng):
        rng = seeded_rng(23)
        events = random_events(hierarchy, rng, num_entities=10)
        engine = TraceQueryEngine(
            dataset_from(hierarchy, events), num_hashes=16, seed=3
        ).build()
        queries = list(engine.dataset.entities)[:5]
        keep = {f"e{index}" for index in range(1, 10, 2)}
        batched = engine.searcher.search_many(
            queries, k=4, candidate_filter=keep.__contains__, approximation=0.05
        )
        for query, result in zip(queries, batched):
            assert_identical(
                engine.searcher.search(
                    query, 4, candidate_filter=keep.__contains__, approximation=0.05
                ),
                result,
            )
            assert all(entity in keep for entity in result.entities)

    def test_fetch_memoised_within_and_across_searches(self, hierarchy, seeded_rng):
        rng = seeded_rng(43)
        events = random_events(hierarchy, rng, num_entities=10)
        engine = TraceQueryEngine(
            dataset_from(hierarchy, events), num_hashes=16, seed=3
        ).build()
        fetches = []

        def counting_fetcher(entity):
            fetches.append(entity)
            return engine.dataset.cell_sequence(entity)

        queries = list(engine.dataset.entities)[:4]
        serial = [
            engine.searcher.search(query, 3, sequence_fetcher=counting_fetcher)
            for query in queries
        ]
        serial_fetches = len(fetches)
        assert serial_fetches > 0

        fetches.clear()
        batched = engine.searcher.search_many(
            queries, 3, sequence_fetcher=counting_fetcher
        )
        for reference, result in zip(serial, batched):
            assert_identical(reference, result)
        # Across one batch every candidate is fetched at most once, so the
        # shared memo must fetch strictly less than the serial runs did.
        assert len(fetches) == len(set(fetches)) < serial_fetches

        fetches.clear()
        executor_results = engine.batch_executor().run(
            queries, 3, sequence_fetcher=counting_fetcher
        )
        for reference, result in zip(serial, executor_results):
            assert_identical(reference, result)
        assert len(fetches) == len(set(fetches)) < serial_fetches
