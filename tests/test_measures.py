"""Tests for the association degree measures (repro.measures)."""

import pytest

from repro.measures import (
    DiceADM,
    ExampleDiceADM,
    FScoreADM,
    HierarchicalADM,
    JaccardADM,
    OverlapADM,
    level_overlaps,
)
from repro.traces.events import PresenceInstance, cells_from_presences


def _sequence(hierarchy, entity, spec):
    """Build a cell sequence from (unit_index, start, end) triples."""
    bases = hierarchy.base_units
    presences = [
        PresenceInstance(entity, bases[unit_index], start, end)
        for unit_index, start, end in spec
    ]
    return cells_from_presences(presences, hierarchy)


class TestLevelOverlaps:
    def test_identical_sequences(self, small_hierarchy):
        seq = _sequence(small_hierarchy, "a", [(0, 0, 4)])
        triples = level_overlaps(seq, seq)
        assert triples == [(4, 4, 4)] * 3

    def test_disjoint_sequences(self, small_hierarchy):
        seq_a = _sequence(small_hierarchy, "a", [(0, 0, 4)])
        seq_b = _sequence(small_hierarchy, "b", [(7, 10, 14)])
        triples = level_overlaps(seq_a, seq_b)
        assert all(shared == 0 for _a, _b, shared in triples)

    def test_sizes_keep_argument_order(self, small_hierarchy):
        seq_a = _sequence(small_hierarchy, "a", [(0, 0, 2)])          # 2 cells
        seq_b = _sequence(small_hierarchy, "b", [(0, 0, 6)])          # 6 cells
        triples = level_overlaps(seq_a, seq_b)
        size_a, size_b, shared = triples[-1]
        assert (size_a, size_b, shared) == (2, 6, 2)

    def test_coarse_only_overlap_detected(self, small_hierarchy):
        parent = small_hierarchy.units_at_level(2)[0]
        child_a, child_b = small_hierarchy.children_of(parent)
        seq_a = cells_from_presences([PresenceInstance("a", child_a, 0, 2)], small_hierarchy)
        seq_b = cells_from_presences([PresenceInstance("b", child_b, 0, 2)], small_hierarchy)
        triples = level_overlaps(seq_a, seq_b)
        assert triples[-1][2] == 0      # no shared base cells
        assert triples[1][2] == 2       # shared district cells

    def test_depth_mismatch_rejected(self, small_hierarchy, paper_hierarchy):
        seq_a = _sequence(small_hierarchy, "a", [(0, 0, 1)])
        seq_b = cells_from_presences(
            [PresenceInstance("b", "L1", 0, 1)], paper_hierarchy
        )
        with pytest.raises(ValueError, match="depths"):
            level_overlaps(seq_a, seq_b)


class TestHierarchicalADM:
    def test_identical_traces_score_one(self, small_hierarchy):
        measure = HierarchicalADM(num_levels=3)
        seq = _sequence(small_hierarchy, "a", [(0, 0, 5), (3, 10, 12)])
        assert measure.score(seq, seq) == pytest.approx(1.0)

    def test_disjoint_traces_score_zero(self, small_hierarchy):
        measure = HierarchicalADM(num_levels=3)
        seq_a = _sequence(small_hierarchy, "a", [(0, 0, 4)])
        seq_b = _sequence(small_hierarchy, "b", [(7, 10, 14)])
        assert measure.score(seq_a, seq_b) == 0.0

    def test_empty_trace_scores_zero(self, small_hierarchy):
        measure = HierarchicalADM(num_levels=3)
        seq_a = _sequence(small_hierarchy, "a", [(0, 0, 4)])
        empty = cells_from_presences([], small_hierarchy)
        assert measure.score(seq_a, empty) == 0.0

    def test_symmetry(self, small_hierarchy):
        measure = HierarchicalADM(num_levels=3)
        seq_a = _sequence(small_hierarchy, "a", [(0, 0, 5), (1, 6, 9)])
        seq_b = _sequence(small_hierarchy, "b", [(0, 2, 7), (4, 8, 11)])
        assert measure.score(seq_a, seq_b) == pytest.approx(measure.score(seq_b, seq_a))

    def test_more_overlap_scores_higher(self, small_hierarchy):
        measure = HierarchicalADM(num_levels=3)
        query = _sequence(small_hierarchy, "q", [(0, 0, 10)])
        half = _sequence(small_hierarchy, "h", [(0, 0, 5), (7, 20, 25)])
        most = _sequence(small_hierarchy, "m", [(0, 0, 8), (7, 20, 22)])
        assert measure.score(most, query) > measure.score(half, query)

    def test_larger_u_emphasises_fine_levels(self, small_hierarchy):
        # Candidate shares only coarse-level presence with the query.
        parent = small_hierarchy.units_at_level(2)[0]
        child_a, child_b = small_hierarchy.children_of(parent)
        query = cells_from_presences([PresenceInstance("q", child_a, 0, 6)], small_hierarchy)
        coarse_only = cells_from_presences([PresenceInstance("c", child_b, 0, 6)], small_hierarchy)
        low_u = HierarchicalADM(num_levels=3, u=1.0)
        high_u = HierarchicalADM(num_levels=3, u=4.0)
        assert low_u.score(coarse_only, query) > high_u.score(coarse_only, query)

    def test_larger_v_penalises_partial_overlap(self, small_hierarchy):
        measure_v2 = HierarchicalADM(num_levels=3, v=2.0)
        measure_v5 = HierarchicalADM(num_levels=3, v=5.0)
        query = _sequence(small_hierarchy, "q", [(0, 0, 10)])
        partial = _sequence(small_hierarchy, "p", [(0, 0, 5), (7, 20, 25)])
        assert measure_v5.score(partial, query) < measure_v2.score(partial, query)

    def test_wrong_level_count_rejected(self):
        measure = HierarchicalADM(num_levels=3)
        with pytest.raises(ValueError):
            measure.score_levels([(1, 1, 1)])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalADM(num_levels=0)
        with pytest.raises(ValueError):
            HierarchicalADM(num_levels=3, u=0)
        with pytest.raises(ValueError):
            HierarchicalADM(num_levels=3, v=-1)

    def test_score_within_unit_interval(self, small_hierarchy):
        measure = HierarchicalADM(num_levels=3)
        seq_a = _sequence(small_hierarchy, "a", [(0, 0, 3), (2, 5, 9), (6, 12, 13)])
        seq_b = _sequence(small_hierarchy, "b", [(0, 1, 4), (3, 5, 8)])
        assert 0.0 <= measure.score(seq_a, seq_b) <= 1.0


class TestExampleDiceADM:
    def test_default_weights(self):
        measure = ExampleDiceADM()
        assert measure.weights == (0.1, 0.9)

    def test_raw_score_matches_paper_example(self):
        # Example 5.2.1: deg(e_a, e_c) = 0.1 * 1/4 + 0.9 * 1/4 ... = 0.15 is
        # computed over the signature example sets; here we reproduce the
        # arithmetic with the published overlap counts: both levels share one
        # of two cells each.
        measure = ExampleDiceADM()
        raw = measure.raw_score_levels([(2, 2, 1), (2, 2, 1)])
        assert raw == pytest.approx(0.1 * 0.25 + 0.9 * 0.25)

    def test_normalised_score_of_identical_is_one(self):
        measure = ExampleDiceADM()
        assert measure.score_levels([(3, 3, 3), (5, 5, 5)]) == pytest.approx(1.0)

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            ExampleDiceADM(weights=(-0.1, 1.0))
        with pytest.raises(ValueError):
            ExampleDiceADM(weights=(0.0, 0.0))


class TestSetSimilarityADMs:
    @pytest.mark.parametrize("measure_cls", [JaccardADM, DiceADM, OverlapADM, FScoreADM])
    def test_identical_traces_score_one(self, small_hierarchy, measure_cls):
        measure = measure_cls(num_levels=3)
        seq = _sequence(small_hierarchy, "a", [(0, 0, 5), (3, 10, 12)])
        assert measure.score(seq, seq) == pytest.approx(1.0)

    @pytest.mark.parametrize("measure_cls", [JaccardADM, DiceADM, OverlapADM, FScoreADM])
    def test_disjoint_traces_score_zero(self, small_hierarchy, measure_cls):
        measure = measure_cls(num_levels=3)
        seq_a = _sequence(small_hierarchy, "a", [(0, 0, 4)])
        seq_b = _sequence(small_hierarchy, "b", [(7, 10, 14)])
        assert measure.score(seq_a, seq_b) == 0.0

    @pytest.mark.parametrize("measure_cls", [JaccardADM, DiceADM, OverlapADM, FScoreADM])
    def test_scores_in_unit_interval(self, small_hierarchy, measure_cls):
        measure = measure_cls(num_levels=3)
        seq_a = _sequence(small_hierarchy, "a", [(0, 0, 3), (2, 5, 9)])
        seq_b = _sequence(small_hierarchy, "b", [(0, 1, 4), (5, 5, 8)])
        assert 0.0 <= measure.score(seq_a, seq_b) <= 1.0

    def test_jaccard_value(self):
        measure = JaccardADM(num_levels=1)
        assert measure.score_levels([(4, 4, 2)]) == pytest.approx(2 / 6)

    def test_dice_value(self):
        measure = DiceADM(num_levels=1)
        assert measure.score_levels([(4, 4, 2)]) == pytest.approx(0.5)

    def test_overlap_value_containment(self):
        measure = OverlapADM(num_levels=1)
        assert measure.score_levels([(2, 10, 2)]) == pytest.approx(1.0)

    def test_fscore_beta_one_equals_dice(self):
        dice = DiceADM(num_levels=1)
        fscore = FScoreADM(num_levels=1, beta=1.0)
        for triple in [(4, 4, 2), (3, 9, 1), (10, 2, 2)]:
            assert fscore.score_levels([triple]) == pytest.approx(dice.score_levels([triple]))

    def test_fscore_beta_asymmetry(self):
        # Small beta emphasises precision (candidate side).
        measure = FScoreADM(num_levels=1, beta=0.5)
        precise = measure.score_levels([(2, 10, 2)])   # candidate fully inside query
        recallful = measure.score_levels([(10, 2, 2)])  # candidate much larger
        assert precise > recallful

    def test_weights_must_match_levels(self):
        with pytest.raises(ValueError):
            JaccardADM(num_levels=3, weights=(1.0, 1.0))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            DiceADM(num_levels=2, weights=(1.0, -1.0))

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError):
            DiceADM(num_levels=2, weights=(0.0, 0.0))

    def test_fscore_invalid_beta(self):
        with pytest.raises(ValueError):
            FScoreADM(num_levels=2, beta=0.0)

    def test_level_weighting_shifts_score(self, small_hierarchy):
        parent = small_hierarchy.units_at_level(2)[0]
        child_a, child_b = small_hierarchy.children_of(parent)
        query = cells_from_presences([PresenceInstance("q", child_a, 0, 6)], small_hierarchy)
        coarse_only = cells_from_presences([PresenceInstance("c", child_b, 0, 6)], small_hierarchy)
        coarse_heavy = JaccardADM(num_levels=3, weights=(5.0, 1.0, 1.0))
        fine_heavy = JaccardADM(num_levels=3, weights=(1.0, 1.0, 5.0))
        assert coarse_heavy.score(coarse_only, query) > fine_heavy.score(coarse_only, query)
