"""Shared fixtures for the test suite.

Fixtures are deliberately small (tens to a few hundred entities) so the full
suite stays fast; the scale-sensitive behaviour is covered by the benchmark
harness rather than unit tests.
"""

from __future__ import annotations

import os
import random
from typing import List

import pytest

from repro import (
    HierarchicalADM,
    PresenceInstance,
    SpatialHierarchy,
    TraceDataset,
    TraceQueryEngine,
)
from repro.mobility import generate_synthetic_dataset, generate_wifi_dataset


@pytest.fixture
def small_hierarchy() -> SpatialHierarchy:
    """A 3-level sp-index: 2 regions, 2 districts each, 2 venues per district."""
    return SpatialHierarchy.regular([2, 2, 2], prefix="h")


@pytest.fixture
def paper_hierarchy() -> SpatialHierarchy:
    """The 2-level hierarchy of the paper's worked examples (L1..L6)."""
    hierarchy = SpatialHierarchy()
    hierarchy.add_unit("L5")
    hierarchy.add_unit("L6")
    hierarchy.add_unit("L1", "L5")
    hierarchy.add_unit("L2", "L5")
    hierarchy.add_unit("L3", "L6")
    hierarchy.add_unit("L4", "L6")
    hierarchy.validate()
    return hierarchy


@pytest.fixture
def small_dataset(small_hierarchy: SpatialHierarchy) -> TraceDataset:
    """A hand-written dataset with obvious association structure.

    ``a`` and ``b`` co-occur heavily; ``c`` overlaps ``a`` a little; ``d``
    and ``e`` live in the other region and co-occur with each other only.
    """
    dataset = TraceDataset(small_hierarchy, horizon=48)
    base = small_hierarchy.base_units
    # Region 0 venues: base[0..3]; region 1 venues: base[4..7].
    for t in range(0, 20, 2):
        dataset.add_record("a", base[0], t, duration=2)
        dataset.add_record("b", base[0], t, duration=2)
    for t in range(20, 30, 2):
        dataset.add_record("a", base[1], t)
        dataset.add_record("c", base[1], t)
    for t in range(0, 24, 3):
        dataset.add_record("d", base[4], t, duration=2)
        dataset.add_record("e", base[4], t, duration=2)
    dataset.add_record("c", base[2], 40, duration=3)
    dataset.add_record("e", base[6], 40, duration=2)
    return dataset


@pytest.fixture
def small_measure(small_hierarchy: SpatialHierarchy) -> HierarchicalADM:
    return HierarchicalADM(num_levels=small_hierarchy.num_levels, u=2, v=2)


@pytest.fixture
def small_engine(small_dataset: TraceDataset, small_measure: HierarchicalADM) -> TraceQueryEngine:
    return TraceQueryEngine(small_dataset, measure=small_measure, num_hashes=32, seed=5).build()


@pytest.fixture(scope="session")
def syn_dataset() -> TraceDataset:
    """A session-scoped synthetic mobility dataset (moderate size)."""
    dataset, _config = generate_synthetic_dataset(
        num_entities=160,
        horizon=96,
        grid_side=10,
        max_group_size=6,
        group_copy_probability=0.8,
        observation_rate_range=(0.15, 0.8),
        seed=99,
    )
    return dataset


@pytest.fixture(scope="session")
def wifi_dataset() -> TraceDataset:
    """A session-scoped WiFi-handshake dataset (moderate size)."""
    dataset, _config = generate_wifi_dataset(
        num_devices=150,
        num_hotspots=90,
        horizon=24 * 5,
        mean_detections=25,
        seed=123,
    )
    return dataset


@pytest.fixture(scope="session")
def syn_engine(syn_dataset: TraceDataset) -> TraceQueryEngine:
    """A session-scoped engine over the synthetic dataset."""
    return TraceQueryEngine(syn_dataset, num_hashes=128, seed=3).build()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(4242)


class SeededRngFactory:
    """Deterministic RNGs for fuzz tests, with replayable failure seeds.

    Calling the factory with a test's default seed returns a
    ``random.Random`` seeded with it -- unless the ``REPRO_TEST_SEED``
    environment variable is set, which overrides *every* requested seed so
    a reported failure replays exactly::

        REPRO_TEST_SEED=12345 pytest tests/test_streaming_equivalence.py -k interleavings

    Every effective seed is recorded; when the test fails, the report hook
    below prints them in a ``repro seeds`` section.
    """

    def __init__(self) -> None:
        self.seeds: List[int] = []
        self._override = os.environ.get("REPRO_TEST_SEED")

    def __call__(self, default_seed: int) -> random.Random:
        effective = int(self._override) if self._override else int(default_seed)
        self.seeds.append(effective)
        return random.Random(effective)


@pytest.fixture
def seeded_rng(request: pytest.FixtureRequest) -> SeededRngFactory:
    """The shared deterministic-seed plumbing of the fuzz suites.

    Use ``rng = seeded_rng(<default seed>)`` instead of
    ``random.Random(<seed>)``: behaviour is identical until a failure,
    at which point the failing seed is printed (and can be forced with
    ``REPRO_TEST_SEED``).
    """
    factory = SeededRngFactory()
    request.node._repro_seeds = factory.seeds
    return factory


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Attach the effective fuzz seeds to failing test reports."""
    outcome = yield
    report = outcome.get_result()
    seeds = getattr(item, "_repro_seeds", None)
    if seeds and report.when == "call" and report.failed:
        listed = ", ".join(str(seed) for seed in seeds)
        report.sections.append(
            (
                "repro seeds",
                f"fuzz seeds used: {listed}\n"
                f"replay with: REPRO_TEST_SEED={seeds[0]} pytest {item.nodeid!r}",
            )
        )


def make_presence(entity: str = "x", unit: str = "h3_0_0_0", start: int = 0, end: int = 1) -> PresenceInstance:
    """Convenience constructor used by several test modules."""
    return PresenceInstance(entity=entity, unit=unit, start=start, end=end)
