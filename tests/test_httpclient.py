"""Unit tests for :class:`repro.server.httpclient.JsonHttpClient`.

The client's contract, pinned against scripted in-test TCP servers:

- a **reset connection** (the peer RSTs or closes before a response) is
  retried exactly once by reconnecting -- the transient that graceful
  daemon restarts and dying workers produce;
- **timeouts and HTTP error statuses are never retried** -- a slow or
  erroring request must not silently double its load on the daemon;
- exhausted retries, undecodable bodies, and transport failures all
  surface as :class:`HttpClientError` with context.

The scripted server takes a list of per-connection behaviours, so each
test states its fault schedule up front and asserts how many connections
the client actually opened.
"""

from __future__ import annotations

import json
import socket
import struct
import threading

import pytest

from repro.server.httpclient import HttpClientError, JsonHttpClient

_OK_DOCUMENT = {"ok": True}


class _ScriptedHttpServer:
    """Answer each accepted connection per a scripted behaviour.

    Behaviours: ``"ok"`` (read the request, answer 200 JSON), ``"reset"``
    (RST-close before answering), ``"error"`` (answer 500), ``"stall"``
    (read the request, never answer).  The last behaviour repeats for any
    extra connections.
    """

    def __init__(self, behaviours):
        self.behaviours = list(behaviours)
        self.connections = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._closed = False
        self._stalled = []
        threading.Thread(target=self._accept_loop, daemon=True).start()

    def _accept_loop(self):
        while not self._closed:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            index = self.connections
            self.connections += 1
            behaviour = self.behaviours[min(index, len(self.behaviours) - 1)]
            threading.Thread(
                target=self._serve, args=(connection, behaviour), daemon=True
            ).start()

    def _read_request(self, connection):
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = connection.recv(4096)
            if not chunk:
                return
            data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
                while len(body) < length:
                    chunk = connection.recv(4096)
                    if not chunk:
                        return
                    body += chunk

    def _serve(self, connection, behaviour):
        try:
            if behaviour == "reset":
                # SO_LINGER with zero timeout turns close() into an RST:
                # the client observes ECONNRESET, not a clean EOF.
                connection.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                )
                connection.recv(1)
                connection.close()
                return
            self._read_request(connection)
            if behaviour == "stall":
                self._stalled.append(connection)  # keep open, never answer
                return
            if behaviour == "error":
                status, payload = b"500 Internal Server Error", {"error": "boom"}
            else:
                status, payload = b"200 OK", _OK_DOCUMENT
            body = json.dumps(payload).encode("utf-8")
            connection.sendall(
                b"HTTP/1.1 " + status + b"\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            connection.close()
        except OSError:
            pass

    def close(self):
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        for connection in self._stalled:
            try:
                connection.close()
            except OSError:
                pass


@pytest.fixture
def scripted():
    servers = []

    def start(behaviours):
        server = _ScriptedHttpServer(behaviours)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.close()


class TestJsonHttpClient:
    def test_round_trip(self, scripted):
        server = scripted(["ok"])
        client = JsonHttpClient("127.0.0.1", server.port)
        assert client.post_json("/v1/topk", {"entity": "a"}) == _OK_DOCUMENT
        assert client.get_json("/v1/healthz") == _OK_DOCUMENT

    def test_reset_connection_is_retried_once(self, scripted):
        server = scripted(["reset", "ok"])
        client = JsonHttpClient("127.0.0.1", server.port)
        assert client.post_json("/v1/topk", {"entity": "a"}) == _OK_DOCUMENT
        assert server.connections == 2  # the reset, then the retry

    def test_persistent_resets_exhaust_the_retry_budget(self, scripted):
        server = scripted(["reset"])
        client = JsonHttpClient("127.0.0.1", server.port)
        with pytest.raises(HttpClientError, match="2 attempts"):
            client.post_json("/v1/topk", {"entity": "a"})
        assert server.connections == 2  # default retry_resets=1

    def test_retry_resets_zero_surfaces_the_raw_failure(self, scripted):
        server = scripted(["reset"])
        client = JsonHttpClient("127.0.0.1", server.port, retry_resets=0)
        with pytest.raises(HttpClientError, match="1 attempts"):
            client.get_json("/v1/stats")
        assert server.connections == 1

    def test_http_error_status_is_not_retried(self, scripted):
        server = scripted(["error", "ok"])
        client = JsonHttpClient("127.0.0.1", server.port)
        with pytest.raises(HttpClientError) as excinfo:
            client.post_json("/v1/topk", {"entity": "a"})
        assert excinfo.value.status == 500
        assert server.connections == 1  # no second connection

    def test_read_timeout_is_not_retried(self, scripted):
        server = scripted(["stall", "ok"])
        client = JsonHttpClient("127.0.0.1", server.port, read_timeout=0.2)
        with pytest.raises(HttpClientError, match="timed out") as excinfo:
            client.get_json("/v1/stats")
        assert server.connections == 1
        assert excinfo.value.status is None  # transport-level, no HTTP status

    def test_connect_refused_is_a_transport_error(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = JsonHttpClient("127.0.0.1", port, connect_timeout=0.5)
        with pytest.raises(HttpClientError, match="failed"):
            client.get_json("/v1/healthz")

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError, match="timeouts"):
            JsonHttpClient("127.0.0.1", 1, connect_timeout=0.0)
        with pytest.raises(ValueError, match="timeouts"):
            JsonHttpClient("127.0.0.1", 1, read_timeout=-1.0)
        with pytest.raises(ValueError, match="retry_resets"):
            JsonHttpClient("127.0.0.1", 1, retry_resets=-1)
