"""Tests for the sp-index (repro.traces.spatial)."""

import pytest

from repro.traces.spatial import SpatialHierarchy


class TestConstruction:
    def test_add_root_unit_is_level_one(self):
        hierarchy = SpatialHierarchy()
        unit = hierarchy.add_unit("city")
        assert unit.level == 1
        assert unit.parent_id is None

    def test_child_level_is_parent_plus_one(self):
        hierarchy = SpatialHierarchy()
        hierarchy.add_unit("city")
        district = hierarchy.add_unit("district", "city")
        assert district.level == 2

    def test_duplicate_unit_rejected(self):
        hierarchy = SpatialHierarchy()
        hierarchy.add_unit("city")
        with pytest.raises(ValueError, match="duplicate"):
            hierarchy.add_unit("city")

    def test_unknown_parent_rejected(self):
        hierarchy = SpatialHierarchy()
        with pytest.raises(ValueError, match="parent"):
            hierarchy.add_unit("district", "missing-city")

    def test_from_parent_map_resolves_out_of_order(self):
        hierarchy = SpatialHierarchy.from_parent_map(
            {"venue": "district", "district": "city", "city": None}
        )
        assert hierarchy.num_levels == 3
        assert hierarchy.parent_of("venue") == "district"

    def test_from_parent_map_detects_cycles(self):
        with pytest.raises(ValueError, match="unresolvable"):
            SpatialHierarchy.from_parent_map({"a": "b", "b": "a"})

    def test_regular_builds_expected_counts(self):
        hierarchy = SpatialHierarchy.regular([2, 3, 4])
        assert len(hierarchy.units_at_level(1)) == 2
        assert len(hierarchy.units_at_level(2)) == 6
        assert len(hierarchy.units_at_level(3)) == 24

    def test_regular_requires_nonempty_branching(self):
        with pytest.raises(ValueError):
            SpatialHierarchy.regular([])

    def test_empty_hierarchy_fails_validation(self):
        with pytest.raises(ValueError, match="empty"):
            SpatialHierarchy().validate()

    def test_uneven_leaf_depth_rejected(self):
        hierarchy = SpatialHierarchy()
        hierarchy.add_unit("city")
        hierarchy.add_unit("district", "city")
        hierarchy.add_unit("lonely-city")  # a leaf at level 1
        with pytest.raises(ValueError, match="same level"):
            hierarchy.validate()


class TestIntrospection:
    def test_num_levels(self, small_hierarchy):
        assert small_hierarchy.num_levels == 3

    def test_num_base_units(self, small_hierarchy):
        assert small_hierarchy.num_base_units == 8

    def test_base_units_all_at_lowest_level(self, small_hierarchy):
        for unit in small_hierarchy.base_units:
            assert small_hierarchy.level_of(unit) == small_hierarchy.num_levels

    def test_units_at_level_out_of_range(self, small_hierarchy):
        with pytest.raises(ValueError):
            small_hierarchy.units_at_level(9)

    def test_contains_and_len(self, small_hierarchy):
        assert "h1_0" in small_hierarchy
        assert "nope" not in small_hierarchy
        assert len(small_hierarchy) == 2 + 4 + 8

    def test_unknown_unit_raises_keyerror(self, small_hierarchy):
        with pytest.raises(KeyError):
            small_hierarchy.unit("nope")

    def test_unit_index_is_dense_per_level(self, small_hierarchy):
        indexes = sorted(small_hierarchy.unit_index(u) for u in small_hierarchy.units_at_level(2))
        assert indexes == list(range(4))

    def test_base_unit_index_roundtrip(self, small_hierarchy):
        for unit in small_hierarchy.base_units:
            assert small_hierarchy.base_unit_at(small_hierarchy.base_unit_index(unit)) == unit

    def test_base_unit_index_rejects_non_base(self, small_hierarchy):
        with pytest.raises(ValueError):
            small_hierarchy.base_unit_index("h1_0")

    def test_describe_mentions_every_level(self, small_hierarchy):
        text = small_hierarchy.describe()
        for level in (1, 2, 3):
            assert f"level {level}" in text


class TestNavigation:
    def test_path_starts_at_level_one(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        path = small_hierarchy.path(base)
        assert len(path) == 3
        assert small_hierarchy.level_of(path[0]) == 1
        assert path[-1] == base

    def test_ancestors_excludes_self(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        assert base not in small_hierarchy.ancestors(base)
        assert len(small_hierarchy.ancestors(base)) == 2

    def test_ancestor_at_level_identity(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        assert small_hierarchy.ancestor_at_level(base, 3) == base

    def test_ancestor_at_level_one(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        ancestor = small_hierarchy.ancestor_at_level(base, 1)
        assert small_hierarchy.level_of(ancestor) == 1

    def test_ancestor_at_deeper_level_rejected(self, small_hierarchy):
        with pytest.raises(ValueError):
            small_hierarchy.ancestor_at_level("h1_0", 2)

    def test_children_of_inverse_of_parent(self, small_hierarchy):
        for unit in small_hierarchy.units_at_level(2):
            for child in small_hierarchy.children_of(unit):
                assert small_hierarchy.parent_of(child) == unit

    def test_base_descendants_of_base_is_itself(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        assert small_hierarchy.base_descendants(base) == (base,)

    def test_base_descendants_of_root_cover_everything(self, small_hierarchy):
        collected = set()
        for root in small_hierarchy.units_at_level(1):
            collected.update(small_hierarchy.base_descendants(root))
        assert collected == set(small_hierarchy.base_units)

    def test_base_descendants_cached_instance(self, small_hierarchy):
        first = small_hierarchy.base_descendants("h1_0")
        second = small_hierarchy.base_descendants("h1_0")
        assert first is second

    def test_common_ancestor_level_same_unit(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        assert small_hierarchy.common_ancestor_level(base, base) == 3

    def test_common_ancestor_level_siblings(self, small_hierarchy):
        parent = small_hierarchy.units_at_level(2)[0]
        children = small_hierarchy.children_of(parent)
        assert small_hierarchy.common_ancestor_level(children[0], children[1]) == 2

    def test_common_ancestor_level_disjoint_roots(self, small_hierarchy):
        roots = small_hierarchy.units_at_level(1)
        a = small_hierarchy.base_descendants(roots[0])[0]
        b = small_hierarchy.base_descendants(roots[1])[0]
        assert small_hierarchy.common_ancestor_level(a, b) == 0

    def test_iter_units_covers_all(self, small_hierarchy):
        assert sum(1 for _ in small_hierarchy.iter_units()) == len(small_hierarchy)
