"""Tests for the experiment harness (repro.experiments.harness and workloads)."""

import pytest

from repro.experiments.harness import SCALES, ExperimentResult, resolve_scale
from repro.experiments.workloads import (
    clear_workload_cache,
    sample_queries,
    syn_workload,
    wifi_workload,
)


class TestScales:
    def test_known_presets(self):
        assert set(SCALES) == {"tiny", "small", "medium"}

    def test_resolve_by_name(self):
        assert resolve_scale("tiny").name == "tiny"

    def test_resolve_passthrough(self):
        scale = SCALES["small"]
        assert resolve_scale(scale) is scale

    def test_resolve_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert resolve_scale(None).name == "tiny"

    def test_resolve_unknown(self):
        with pytest.raises(ValueError):
            resolve_scale("galactic")

    def test_presets_grow_monotonically(self):
        assert SCALES["tiny"].num_entities < SCALES["small"].num_entities < SCALES["medium"].num_entities


class TestExperimentResult:
    def test_add_row_and_columns(self):
        result = ExperimentResult(name="demo")
        result.add_row(x=1, y="a")
        result.add_row(x=2, z=3.5)
        assert result.columns() == ["x", "y", "z"]
        assert result.column("x") == [1, 2]
        assert result.column("y") == ["a", None]

    def test_filter_and_series(self):
        result = ExperimentResult(name="demo")
        for k in (1, 10):
            for nh in (64, 128):
                result.add_row(k=k, nh=nh, pe=k * nh)
        assert len(result.filter(k=1)) == 2
        assert result.series("nh", "pe", k=10) == [(64, 640), (128, 1280)]

    def test_to_table_contains_values(self):
        result = ExperimentResult(name="demo")
        result.add_row(metric="pe", value=0.75)
        table = result.to_table()
        assert "demo" in table
        assert "0.75" in table

    def test_to_table_empty(self):
        assert "(no rows)" in ExperimentResult(name="empty").to_table()

    def test_to_table_max_rows(self):
        result = ExperimentResult(name="demo")
        for index in range(10):
            result.add_row(index=index)
        table = result.to_table(max_rows=3)
        assert "more rows" in table

    def test_save_csv_roundtrip(self, tmp_path):
        import csv

        result = ExperimentResult(name="demo")
        result.add_row(a=1, b="x")
        result.add_row(a=2, b="y")
        path = tmp_path / "out.csv"
        result.save_csv(path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]


class TestWorkloads:
    def test_syn_workload_cached(self):
        clear_workload_cache()
        first = syn_workload("tiny")
        second = syn_workload("tiny")
        assert first is second

    def test_syn_workload_override_changes_cache_key(self):
        clear_workload_cache()
        base = syn_workload("tiny")
        variant = syn_workload("tiny", num_levels=3)
        assert variant is not base
        assert variant.num_levels == 3

    def test_wifi_workload_scale(self):
        clear_workload_cache()
        dataset = wifi_workload("tiny")
        assert dataset.num_entities == SCALES["tiny"].num_entities

    def test_sample_queries_reproducible(self):
        dataset = syn_workload("tiny")
        assert sample_queries(dataset, 5, seed=3) == sample_queries(dataset, 5, seed=3)

    def test_sample_queries_whole_population(self):
        dataset = syn_workload("tiny")
        assert len(sample_queries(dataset, 10_000)) == dataset.num_entities

    def test_sample_queries_exclusion(self):
        dataset = syn_workload("tiny")
        excluded = dataset.entities[0]
        queries = sample_queries(dataset, dataset.num_entities, exclude=[excluded])
        assert excluded not in queries
