"""Concurrency-equivalence of the serving daemon (acceptance criterion).

N client threads issue interleaved ``/v1/topk`` and ``/v1/events`` requests
against a live daemon -- coalescing on, query cache on -- and every response
body must be **byte-identical** to the canonical encoding of the same
operation sequence applied serially to an in-process engine.

Determinism is arranged the way a real deployment gets it, not by luck:

* the run is split into *phases*; within a phase, threads concurrently mix
  event appends (buffered -- the micro-batch is larger than a phase's event
  count, so nothing flushes mid-phase) with top-k queries, which therefore
  all observe the stable pre-phase index -- the daemon's documented
  consistency model (queries see flushed data only);
* a barrier then closes the phase with one explicit flush, and the serial
  reference applies the same events and flush;
* events are partitioned by entity across threads, so each entity's records
  arrive in trace order no matter how threads interleave;
* engines run ``bound_mode="per_level"`` (the strictly admissible bound),
  under which results are a theorem of the surviving data, independent of
  update interleaving -- the same construction the streaming- and
  sharded-equivalence suites pin.

Runs for the single engine and a 2-shard deployment.
"""

import http.client
import json
import os
import signal
import threading

import pytest

from repro.core.engine import TraceQueryEngine
from repro.server.app import TraceServer, build_http_server
from repro.server.frontend import FrontendServer
from repro.server.protocol import dumps, parse_topk_request, topk_payload
from repro.service.sharded import ShardedEngine
from repro.streaming.ingestor import EventIngestor, StreamingConfig
from repro.traces.dataset import TraceDataset
from repro.traces.events import PresenceInstance
from repro.traces.spatial import SpatialHierarchy

NUM_THREADS = 4
NUM_PHASES = 3
HORIZON = 96


def collect_span_names(nodes, names=None):
    """Flatten a trace record's span tree into a set of span names."""
    if names is None:
        names = set()
    for node in nodes:
        names.add(node["name"])
        collect_span_names(node["children"], names)
    return names


def iter_spans(nodes):
    """Depth-first walk over every span node in a trace record."""
    for node in nodes:
        yield node
        yield from iter_spans(node["children"])


def find_span(nodes, name):
    """First span named ``name`` in a depth-first walk, or ``None``."""
    for node in nodes:
        if node["name"] == name:
            return node
        found = find_span(node["children"], name)
        if found is not None:
            return found
    return None


def single_query_traces(tracer):
    """All retained single-query (non-batch) traces, oldest first."""
    return [
        record
        for record in reversed(tracer.recent_snapshot(limit=1_000_000))
        if record["name"] == "request.topk"
        and record["spans"][0]["attributes"].get("batch") is False
    ]


def base_dataset() -> TraceDataset:
    hierarchy = SpatialHierarchy.regular([2, 3])
    dataset = TraceDataset(hierarchy, horizon=HORIZON)
    for index in range(18):
        unit = f"u2_{index % 2}_{index % 3}"
        dataset.add_record(f"seed-{index:02d}", unit, time=(index * 3) % 40, duration=4)
        if index % 3 == 0:
            dataset.add_record(f"seed-{index:02d}", "u2_0_1", time=44, duration=2)
    return dataset


def make_engine(kind: str):
    dataset = base_dataset()
    if kind == "sharded":
        return ShardedEngine(
            dataset,
            num_shards=2,
            num_hashes=32,
            seed=9,
            bound_mode="per_level",
            query_cache_size=64,
        ).build()
    return TraceQueryEngine(
        dataset, num_hashes=32, seed=9, bound_mode="per_level", query_cache_size=64
    ).build()


def phase_events(phase: int, thread: int):
    """Thread ``thread``'s disjoint slice of phase ``phase``'s appends.

    Entities are owned by exactly one thread (and new per phase), so the
    per-entity record order is identical however threads interleave.
    """
    events = []
    for number in range(3):
        entity = f"p{phase}-t{thread}-{number}"
        unit = f"u2_{(phase + thread) % 2}_{number % 3}"
        start = 50 + phase * 10 + number
        events.append(PresenceInstance(entity, unit, start, start + 3))
    # Also touch a seed entity this thread owns, so updates hit warm
    # cache entries, not only fresh entities.
    touched = f"seed-{(thread * 5) % 18:02d}"
    events.append(PresenceInstance(touched, "u2_1_2", 60 + phase, 63 + phase))
    return events


def phase_queries(phase: int, thread: int):
    """The top-k queries thread ``thread`` issues during phase ``phase``.

    Overlapping across threads on purpose: identical concurrent queries are
    exactly what the coalescer and the cache must answer consistently.
    """
    queries = [("seed-00", 5), ("seed-07", 3), (f"seed-{(thread * 3) % 18:02d}", 5)]
    if phase > 0:
        queries.append((f"p{phase - 1}-t{thread}-0", 4))
        queries.append((f"p{phase - 1}-t{(thread + 1) % NUM_THREADS}-1", 2))
    return queries


def serial_reference(kind: str):
    """Apply the whole operation sequence serially, in-process.

    Returns ``{(phase, entity, k): canonical response bytes}``.
    """
    engine = make_engine(kind)
    ingestor = EventIngestor(engine, StreamingConfig(max_batch_events=10_000))
    expected = {}
    for phase in range(NUM_PHASES):
        # Queries observe the pre-phase state (appends stay buffered).
        for thread in range(NUM_THREADS):
            for event in phase_events(phase, thread):
                ingestor.submit(event)
        for thread in range(NUM_THREADS):
            for entity, k in phase_queries(phase, thread):
                request = parse_topk_request({"entity": entity, "k": k})
                result = engine.top_k(entity, k=k)
                expected[(phase, entity, k)] = dumps(topk_payload(request, [result]))
        ingestor.flush()
    return expected


@pytest.mark.parametrize("kind", ["single", "sharded"])
def test_daemon_matches_serial_engine_byte_for_byte(kind):
    expected = serial_reference(kind)

    engine = make_engine(kind)
    trace_server = TraceServer(
        engine,
        # The micro-batch far exceeds a phase's appends: nothing flushes
        # until the explicit end-of-phase flush request.
        streaming=StreamingConfig(max_batch_events=10_000),
        coalesce_window=0.005,
        # Sampling every request pins the acceptance criterion that tracing
        # is semantics-free: the byte-comparisons below still hold.
        trace_sample=1.0,
    )
    httpd = build_http_server(trace_server, port=0)
    port = httpd.server_address[1]
    server_thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    server_thread.start()

    def request_bytes(method, path, payload):
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            connection.request(
                method,
                path,
                body=json.dumps(payload),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    observed = {}
    observed_lock = threading.Lock()
    errors = []
    barrier = threading.Barrier(NUM_THREADS)

    def client(thread: int) -> None:
        try:
            for phase in range(NUM_PHASES):
                barrier.wait()
                # Interleave: appends first for even threads, queries first
                # for odd ones, so both orders race in every phase.
                operations = [
                    ("events", phase_events(phase, thread)),
                    ("queries", phase_queries(phase, thread)),
                ]
                if thread % 2:
                    operations.reverse()
                for op, payload in operations:
                    if op == "events":
                        status, _ = request_bytes(
                            "POST",
                            "/v1/events",
                            {
                                "events": [
                                    {
                                        "entity": event.entity,
                                        "unit": event.unit,
                                        "start": event.start,
                                        "end": event.end,
                                    }
                                    for event in payload
                                ]
                            },
                        )
                        assert status == 200
                    else:
                        for entity, k in payload:
                            status, body = request_bytes(
                                "POST", "/v1/topk", {"entity": entity, "k": k}
                            )
                            assert status == 200, body
                            with observed_lock:
                                # Two threads asking the same question in
                                # the same phase must get the same bytes.
                                previous = observed.get((phase, entity, k))
                                assert previous is None or previous == body
                                observed[(phase, entity, k)] = body
                barrier.wait()
                if thread == 0:
                    # One explicit flush closes the phase for everyone.
                    status, _ = request_bytes("POST", "/v1/events", {"flush": True})
                    assert status == 200
                barrier.wait()
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
            barrier.abort()

    threads = [
        threading.Thread(target=client, args=(thread,)) for thread in range(NUM_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    httpd.shutdown()
    httpd.server_close()
    trace_server.close()
    server_thread.join(timeout=10)

    assert not errors, errors
    assert set(observed) == set(expected)
    for key in expected:
        assert observed[key] == expected[key], f"response diverged for {key}"
    # The run must actually have exercised the machinery it claims to pin.
    stats = trace_server.coalescer.stats
    total_queries = len(
        [query for phase in range(NUM_PHASES) for thread in range(NUM_THREADS)
         for query in phase_queries(phase, thread)]
    )
    assert stats.submitted == total_queries

    # Every sampled query produced a complete trace: root -> coalescer ->
    # engine spans, with the engine stage named by deployment kind.
    counters = trace_server.tracer.counters_snapshot()
    assert counters["started"] == counters["recorded"] == total_queries
    traces = single_query_traces(trace_server.tracer)
    assert len(traces) == total_queries
    for record in traces:
        names = collect_span_names(record["spans"])
        assert {"request.topk", "coalesce.wait", "coalesce.dispatch"} <= names, names
        if kind == "sharded":
            # The sharded engine fans every query over its shards (cached
            # partials end the shard span early) and always merges.
            assert {"shard.search", "kernel.merge"} <= names, names
        else:
            assert "cache.lookup" in names, names
            # A cache hit answers at the lookup span; a miss runs the kernel.
            if not find_span(record["spans"], "cache.lookup")["attributes"]["hit"]:
                assert {"kernel.bounds", "kernel.scores", "kernel.merge"} <= names
    cache = engine.query_cache
    assert cache is not None and cache.stats.lookups > 0


@pytest.mark.parametrize("kind", ["single", "sharded"])
def test_multiprocess_daemon_matches_serial_engine_byte_for_byte(kind):
    """The ``--workers N`` tier answers the same workload byte-identically.

    Same phased workload as the in-process test, but served by a
    :class:`FrontendServer` with two query-worker *processes*: every
    end-of-phase flush publishes a new snapshot generation that the workers
    adopt at a request boundary, so the run crosses ``NUM_PHASES``
    generation publishes.  Midway, one worker is SIGKILLed while queries
    are in flight -- the pool must retry on the survivor and respawn the
    dead worker without a single diverging byte.  A final batch request
    exercises the scatter-gather path over the respawned pool.
    """
    expected = serial_reference(kind)

    engine = make_engine(kind)
    frontend = FrontendServer(
        engine,
        streaming=StreamingConfig(max_batch_events=10_000),
        workers=2,
        coalesce_window=0.005,
        # Sample everything: worker spans must stitch into the frontend
        # trace over the wire without changing a single response byte.
        trace_sample=1.0,
    )
    httpd = build_http_server(frontend, port=0)
    port = httpd.server_address[1]
    server_thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    server_thread.start()

    def request_bytes(method, path, payload):
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            connection.request(
                method,
                path,
                body=json.dumps(payload),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    observed = {}
    observed_lock = threading.Lock()
    errors = []
    barrier = threading.Barrier(NUM_THREADS)

    def client(thread: int) -> None:
        try:
            for phase in range(NUM_PHASES):
                barrier.wait()
                if phase == 1 and thread == 0:
                    # Kill one worker mid-run, with the other threads'
                    # queries racing the death.  Phase 1 then issues far
                    # more queries than the pool has workers, so the dead
                    # handle is certain to be checked out and exercised.
                    victim = frontend.pool.worker_pids[0]
                    assert victim is not None
                    os.kill(victim, signal.SIGKILL)
                operations = [
                    ("events", phase_events(phase, thread)),
                    ("queries", phase_queries(phase, thread)),
                ]
                if thread % 2:
                    operations.reverse()
                for op, payload in operations:
                    if op == "events":
                        status, _ = request_bytes(
                            "POST",
                            "/v1/events",
                            {
                                "events": [
                                    {
                                        "entity": event.entity,
                                        "unit": event.unit,
                                        "start": event.start,
                                        "end": event.end,
                                    }
                                    for event in payload
                                ]
                            },
                        )
                        assert status == 200
                    else:
                        for entity, k in payload:
                            status, body = request_bytes(
                                "POST", "/v1/topk", {"entity": entity, "k": k}
                            )
                            assert status == 200, body
                            with observed_lock:
                                previous = observed.get((phase, entity, k))
                                assert previous is None or previous == body
                                observed[(phase, entity, k)] = body
                barrier.wait()
                if thread == 0:
                    status, _ = request_bytes("POST", "/v1/events", {"flush": True})
                    assert status == 200
                barrier.wait()
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
            barrier.abort()

    threads = [
        threading.Thread(target=client, args=(thread,)) for thread in range(NUM_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=240)

    try:
        assert not errors, errors
        assert set(observed) == set(expected)
        for key in expected:
            assert observed[key] == expected[key], f"response diverged for {key}"

        # Batch form after the final flush: scattered over both workers
        # (one of them the respawned one), against the newest generation.
        batch_entities = [
            f"p{NUM_PHASES - 1}-t{thread}-0" for thread in range(NUM_THREADS)
        ] + ["seed-00", "seed-07"]
        reference = make_engine(kind)
        ingestor = EventIngestor(reference, StreamingConfig(max_batch_events=10_000))
        for phase in range(NUM_PHASES):
            for thread in range(NUM_THREADS):
                for event in phase_events(phase, thread):
                    ingestor.submit(event)
            ingestor.flush()
        batch_request = parse_topk_request({"entities": batch_entities, "k": 4})
        expected_batch = dumps(
            topk_payload(
                batch_request, reference.top_k_batch(batch_entities, k=4).results
            )
        )
        status, body = request_bytes(
            "POST", "/v1/topk", {"entities": batch_entities, "k": 4}
        )
        assert status == 200, body
        assert body == expected_batch

        # The run really crossed generations and really killed a worker.
        pool_stats = frontend.pool.stats_snapshot()
        assert pool_stats["respawns"] >= 1
        # Initial publish + one per (index-changing) phase flush.
        assert frontend.store.generation == 1 + NUM_PHASES

        # Every sampled single query stitched a full cross-process trace:
        # the frontend half (request/coalescer/worker round-trip) plus the
        # worker half shipped back over the wire and re-based under its
        # ``worker.request`` anchor.
        traces = single_query_traces(frontend.tracer)
        assert len(traces) == len(
            [query for phase in range(NUM_PHASES) for thread in range(NUM_THREADS)
             for query in phase_queries(phase, thread)]
        )
        for record in traces:
            names = collect_span_names(record["spans"])
            assert {"request.topk", "coalesce.wait", "coalesce.dispatch",
                    "worker.request", "worker.topk", "worker.adopt"} <= names, names
            if kind == "sharded":
                assert {"shard.search", "kernel.merge"} <= names, names
            else:
                # The worker-side engine records its cache outcome; misses
                # additionally run the kernel stages.
                assert "cache.lookup" in names, names
            worker_root = find_span(record["spans"], "worker.topk")
            assert worker_root["process"] == "worker"
            # The worker half hangs under the worker.request attempt that
            # actually produced it (a SIGKILLed attempt keeps its own,
            # childless, span closed with an error attribute).
            assert any(
                worker_root in anchor["children"]
                for anchor in iter_spans(record["spans"])
                if anchor["name"] == "worker.request"
            )

        # The batch request was traced too, scattered over both workers
        # (no coalescer involved) -- one worker.topk per entity, since the
        # wire propagates a trace descriptor per request slot.
        batch_traces = [
            trace
            for trace in frontend.tracer.recent_snapshot(limit=1_000_000)
            if trace["spans"][0]["attributes"].get("batch") is True
        ]
        (batch_record,) = batch_traces
        batch_names = collect_span_names(batch_record["spans"])
        assert {"worker.request", "worker.topk"} <= batch_names
        assert "coalesce.wait" not in batch_names
        worker_roots = [
            span for span in iter_spans(batch_record["spans"])
            if span["name"] == "worker.topk"
        ]
        assert len(worker_roots) == len(batch_entities)
    finally:
        httpd.shutdown()
        httpd.server_close()
        frontend.close()
        server_thread.join(timeout=10)


def test_sigkilled_frontend_recovers_byte_identically_by_wal_replay(tmp_path):
    """Crash injection: SIGKILL the frontend *mid-publish*, recover, compare.

    A forked child runs a ``--workers 1`` :class:`FrontendServer` over a
    generation store and a write-ahead log, ingesting phased events.  At the
    final phase's publish the child SIGKILLs itself at the worst possible
    instant -- after the flush mutated the engine and wrote its delta
    document, but *before* the ``CURRENT`` pointer swap -- leaving a torn
    publish on disk and an acknowledged flush that exists only in the WAL.

    The parent then recovers exactly as a restarted ``repro serve`` would
    (:func:`recover_engine_from_store` + :func:`replay_wal_into_engine`),
    boots a fresh frontend from the recovered state, and every response it
    serves must be byte-identical to a never-crashed oracle fed the same
    events.
    """
    from repro.server.generation import GenerationStore
    from repro.server.recovery import recover_engine_from_store, replay_wal_into_engine
    from repro.streaming.wal import WriteAheadLog, scan_wal

    store_root = tmp_path / "store"
    wal_root = tmp_path / "wal"
    pids_path = tmp_path / "worker-pids.json"
    marker_path = tmp_path / "crash-marker"
    crash_phase = NUM_PHASES - 1
    streaming = StreamingConfig(max_batch_events=10_000)

    child = os.fork()
    if child == 0:
        # -------- child: the serving process that will be SIGKILLed --------
        try:
            engine = make_engine("single")
            wal = WriteAheadLog(wal_root)
            frontend = FrontendServer(
                engine,
                streaming=streaming,
                workers=1,
                store_root=store_root,
                wal=wal,
            )
            pids_path.write_text(json.dumps(frontend.pool.worker_pids))

            def killing_swap(document):
                # The delta document is already on disk; dying before the
                # CURRENT swap is the worst-case torn publish.
                marker_path.write_text(str(os.getpid()))
                os.kill(os.getpid(), signal.SIGKILL)

            for phase in range(NUM_PHASES):
                for thread in range(NUM_THREADS):
                    for event in phase_events(phase, thread):
                        frontend.ingestor.submit(event)
                if phase == crash_phase:
                    frontend.store._swap_current = killing_swap
                frontend.ingestor.flush()
        finally:
            os._exit(1)  # any path that survives the SIGKILL is a failure

    # -------- parent: wait for the crash, then recover --------
    try:
        _, status = os.waitpid(child, 0)
        assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL
        assert marker_path.exists(), "child died before the injected point"

        # The torn publish: the crashed flush's delta document reached the
        # store, but CURRENT still names the previous generation.
        store = GenerationStore(store_root)
        current, _ = store.current()
        assert current == 1 + crash_phase  # initial publish + earlier phases
        assert (store_root / f"delta-{current + 1:06d}.json").exists()

        # The WAL holds every acknowledged flush, including the crashed one.
        report = scan_wal(wal_root)
        assert not report.corrupt
        assert report.total_records == NUM_PHASES

        recovered = recover_engine_from_store(store_root)
        assert recovered is not None
        engine, meta, generation = recovered
        assert generation == current
        assert meta["wal_seq"] == NUM_PHASES - 1
        summary, stream_state = replay_wal_into_engine(
            engine, WriteAheadLog(wal_root), streaming=streaming, meta=meta
        )
        assert summary.records == 1  # exactly the crashed flush replays
        assert summary.last_seq == NUM_PHASES

        # Never-crashed oracle: the same phased ingest, serially.
        oracle = make_engine("single")
        oracle_ingestor = EventIngestor(oracle, streaming)
        for phase in range(NUM_PHASES):
            for thread in range(NUM_THREADS):
                for event in phase_events(phase, thread):
                    oracle_ingestor.submit(event)
            oracle_ingestor.flush()
        assert stream_state == oracle_ingestor.stream_state()

        # Boot a replacement frontend from the recovered state -- the same
        # construction ``repro serve --workers N --store ... --wal ...``
        # performs -- and face it off byte-for-byte against the oracle.
        frontend = FrontendServer(
            engine,
            streaming=streaming,
            workers=1,
            store_root=store_root,
            wal=WriteAheadLog(wal_root),
            stream_state=stream_state,
        )
        try:
            entities = sorted(oracle.dataset.entities)
            assert sorted(engine.dataset.entities) == entities
            for entity in entities:
                for k in (1, 3, 5):
                    request = parse_topk_request({"entity": entity, "k": k})
                    expected = dumps(
                        topk_payload(request, [oracle.top_k(entity, k=k)])
                    )
                    status_code, payload = frontend.handle_topk(
                        {"entity": entity, "k": k}
                    )
                    assert status_code == 200, payload
                    assert dumps(payload) == expected, (
                        f"recovered frontend diverged for {entity!r} k={k}"
                    )
        finally:
            frontend.close()
    finally:
        # The SIGKILLed child never cleaned up its query worker; reap it.
        if pids_path.exists():
            for pid in json.loads(pids_path.read_text()):
                if pid:
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass
