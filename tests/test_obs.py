"""Unit tests for the observability layer (:mod:`repro.obs`).

Covers the span/trace API (nesting, the bounded ring, the slow-query log,
cross-process stitching via export/attach) and the Prometheus text
exposition (golden rendering, label escaping, the strict parser's
histogram invariants).
"""

import pytest

from repro.obs.exposition import (
    ExpositionError,
    MetricFamily,
    histogram_samples,
    parse_exposition,
    render_exposition,
)
from repro.obs.trace import (
    LATENCY_BUCKETS,
    ActiveTrace,
    Span,
    Tracer,
    format_trace,
)


def span_names(nodes):
    """Flatten a record's span tree into a set of (process, name) pairs."""
    names = set()
    for node in nodes:
        names.add((node["process"], node["name"]))
        names.update(span_names(node["children"]))
    return names


class TestTracerSampling:
    def test_rate_zero_never_samples(self):
        tracer = Tracer(sample_rate=0.0)
        assert all(tracer.start_trace("request.topk") is None for _ in range(50))
        assert tracer.counters_snapshot()["started"] == 0

    def test_rate_one_always_samples(self):
        tracer = Tracer(sample_rate=1.0)
        assert all(tracer.start_trace("request.topk") is not None for _ in range(10))
        assert tracer.counters_snapshot()["started"] == 10

    def test_fractional_rate_is_seeded_and_partial(self):
        tracer = Tracer(sample_rate=0.5, seed=7)
        outcomes = [tracer.start_trace("x") is not None for _ in range(200)]
        sampled = sum(outcomes)
        assert 0 < sampled < 200
        # Same seed, same decisions: the sampler is reproducible.
        again = Tracer(sample_rate=0.5, seed=7)
        assert [again.start_trace("x") is not None for _ in range(200)] == outcomes

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(sample_rate=-0.1)


class TestSpanTree:
    def test_nesting_follows_contexts(self):
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.start_trace("request.topk")
        context = trace.context()
        dispatch = context.begin("coalesce.dispatch")
        inner = trace.context(parent=dispatch)
        inner.begin("kernel.bounds").end(nodes=3)
        dispatch.end()
        record = tracer.finish(trace, status=200)

        assert record["status"] == 200
        assert record["error"] is False
        (root,) = record["spans"]
        assert root["name"] == "request.topk"
        (dispatch_node,) = root["children"]
        assert dispatch_node["name"] == "coalesce.dispatch"
        (bounds_node,) = dispatch_node["children"]
        assert bounds_node["name"] == "kernel.bounds"
        assert bounds_node["attributes"] == {"nodes": 3}

    def test_span_end_is_idempotent(self):
        span = Span("stage")
        first = span.end().duration
        assert span.end(extra=1).duration == first
        assert span.attributes == {"extra": 1}

    def test_under_reparents_same_trace(self):
        trace = ActiveTrace("root")
        context = trace.context()
        outer = context.begin("outer")
        child = context.under(outer).begin("child")
        assert child.parent_id == outer.span_id

    def test_non_scalar_attributes_coerced_to_repr(self):
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.start_trace("root")
        trace.begin("stage").end(payload=[1, 2])
        record = tracer.finish(trace)
        (root,) = record["spans"]
        (stage,) = root["children"]
        assert stage["attributes"]["payload"] == "[1, 2]"


class TestRingAndSlowLog:
    def finish_one(self, tracer, name, error=False):
        trace = tracer.start_trace(name)
        return tracer.finish(trace, status=500 if error else 200, error=error)

    def test_ring_evicts_oldest(self):
        tracer = Tracer(sample_rate=1.0, ring_capacity=3)
        for index in range(5):
            self.finish_one(tracer, f"t{index}")
        recent = tracer.recent_snapshot()
        assert [record["name"] for record in recent] == ["t4", "t3", "t2"]
        assert tracer.counters_snapshot()["recorded"] == 5

    def test_slow_log_keeps_slowest(self):
        tracer = Tracer(sample_rate=1.0, slow_capacity=2)
        records = [self.finish_one(tracer, f"t{index}") for index in range(6)]
        # Rewrite durations to a known ordering, then rebuild the heap the
        # way finish() would have seen them.
        tracer_b = Tracer(sample_rate=1.0, slow_capacity=2)
        for index, record in enumerate(records):
            trace = tracer_b.start_trace(f"slow{index}")
            trace.root.start -= float(index)  # pretend it ran `index` seconds
            tracer_b.finish(trace)
        slow = tracer_b.slow_snapshot()
        assert [record["name"] for record in slow] == ["slow5", "slow4"]
        assert slow[0]["duration_seconds"] > slow[1]["duration_seconds"]

    def test_errored_buffer_only_holds_errors(self):
        tracer = Tracer(sample_rate=1.0)
        self.finish_one(tracer, "fine")
        self.finish_one(tracer, "broken", error=True)
        errored = tracer.errored_snapshot()
        assert [record["name"] for record in errored] == ["broken"]
        assert errored[0]["error"] is True

    def test_stage_histogram_aggregates_span_names(self):
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.start_trace("root")
        trace.context().begin("kernel.traverse").end()
        tracer.finish(trace)
        stages = tracer.stage_snapshot()
        assert stages["kernel.traverse"]["count"] == 1
        assert stages["root"]["count"] == 1


class TestCrossProcessStitch:
    def test_export_and_attach_rebases_offsets(self):
        tracer = Tracer(sample_rate=1.0)
        frontend = tracer.start_trace("request.topk")
        anchor = frontend.context().begin("worker.request")

        worker = ActiveTrace(
            "worker.topk",
            trace_id=frontend.trace_id,
            parent_id=anchor.span_id,
            process="worker",
        )
        worker.context().begin("kernel.bounds").end(nodes=7)
        exported = worker.export_spans()
        assert all(entry["offset"] >= 0.0 for entry in exported)

        frontend.attach_remote(exported, anchor=anchor)
        anchor.end()
        record = tracer.finish(frontend, status=200)

        names = span_names(record["spans"])
        assert ("worker", "worker.topk") in names
        assert ("worker", "kernel.bounds") in names
        # The worker root hangs under the local anchor span...
        (root,) = record["spans"]
        (anchor_node,) = root["children"]
        assert anchor_node["name"] == "worker.request"
        (worker_root,) = anchor_node["children"]
        assert worker_root["name"] == "worker.topk"
        assert worker_root["process"] == "worker"
        # ...and its re-based start can never precede the anchor's.
        assert worker_root["start_offset_seconds"] >= anchor_node["start_offset_seconds"]
        (bounds,) = worker_root["children"]
        assert bounds["attributes"] == {"nodes": 7}

    def test_attach_remote_ignores_malformed_entries(self):
        trace = ActiveTrace("root")
        anchor = trace.context().begin("worker.request")
        trace.attach_remote(["nonsense", 17], anchor=anchor)
        assert len(trace.spans) == 2  # root + anchor, nothing attached

    def test_format_trace_renders_remote_spans(self):
        tracer = Tracer(sample_rate=1.0)
        frontend = tracer.start_trace("request.topk")
        anchor = frontend.context().begin("worker.request")
        worker = ActiveTrace("worker.topk", parent_id=anchor.span_id, process="worker")
        worker.context().begin("kernel.scores").end(candidates=4)
        frontend.attach_remote(worker.export_spans(), anchor=anchor)
        text = format_trace(tracer.finish(frontend, status=200))
        assert "[worker] kernel.scores" in text
        assert "candidates=4" in text
        assert "status=200" in text


GOLDEN_EXPOSITION = """\
# HELP repro_requests_total HTTP requests answered, by endpoint.
# TYPE repro_requests_total counter
repro_requests_total{endpoint="/v1/topk"} 5
repro_requests_total{endpoint="other"} 1
# HELP repro_trace_sample_rate Configured trace sampling rate.
# TYPE repro_trace_sample_rate gauge
repro_trace_sample_rate 0.25
# HELP repro_stage_latency_seconds Span durations by stage.
# TYPE repro_stage_latency_seconds histogram
repro_stage_latency_seconds_bucket{stage="kernel.bounds",le="0.001"} 2
repro_stage_latency_seconds_bucket{stage="kernel.bounds",le="0.01"} 3
repro_stage_latency_seconds_bucket{stage="kernel.bounds",le="+Inf"} 4
repro_stage_latency_seconds_sum{stage="kernel.bounds"} 0.5
repro_stage_latency_seconds_count{stage="kernel.bounds"} 4
"""


class TestExposition:
    def golden_families(self):
        return [
            MetricFamily(
                name="repro_requests_total",
                kind="counter",
                help="HTTP requests answered, by endpoint.",
                samples=[
                    ("", {"endpoint": "/v1/topk"}, 5.0),
                    ("", {"endpoint": "other"}, 1.0),
                ],
            ),
            MetricFamily(
                name="repro_trace_sample_rate",
                kind="gauge",
                help="Configured trace sampling rate.",
                samples=[("", {}, 0.25)],
            ),
            MetricFamily(
                name="repro_stage_latency_seconds",
                kind="histogram",
                help="Span durations by stage.",
                samples=histogram_samples(
                    {"stage": "kernel.bounds"}, [2, 1, 1], (0.001, 0.01), 0.5, 4
                ),
            ),
        ]

    def test_golden_rendering(self):
        assert render_exposition(self.golden_families()) == GOLDEN_EXPOSITION

    def test_golden_round_trips_through_the_parser(self):
        parsed = parse_exposition(GOLDEN_EXPOSITION)
        assert parsed["repro_requests_total"]["type"] == "counter"
        assert parsed["repro_stage_latency_seconds"]["type"] == "histogram"
        buckets = [
            sample
            for sample in parsed["repro_stage_latency_seconds"]["samples"]
            if sample[0] == "repro_stage_latency_seconds_bucket"
        ]
        assert [value for _, _, value in buckets] == [2.0, 3.0, 4.0]

    def test_label_values_are_escaped_and_recovered(self):
        tricky = 'quote " backslash \\ newline \n end'
        family = MetricFamily(
            name="repro_test_total",
            kind="counter",
            help="Help with \\ backslash\nand newline.",
            samples=[("", {"label": tricky}, 1.0)],
        )
        text = render_exposition([family])
        assert "\\n" in text and '\\"' in text
        parsed = parse_exposition(text)
        ((_, labels, value),) = parsed["repro_test_total"]["samples"]
        assert labels["label"] == tricky
        assert value == 1.0

    def test_histogram_samples_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            histogram_samples({}, [1, 2], (0.001, 0.01), 0.1, 3)

    def test_parser_rejects_non_cumulative_buckets(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.001"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 0.1\n"
            "repro_h_count 3\n"
        )
        with pytest.raises(ExpositionError):
            parse_exposition(text)

    def test_parser_rejects_missing_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.001"} 5\n'
            "repro_h_sum 0.1\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ExpositionError):
            parse_exposition(text)

    def test_parser_rejects_count_not_matching_inf(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 0.1\n"
            "repro_h_count 4\n"
        )
        with pytest.raises(ExpositionError):
            parse_exposition(text)

    def test_parser_rejects_samples_before_type(self):
        text = "repro_x_total 1\n# TYPE repro_x_total counter\n"
        with pytest.raises(ExpositionError):
            parse_exposition(text)

    def test_parser_rejects_invalid_metric_name(self):
        with pytest.raises(ExpositionError):
            parse_exposition("9bad_name 1\n")

    def test_bucket_edges_are_shared_and_in_seconds(self):
        # The whole layer hangs off one set of edges: sub-millisecond to
        # seconds, strictly increasing.
        assert LATENCY_BUCKETS[0] == 0.0005
        assert LATENCY_BUCKETS[-1] == 5.0
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
