"""Regression test for the worker pool's crash-loop (respawn storm) guard.

A worker that dies *on startup* -- broken interpreter, missing store,
exhausted memory -- must not put the pool's respawn loop into a hot fork
loop.  The pool backs off exponentially between respawn attempts and
counts a *respawn storm* once the failure streak crosses the backoff's
storm threshold, so a persistent crash loop is visible in ``/v1/stats``
and ``/metrics`` instead of only in the load average.

The test arranges exactly that: one worker of a two-worker pool is
SIGKILLed *and* its spawn command replaced by one that exits immediately,
so every revival attempt dies on startup.  The pool must (a) keep
answering queries through the surviving worker, (b) count the retry, and
(c) count at least one respawn storm -- all with the backoff shrunk so
the loop crosses the threshold in well under a second.
"""

from __future__ import annotations

import os
import signal
import sys
import time

from repro.server.frontend import WorkerPool
from repro.server.generation import GenerationStore


def test_crash_looping_worker_counts_a_storm_and_pool_keeps_answering(
    small_engine, tmp_path
):
    store_root = tmp_path / "store"
    GenerationStore(store_root).publish(small_engine)
    pool = WorkerPool(
        store_root,
        num_workers=2,
        respawn_backoff_base=0.01,
        respawn_backoff_cap=0.05,
    )
    try:
        victim = pool._handles[0]
        # Every future revival of this slot dies before binding its socket.
        victim._spawn_command = [sys.executable, "-c", "import sys; sys.exit(3)"]
        assert victim.pid is not None
        os.kill(victim.pid, signal.SIGKILL)

        # The dead handle is first in the idle queue: the request hits it,
        # fails, and must be retried transparently on the survivor.
        expected = small_engine.top_k("a", k=3)
        payloads = pool.topk(["a"], 3, 0.0)
        assert [(r["entity"], r["score"]) for r in payloads[0]["results"]] == list(
            expected.items
        )

        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            if pool.stats_snapshot()["respawn_storms"] >= 1:
                break
            time.sleep(0.02)
        stats = pool.stats_snapshot()
        assert stats["respawn_storms"] >= 1, stats
        assert stats["retries"] >= 1, stats

        # The pool still serves exact answers while one slot crash-loops.
        payloads = pool.topk(["b"], 3, 0.0)
        expected_b = small_engine.top_k("b", k=3)
        assert [(r["entity"], r["score"]) for r in payloads[0]["results"]] == list(
            expected_b.items
        )
    finally:
        pool.close()
