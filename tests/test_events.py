"""Tests for presence instances, ST-cells and cell sequences (repro.traces.events)."""

import pytest

from repro.traces.events import (
    CellSequence,
    PresenceInstance,
    STCell,
    cells_from_presences,
    cells_to_sequence,
)


class TestPresenceInstance:
    def test_duration(self):
        presence = PresenceInstance("a", "u", 3, 7)
        assert presence.duration == 4

    def test_empty_period_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            PresenceInstance("a", "u", 5, 5)

    def test_reversed_period_rejected(self):
        with pytest.raises(ValueError):
            PresenceInstance("a", "u", 5, 4)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            PresenceInstance("a", "u", -1, 2)

    def test_cells_enumerates_every_hour(self):
        presence = PresenceInstance("a", "venue", 10, 13)
        assert list(presence.cells()) == [
            STCell(10, "venue"),
            STCell(11, "venue"),
            STCell(12, "venue"),
        ]

    def test_overlaps_true_and_false(self):
        a = PresenceInstance("a", "u", 0, 5)
        b = PresenceInstance("b", "v", 4, 8)
        c = PresenceInstance("c", "w", 5, 8)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_overlap_period(self):
        a = PresenceInstance("a", "u", 0, 5)
        b = PresenceInstance("b", "v", 3, 8)
        assert a.overlap_period(b) == (3, 5)

    def test_overlap_period_disjoint_is_empty(self):
        a = PresenceInstance("a", "u", 0, 2)
        b = PresenceInstance("b", "v", 5, 8)
        start, end = a.overlap_period(b)
        assert start >= end

    def test_frozen(self):
        presence = PresenceInstance("a", "u", 0, 1)
        with pytest.raises(AttributeError):
            presence.start = 5  # type: ignore[misc]


class TestSTCell:
    def test_is_tuple_like(self):
        cell = STCell(4, "venue")
        time, unit = cell
        assert (time, unit) == (4, "venue")

    def test_hashable_and_equal(self):
        assert STCell(1, "a") == STCell(1, "a")
        assert len({STCell(1, "a"), STCell(1, "a"), STCell(2, "a")}) == 2

    def test_str(self):
        assert "venue" in str(STCell(3, "venue"))


class TestCellSequence:
    def test_cells_from_presences_base_level(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        sequence = cells_from_presences(
            [PresenceInstance("a", base, 0, 2)], small_hierarchy
        )
        assert sequence.base_cells == frozenset({STCell(0, base), STCell(1, base)})

    def test_levels_count_matches_hierarchy(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        sequence = cells_from_presences([PresenceInstance("a", base, 0, 1)], small_hierarchy)
        assert sequence.num_levels == small_hierarchy.num_levels

    def test_coarse_levels_use_ancestors(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        parent = small_hierarchy.parent_of(base)
        root = small_hierarchy.ancestor_at_level(base, 1)
        sequence = cells_from_presences([PresenceInstance("a", base, 5, 6)], small_hierarchy)
        assert sequence.at_level(2) == frozenset({STCell(5, parent)})
        assert sequence.at_level(1) == frozenset({STCell(5, root)})

    def test_coarse_set_not_larger_than_finer(self, small_hierarchy):
        bases = small_hierarchy.base_units
        presences = [
            PresenceInstance("a", bases[0], 0, 3),
            PresenceInstance("a", bases[1], 0, 3),
            PresenceInstance("a", bases[4], 1, 2),
        ]
        sequence = cells_from_presences(presences, small_hierarchy)
        for level in range(1, sequence.num_levels):
            assert sequence.size_at_level(level) <= sequence.size_at_level(level + 1)

    def test_two_bases_same_parent_merge_at_coarse_level(self, small_hierarchy):
        parent = small_hierarchy.units_at_level(2)[0]
        children = small_hierarchy.children_of(parent)
        presences = [
            PresenceInstance("a", children[0], 7, 8),
            PresenceInstance("a", children[1], 7, 8),
        ]
        sequence = cells_from_presences(presences, small_hierarchy)
        assert sequence.size_at_level(3) == 2
        assert sequence.size_at_level(2) == 1

    def test_at_level_out_of_range(self, small_hierarchy):
        sequence = cells_from_presences(
            [PresenceInstance("a", small_hierarchy.base_units[0], 0, 1)], small_hierarchy
        )
        with pytest.raises(ValueError):
            sequence.at_level(0)
        with pytest.raises(ValueError):
            sequence.at_level(99)

    def test_empty_sequence(self, small_hierarchy):
        sequence = cells_from_presences([], small_hierarchy)
        assert sequence.is_empty()

    def test_cells_to_sequence_rejects_non_base_cells(self, small_hierarchy):
        coarse = STCell(0, small_hierarchy.units_at_level(1)[0])
        with pytest.raises(ValueError):
            cells_to_sequence(frozenset({coarse}), small_hierarchy)

    def test_restrict_base_keeps_only_selected(self, small_hierarchy):
        bases = small_hierarchy.base_units
        sequence = cells_from_presences(
            [PresenceInstance("a", bases[0], 0, 2), PresenceInstance("a", bases[4], 0, 2)],
            small_hierarchy,
        )
        keep = frozenset({STCell(0, bases[0])})
        restricted = sequence.restrict_base(keep, small_hierarchy)
        assert restricted.base_cells == keep
        assert restricted.size_at_level(1) == 1

    def test_restrict_base_to_nothing_is_empty(self, small_hierarchy):
        bases = small_hierarchy.base_units
        sequence = cells_from_presences([PresenceInstance("a", bases[0], 0, 2)], small_hierarchy)
        restricted = sequence.restrict_base(frozenset(), small_hierarchy)
        assert restricted.is_empty()

    def test_cellsequence_is_frozen_dataclass(self, small_hierarchy):
        sequence = cells_from_presences(
            [PresenceInstance("a", small_hierarchy.base_units[0], 0, 1)], small_hierarchy
        )
        with pytest.raises(AttributeError):
            sequence.levels = ()  # type: ignore[misc]

    def test_duplicate_presences_do_not_duplicate_cells(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        sequence = cells_from_presences(
            [PresenceInstance("a", base, 0, 2), PresenceInstance("a", base, 1, 3)],
            small_hierarchy,
        )
        assert len(sequence.base_cells) == 3  # hours 0, 1, 2
