"""Tests for the frequent-pattern-mining substrate (repro.baselines.fpm)."""

import pytest

from repro.baselines.fpm import FrequentPatternMiner, cluster_cells_by_cooccurrence


TRANSACTIONS = [
    {"bread", "milk"},
    {"bread", "milk", "butter"},
    {"bread", "butter"},
    {"milk", "butter"},
    {"bread", "milk", "eggs"},
    {"tea"},
]


class TestFrequentPatternMiner:
    def test_singletons_respect_support(self):
        frequent = FrequentPatternMiner(min_support=3, max_size=1).mine(TRANSACTIONS)
        assert frozenset(["bread"]) in frequent
        assert frozenset(["milk"]) in frequent
        assert frozenset(["tea"]) not in frequent

    def test_support_counts_are_exact(self):
        frequent = FrequentPatternMiner(min_support=2, max_size=2).mine(TRANSACTIONS)
        assert frequent[frozenset(["bread", "milk"])] == 3
        assert frequent[frozenset(["bread", "butter"])] == 2

    def test_pairs_below_support_excluded(self):
        frequent = FrequentPatternMiner(min_support=2, max_size=2).mine(TRANSACTIONS)
        assert frozenset(["milk", "eggs"]) not in frequent

    def test_triples_mined_when_supported(self):
        transactions = [{"a", "b", "c"}] * 3 + [{"a", "b"}]
        frequent = FrequentPatternMiner(min_support=3, max_size=3).mine(transactions)
        assert frequent[frozenset(["a", "b", "c"])] == 3

    def test_max_size_limits_results(self):
        transactions = [{"a", "b", "c"}] * 3
        frequent = FrequentPatternMiner(min_support=2, max_size=2).mine(transactions)
        assert all(len(itemset) <= 2 for itemset in frequent)

    def test_apriori_property_holds(self):
        frequent = FrequentPatternMiner(min_support=2, max_size=3).mine(TRANSACTIONS)
        for itemset in frequent:
            for item in itemset:
                subset = itemset - {item}
                if subset:
                    assert subset in frequent

    def test_empty_transactions(self):
        assert FrequentPatternMiner(min_support=1).mine([]) == {}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FrequentPatternMiner(min_support=0)
        with pytest.raises(ValueError):
            FrequentPatternMiner(max_size=0)


class TestCooccurrenceClustering:
    def test_cooccurring_items_grouped(self):
        transactions = [{"x", "y"}] * 5 + [{"z", "w"}] * 5
        assignment = cluster_cells_by_cooccurrence(transactions, num_clusters=2)
        assert assignment["x"] == assignment["y"]
        assert assignment["z"] == assignment["w"]
        assert assignment["x"] != assignment["z"]

    def test_isolated_items_stay_singletons(self):
        transactions = [{"x", "y"}, {"solo"}]
        assignment = cluster_cells_by_cooccurrence(transactions, num_clusters=2)
        assert assignment["solo"] not in {assignment["x"]}

    def test_cluster_ids_dense(self):
        transactions = [{"a", "b"}, {"c", "d"}, {"e"}]
        assignment = cluster_cells_by_cooccurrence(transactions, num_clusters=3)
        ids = set(assignment.values())
        assert ids == set(range(len(ids)))

    def test_max_cluster_size_respected(self):
        transactions = [set("abcdefgh")] * 4
        assignment = cluster_cells_by_cooccurrence(
            transactions, num_clusters=1, max_cluster_size=3
        )
        from collections import Counter

        sizes = Counter(assignment.values())
        assert max(sizes.values()) <= 3

    def test_every_item_assigned(self):
        transactions = [{"a", "b", "c"}, {"b", "c", "d"}, {"e", "f"}]
        assignment = cluster_cells_by_cooccurrence(transactions, num_clusters=2)
        items = {item for transaction in transactions for item in transaction}
        assert set(assignment) == items

    def test_empty_input(self):
        assert cluster_cells_by_cooccurrence([], num_clusters=4) == {}

    def test_invalid_num_clusters(self):
        with pytest.raises(ValueError):
            cluster_cells_by_cooccurrence([{"a"}], num_clusters=0)
