"""Tests for measured PE and the distribution statistics (repro.analysis)."""

import pytest

from repro.analysis.distribution import adm_histogram, ajpi_duration_histogram, ajpi_entity_counts
from repro.analysis.pe import measure_pruning_effectiveness
from repro.baselines import BruteForceTopK
from repro.measures import HierarchicalADM


class TestMeasurePE:
    def test_aggregates_over_queries(self, small_engine):
        summary = measure_pruning_effectiveness(
            small_engine.top_k, small_engine.dataset.entities, k=2
        )
        assert summary.num_queries == small_engine.dataset.num_entities
        assert 0.0 <= summary.mean_pruning_effectiveness <= 1.0
        assert summary.mean_checked_fraction + summary.mean_pruning_effectiveness == pytest.approx(1.0)
        assert summary.mean_entities_scored > 0

    def test_sampling_is_reproducible(self, syn_engine):
        entities = syn_engine.dataset.entities
        first = measure_pruning_effectiveness(syn_engine.top_k, entities, k=3, sample_size=8, seed=1)
        second = measure_pruning_effectiveness(syn_engine.top_k, entities, k=3, sample_size=8, seed=1)
        assert first == second

    def test_different_seed_changes_sample(self, syn_engine):
        entities = syn_engine.dataset.entities
        first = measure_pruning_effectiveness(syn_engine.top_k, entities, k=3, sample_size=8, seed=1)
        second = measure_pruning_effectiveness(syn_engine.top_k, entities, k=3, sample_size=8, seed=2)
        assert first != second or first.mean_entities_scored == second.mean_entities_scored

    def test_brute_force_has_zero_pe(self, small_dataset, small_measure):
        oracle = BruteForceTopK(small_dataset, small_measure)
        summary = measure_pruning_effectiveness(oracle.search, small_dataset.entities, k=1)
        assert summary.mean_checked_fraction == pytest.approx(
            (small_dataset.num_entities - 1) / small_dataset.num_entities
        )

    def test_empty_pool_rejected(self, small_engine):
        with pytest.raises(ValueError):
            measure_pruning_effectiveness(small_engine.top_k, [], k=1)

    def test_invalid_k_rejected(self, small_engine):
        with pytest.raises(ValueError):
            measure_pruning_effectiveness(small_engine.top_k, ["a"], k=0)

    def test_as_row_is_flat(self, small_engine):
        summary = measure_pruning_effectiveness(small_engine.top_k, ["a", "b"], k=1)
        row = summary.as_row()
        assert row["queries"] == 2
        assert set(row) >= {"pe", "checked_fraction", "entities_scored"}


class TestAjpiCounts:
    def test_counts_monotone_over_levels(self, small_dataset):
        counts = ajpi_entity_counts(small_dataset, "a")
        values = [counts[level] for level in sorted(counts)]
        assert values == sorted(values, reverse=True)

    def test_base_level_counts_expected_entities(self, small_dataset):
        counts = ajpi_entity_counts(small_dataset, "a")
        assert counts[small_dataset.num_levels] == 2  # b and c share base cells with a

    def test_candidates_restriction(self, small_dataset):
        counts = ajpi_entity_counts(small_dataset, "a", candidates=["b"])
        assert counts[1] == 1

    def test_entity_without_associates(self, small_hierarchy):
        from repro.traces.dataset import TraceDataset

        dataset = TraceDataset(small_hierarchy, horizon=10)
        dataset.add_record("solo", small_hierarchy.base_units[0], 0)
        counts = ajpi_entity_counts(dataset, "solo")
        assert all(value == 0 for value in counts.values())


class TestDurationHistogram:
    def test_bucket_assignment(self, small_dataset):
        histogram = ajpi_duration_histogram(small_dataset, "a", bucket_edges=(0, 5, 10))
        assert set(histogram) == set(range(1, small_dataset.num_levels + 1))
        # a and b share 20 hours at the base level -> last bucket.
        assert histogram[small_dataset.num_levels][2] >= 1

    def test_total_entities_bounded(self, small_dataset):
        histogram = ajpi_duration_histogram(small_dataset, "a")
        for buckets in histogram.values():
            assert sum(buckets) <= small_dataset.num_entities - 1

    def test_invalid_edges(self, small_dataset):
        with pytest.raises(ValueError):
            ajpi_duration_histogram(small_dataset, "a", bucket_edges=(10, 5))
        with pytest.raises(ValueError):
            ajpi_duration_histogram(small_dataset, "a", bucket_edges=())


class TestADMHistogram:
    def test_counts_only_positive_degrees(self, small_dataset, small_measure):
        edges, counts = adm_histogram(small_dataset, "a", small_measure)
        assert len(edges) == len(counts) == 10
        assert sum(counts) == 2  # b and c have positive association with a

    def test_strong_associate_lands_in_high_bucket(self, small_dataset, small_measure):
        _edges, counts = adm_histogram(small_dataset, "a", small_measure, bucket_width=0.25)
        assert len(counts) == 4
        assert sum(counts[1:]) >= 1  # b's degree with a is well above 0.25

    def test_bucket_width_validation(self, small_dataset, small_measure):
        with pytest.raises(ValueError):
            adm_histogram(small_dataset, "a", small_measure, bucket_width=0.0)

    def test_higher_v_pushes_mass_to_lower_buckets(self, syn_dataset):
        gentle = HierarchicalADM(num_levels=syn_dataset.num_levels, u=2, v=2)
        harsh = HierarchicalADM(num_levels=syn_dataset.num_levels, u=2, v=5)
        query = syn_dataset.entities[0]
        _e, gentle_counts = adm_histogram(syn_dataset, query, gentle)
        _e, harsh_counts = adm_histogram(syn_dataset, query, harsh)
        def mass_above(counts, bucket):
            return sum(counts[bucket:])
        assert mass_above(harsh_counts, 3) <= mass_above(gentle_counts, 3)
