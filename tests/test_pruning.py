"""Tests for pruned sets, pruning state, and upper bounds (repro.core.pruning)."""

import numpy as np
import pytest

from repro.core.hashing import HierarchicalHashFamily
from repro.core.minsigtree import MinSigTree
from repro.core.pruning import PruningState, QueryHashes, upper_bound
from repro.core.signatures import SignatureComputer
from repro.measures import HierarchicalADM


@pytest.fixture
def environment(small_dataset):
    family = HierarchicalHashFamily(small_dataset.hierarchy, small_dataset.horizon, 24, seed=9)
    computer = SignatureComputer(family)
    signatures = computer.signatures_for_dataset(small_dataset)
    tree = MinSigTree.build(signatures, small_dataset.num_levels, 24)
    measure = HierarchicalADM(num_levels=small_dataset.num_levels)
    return small_dataset, family, tree, measure


class TestQueryHashes:
    def test_levels_and_shapes(self, environment):
        dataset, family, _tree, _measure = environment
        query = QueryHashes.from_sequence(dataset.cell_sequence("a"), family)
        assert query.num_levels == dataset.num_levels
        for cells, matrix in zip(query.cells, query.matrices):
            assert matrix.shape == (len(cells), family.num_hashes)

    def test_owner_maps_base_cells_to_ancestor_positions(self, environment):
        dataset, family, _tree, _measure = environment
        query = QueryHashes.from_sequence(dataset.cell_sequence("a"), family)
        hierarchy = dataset.hierarchy
        base_cells = query.cells[-1]
        for level_index in range(dataset.num_levels):
            owner = query.owners[level_index]
            for base_position, base_cell in enumerate(base_cells):
                ancestor_unit = hierarchy.ancestor_at_level(base_cell.unit, level_index + 1)
                ancestor_position = owner[base_position]
                assert query.cells[level_index][ancestor_position].unit == ancestor_unit
                assert query.cells[level_index][ancestor_position].time == base_cell.time

    def test_level_sizes_match_sequence(self, environment):
        dataset, family, _tree, _measure = environment
        sequence = dataset.cell_sequence("b")
        query = QueryHashes.from_sequence(sequence, family)
        assert query.level_sizes() == tuple(len(level) for level in sequence.levels)


class TestPruningState:
    def test_initial_state_prunes_nothing(self, environment):
        dataset, family, _tree, _measure = environment
        query = QueryHashes.from_sequence(dataset.cell_sequence("a"), family)
        state = PruningState.initial(query)
        assert state.surviving_counts() == query.level_sizes()
        assert state.pruned_counts() == (0,) * dataset.num_levels

    def test_refine_on_root_is_identity(self, environment):
        dataset, family, tree, _measure = environment
        query = QueryHashes.from_sequence(dataset.cell_sequence("a"), family)
        state = PruningState.initial(query)
        assert state.refine(tree.root, query) is state

    def test_refine_is_monotone(self, environment):
        """Theorem 3: pruned sets only grow along a root-to-leaf path."""
        dataset, family, tree, _measure = environment
        query = QueryHashes.from_sequence(dataset.cell_sequence("a"), family)
        for entity in dataset.entities:
            state = PruningState.initial(query)
            previous = state.pruned_counts()
            for node in tree.path_to_leaf(entity):
                state = state.refine(node, query)
                current = state.pruned_counts()
                assert all(now >= before for now, before in zip(current, previous))
                previous = current

    def test_refine_does_not_mutate_parent_state(self, environment):
        dataset, family, tree, _measure = environment
        query = QueryHashes.from_sequence(dataset.cell_sequence("a"), family)
        state = PruningState.initial(query)
        node = next(iter(tree.root.children.values()))
        refined = state.refine(node, query)
        assert state.pruned_counts() == (0,) * dataset.num_levels
        assert refined is not state

    def test_pruned_cells_are_truly_absent(self, environment):
        """Theorem 2 end to end: pruned query cells are absent from every member."""
        dataset, family, tree, _measure = environment
        query_entity = "a"
        query = QueryHashes.from_sequence(dataset.cell_sequence(query_entity), family)
        for entity in dataset.entities:
            if entity == query_entity:
                continue
            state = PruningState.initial(query)
            for node in tree.path_to_leaf(entity):
                state = state.refine(node, query)
            candidate_sequence = dataset.cell_sequence(entity)
            for level_index, mask in enumerate(state.masks):
                level_cells = query.cells[level_index]
                for cell, pruned in zip(level_cells, mask):
                    if pruned:
                        assert cell not in candidate_sequence.levels[level_index]

    def test_surviving_base_cells_match_mask(self, environment):
        dataset, family, tree, _measure = environment
        query = QueryHashes.from_sequence(dataset.cell_sequence("a"), family)
        state = PruningState.initial(query)
        for node in tree.path_to_leaf("d"):
            state = state.refine(node, query)
        survivors = state.surviving_base_cells(query)
        assert len(survivors) == state.surviving_counts()[-1]
        assert set(survivors) <= set(query.cells[-1])

    def test_lifted_counts_never_exceed_per_level_counts(self, environment):
        dataset, family, tree, _measure = environment
        query = QueryHashes.from_sequence(dataset.cell_sequence("a"), family)
        for entity in dataset.entities:
            state = PruningState.initial(query)
            for node in tree.path_to_leaf(entity):
                state = state.refine(node, query)
            lifted = state.lifted_surviving_counts(query)
            per_level = state.surviving_counts()
            assert all(l <= p for l, p in zip(lifted, per_level))

    def test_full_signature_prunes_at_least_as_much(self, small_dataset):
        family = HierarchicalHashFamily(small_dataset.hierarchy, small_dataset.horizon, 24, seed=9)
        computer = SignatureComputer(family)
        signatures = computer.signatures_for_dataset(small_dataset)
        tree = MinSigTree.build(
            signatures, small_dataset.num_levels, 24, store_full_signatures=True
        )
        query = QueryHashes.from_sequence(small_dataset.cell_sequence("a"), family)
        for entity in small_dataset.entities:
            partial_state = PruningState.initial(query)
            full_state = PruningState.initial(query)
            for node in tree.path_to_leaf(entity):
                partial_state = partial_state.refine(node, query, use_full_signature=False)
                full_state = full_state.refine(node, query, use_full_signature=True)
            assert all(
                full >= partial
                for full, partial in zip(full_state.pruned_counts(), partial_state.pruned_counts())
            )


class TestUpperBound:
    def test_root_bound_is_one(self, environment):
        dataset, family, _tree, measure = environment
        query = QueryHashes.from_sequence(dataset.cell_sequence("a"), family)
        state = PruningState.initial(query)
        assert upper_bound(state, query, measure) == pytest.approx(1.0)

    def test_bound_decreases_along_path(self, environment):
        dataset, family, tree, measure = environment
        query = QueryHashes.from_sequence(dataset.cell_sequence("a"), family)
        for entity in dataset.entities:
            state = PruningState.initial(query)
            previous = upper_bound(state, query, measure)
            for node in tree.path_to_leaf(entity):
                state = state.refine(node, query)
                current = upper_bound(state, query, measure)
                assert current <= previous + 1e-12
                previous = current

    def test_bound_admissible_for_indexed_entities(self, environment):
        """The node bound dominates the true degree of every entity below it."""
        dataset, family, tree, measure = environment
        for query_entity in dataset.entities:
            query_sequence = dataset.cell_sequence(query_entity)
            query = QueryHashes.from_sequence(query_sequence, family)
            for entity in dataset.entities:
                if entity == query_entity:
                    continue
                state = PruningState.initial(query)
                for node in tree.path_to_leaf(entity):
                    state = state.refine(node, query)
                true_degree = measure.score(dataset.cell_sequence(entity), query_sequence)
                for mode in ("per_level", "lift"):
                    bound = upper_bound(state, query, measure, mode=mode)
                    assert bound >= true_degree - 1e-9, (query_entity, entity, mode)

    def test_unknown_mode_rejected(self, environment):
        dataset, family, _tree, measure = environment
        query = QueryHashes.from_sequence(dataset.cell_sequence("a"), family)
        state = PruningState.initial(query)
        with pytest.raises(ValueError, match="bound mode"):
            upper_bound(state, query, measure, mode="bogus")

    def test_all_pruned_gives_zero(self, environment):
        dataset, family, _tree, measure = environment
        query = QueryHashes.from_sequence(dataset.cell_sequence("a"), family)
        masks = tuple(np.ones(len(level), dtype=bool) for level in query.cells)
        state = PruningState(masks=masks)
        assert upper_bound(state, query, measure) == 0.0
