"""Unit tests for the streaming subsystem (repro.streaming).

The end-to-end streamed-vs-scratch guarantee lives in
``test_streaming_equivalence.py``; this module covers the pieces in
isolation: dataset expiry, engine-level retraction tiers, the sliding-window
policy, the micro-batching ingestor, and the replay driver.
"""

import pytest

from repro import (
    EventIngestor,
    PresenceInstance,
    ShardedEngine,
    SlidingWindow,
    SpatialHierarchy,
    StreamingConfig,
    TraceDataset,
    TraceQueryEngine,
    replay_events,
)
from repro.streaming import read_event_log
from repro.traces.io import iter_traces_csv, write_traces_csv


@pytest.fixture
def hierarchy():
    return SpatialHierarchy.regular([2, 2], prefix="s")


def unit(hierarchy, index=0):
    return hierarchy.base_units[index]


def build_engine(hierarchy, horizon=100, **knobs):
    knobs.setdefault("num_hashes", 16)
    knobs.setdefault("seed", 2)
    return TraceQueryEngine(TraceDataset(hierarchy, horizon=horizon), **knobs).build()


class TestDatasetExpiry:
    def test_partial_expiry_keeps_surviving_records(self, hierarchy):
        dataset = TraceDataset(hierarchy, horizon=50)
        dataset.add_record("a", unit(hierarchy), time=0, duration=2)
        dataset.add_record("a", unit(hierarchy), time=10, duration=2)
        removed = dataset.expire_before(5)
        assert removed == {"a": 1}
        assert [p.start for p in dataset.trace("a")] == [10]

    def test_full_expiry_removes_the_entity(self, hierarchy):
        dataset = TraceDataset(hierarchy, horizon=50)
        dataset.add_record("a", unit(hierarchy), time=0, duration=2)
        dataset.add_record("b", unit(hierarchy), time=20, duration=2)
        removed = dataset.expire_before(10)
        assert removed == {"a": 1}
        assert "a" not in dataset
        assert dataset.entities == ("b",)

    def test_boundary_is_inclusive(self, hierarchy):
        """A record with ``end == cutoff`` has left the window."""
        dataset = TraceDataset(hierarchy, horizon=50)
        dataset.add_record("a", unit(hierarchy), time=0, duration=5)  # [0, 5)
        assert dataset.expire_before(4) == {}
        assert dataset.expire_before(5) == {"a": 1}

    def test_expiry_never_shrinks_a_derived_horizon(self, hierarchy):
        dataset = TraceDataset(hierarchy)
        dataset.add_record("a", unit(hierarchy), time=30, duration=2)
        dataset.add_record("b", unit(hierarchy), time=5, duration=2)
        assert dataset.horizon == 32
        dataset.expire_before(32)
        assert dataset.horizon == 32


class TestEngineExpiry:
    def test_full_expiry_drops_entity_from_index(self, hierarchy):
        engine = build_engine(hierarchy)
        engine.add_records(
            [
                PresenceInstance("old", unit(hierarchy), 0, 2),
                PresenceInstance("new", unit(hierarchy), 40, 42),
            ]
        )
        report = engine.expire_events(10)
        assert report.removed_entities == ["old"]
        assert "old" not in engine.tree
        assert "old" not in engine.dataset
        assert report.expired_records == 1

    def test_redundant_expired_record_leaves_tree_untouched(self, hierarchy):
        """Expired cells that never held a minimum change no signature.

        ``[0, 2)`` is covered by the surviving ``[0, 4)`` record, so the
        entity's ST-cell sets -- and therefore its signature -- are
        identical after expiry, and the incremental retraction skips the
        tree surgery entirely.
        """
        engine = build_engine(hierarchy)
        engine.add_records(
            [
                PresenceInstance("a", unit(hierarchy), 0, 2),
                PresenceInstance("a", unit(hierarchy), 0, 4),
            ]
        )
        leaf_before = engine.tree.leaf_of("a")
        loose_before = engine.tree.loose_operations
        report = engine.expire_events(2)
        assert report.unchanged_entities == ["a"]
        assert report.resigned_entities == []
        assert engine.tree.leaf_of("a") is leaf_before
        assert engine.tree.loose_operations == loose_before

    def test_changed_signature_is_resigned(self, hierarchy):
        engine = build_engine(hierarchy)
        engine.add_records(
            [
                PresenceInstance("a", unit(hierarchy, 0), 0, 2),
                PresenceInstance("a", unit(hierarchy, 3), 40, 42),
            ]
        )
        report = engine.expire_events(10)
        assert report.resigned_entities == ["a"]
        assert report.affected_entities == ["a"]
        assert report.changed_index

    def test_noop_expiry_returns_empty_report(self, hierarchy):
        engine = build_engine(hierarchy)
        engine.add_records([PresenceInstance("a", unit(hierarchy), 40, 42)])
        report = engine.expire_events(10)
        assert report.expired_records == 0
        assert not report.changed_index

    def test_expiry_invalidates_the_query_cache(self, hierarchy):
        engine = build_engine(hierarchy, query_cache_size=4)
        engine.add_records(
            [
                PresenceInstance("a", unit(hierarchy), 0, 2),
                PresenceInstance("b", unit(hierarchy), 0, 2),
                PresenceInstance("b", unit(hierarchy), 40, 42),
            ]
        )
        engine.top_k("b", k=1)
        assert len(engine.query_cache) == 1
        engine.expire_events(10)
        assert len(engine.query_cache) == 0
        assert engine.top_k("b", k=1).items == []  # "a" is gone

    def test_compact_resets_looseness_and_preserves_results(self, hierarchy):
        engine = build_engine(hierarchy)
        records = []
        for slot in range(8):
            records.append(PresenceInstance(f"e{slot}", unit(hierarchy, slot % 4), slot, slot + 2))
            records.append(
                PresenceInstance(f"e{slot}", unit(hierarchy, (slot + 1) % 4), 20 + slot, 22 + slot)
            )
        engine.add_records(records)
        engine.expire_events(12)  # partial expiry: several re-signings
        assert engine.tree.loose_operations > 0
        before = {e: engine.top_k(e, k=3).items for e in engine.dataset.entities}
        engine.compact()
        assert engine.tree.loose_operations == 0
        for entity, items in before.items():
            assert engine.top_k(entity, k=3).items == items


class TestSlidingWindow:
    def test_unbounded_window_never_expires(self, hierarchy):
        engine = build_engine(hierarchy)
        engine.add_records([PresenceInstance("a", unit(hierarchy), 0, 2)])
        window = SlidingWindow(engine, length=None)
        assert window.advance(10_000) is None
        assert "a" in engine.dataset

    def test_cutoff_is_monotone(self, hierarchy):
        engine = build_engine(hierarchy)
        engine.add_records([PresenceInstance("a", unit(hierarchy), 0, 2)])
        window = SlidingWindow(engine, length=10)
        assert window.advance(30) is not None
        assert window.cutoff == 20
        # A stale watermark must not re-run (or somehow undo) the expiry.
        assert window.advance(25) is None
        assert window.advance(30) is None
        assert window.cutoff == 20

    def test_failed_expiry_leaves_the_window_retryable(self, hierarchy):
        engine = build_engine(hierarchy)
        engine.add_records([PresenceInstance("a", unit(hierarchy), 0, 2)])

        class FlakyEngine:
            """Delegates to the real engine; expire_events fails once."""

            def __init__(self, inner):
                self._inner = inner
                self.failures_left = 1

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def expire_events(self, cutoff):
                if self.failures_left:
                    self.failures_left -= 1
                    raise RuntimeError("transient storage error")
                return self._inner.expire_events(cutoff)

        window = SlidingWindow(FlakyEngine(engine), length=10)
        with pytest.raises(RuntimeError, match="transient"):
            window.advance(30)
        # The cutoff must not be committed by the failed attempt; otherwise
        # the monotonicity check treats the retry as stale and the range is
        # silently skipped forever (the record would never expire).
        assert window.cutoff is None
        assert "a" in engine.dataset
        report = window.advance(30)  # same watermark: the retry
        assert report is not None
        assert report.removed_entities == ["a"]
        assert window.cutoff == 20
        assert "a" not in engine.dataset

    def test_cutoff_below_first_possible_end_is_a_noop(self, hierarchy):
        engine = build_engine(hierarchy)
        window = SlidingWindow(engine, length=10)
        assert window.advance(10) is None  # cutoff 0: no record can end <= 0
        assert window.cutoff is None

    def test_auto_compaction_threshold(self, hierarchy):
        engine = build_engine(hierarchy)
        engine.add_records(
            [PresenceInstance(f"e{slot}", unit(hierarchy, slot % 4), 0, 2) for slot in range(6)]
            + [PresenceInstance(f"e{slot}", unit(hierarchy, 3 - slot % 4), 30, 32) for slot in range(6)]
        )
        window = SlidingWindow(engine, length=20, compact_after=3)
        report = window.advance(40)  # expires the t=0 records, re-signs 6 entities
        assert len(report.resigned_entities) + len(report.removed_entities) >= 3
        assert window.stats.compactions == 1
        assert window.churn_since_compaction == 0
        assert engine.tree.loose_operations == 0

    def test_validation(self, hierarchy):
        engine = build_engine(hierarchy)
        with pytest.raises(ValueError, match="window length"):
            SlidingWindow(engine, length=0)
        with pytest.raises(ValueError, match="compact_after"):
            SlidingWindow(engine, length=5, compact_after=-1)


class TestEventIngestor:
    def test_buffers_until_batch_size(self, hierarchy):
        engine = build_engine(hierarchy)
        ingestor = EventIngestor(engine, max_batch_events=3)
        assert ingestor.submit(PresenceInstance("a", unit(hierarchy), 0, 2)) is None
        assert ingestor.submit(PresenceInstance("b", unit(hierarchy), 0, 2)) is None
        assert engine.dataset.num_entities == 0  # nothing flushed yet
        report = ingestor.submit(PresenceInstance("a", unit(hierarchy), 4, 6))
        assert report is not None
        assert report.events == 3
        assert report.affected_entities == ["a", "b"]
        assert engine.dataset.num_entities == 2
        assert ingestor.buffered_events == 0

    def test_watermark_tracks_submissions_not_flushes(self, hierarchy):
        engine = build_engine(hierarchy)
        ingestor = EventIngestor(engine, max_batch_events=10)
        ingestor.submit(PresenceInstance("a", unit(hierarchy), 0, 7))
        assert ingestor.watermark == 7
        ingestor.submit(PresenceInstance("b", unit(hierarchy), 0, 3))  # out of order
        assert ingestor.watermark == 7

    def test_context_manager_flushes_the_tail(self, hierarchy):
        engine = build_engine(hierarchy)
        with EventIngestor(engine, max_batch_events=100) as ingestor:
            ingestor.extend(
                [
                    PresenceInstance("a", unit(hierarchy), 0, 2),
                    PresenceInstance("b", unit(hierarchy), 0, 2),
                ]
            )
            assert engine.dataset.num_entities == 0
        assert engine.dataset.num_entities == 2

    def test_windowed_flush_reports_expiry(self, hierarchy):
        engine = build_engine(hierarchy)
        ingestor = EventIngestor(engine, max_batch_events=2, window=10)
        ingestor.extend(
            [
                PresenceInstance("old", unit(hierarchy), 0, 2),
                PresenceInstance("old2", unit(hierarchy), 1, 3),
            ]
        )
        reports = ingestor.extend(
            [
                PresenceInstance("new", unit(hierarchy), 40, 42),
                PresenceInstance("new2", unit(hierarchy), 41, 43),
            ]
        )
        assert len(reports) == 1
        expiry = reports[0].expiry
        assert expiry is not None and expiry.removed_entities == ["old", "old2"]
        assert sorted(engine.dataset.entities) == ["new", "new2"]
        assert ingestor.stats.events_flushed == 4
        assert ingestor.stats.mean_batch_size == 2.0

    def test_stats_accumulate(self, hierarchy):
        engine = build_engine(hierarchy)
        ingestor = EventIngestor(engine, max_batch_events=2)
        ingestor.extend(
            [PresenceInstance("a", unit(hierarchy), t, t + 1) for t in range(5)]
        )
        assert ingestor.stats.events_submitted == 5
        assert ingestor.stats.events_flushed == 4
        assert ingestor.stats.events_buffered == 1
        assert ingestor.stats.batches_flushed == 2
        # One entity, two flushes: re-signed once per flush.
        assert ingestor.stats.entities_reindexed == 2

    def test_late_arrival_below_the_cutoff_is_dropped_not_leaked(self, hierarchy):
        """Regression: an event already outside the window must not be indexed.

        A long-duration event pushes the watermark (and cutoff) far ahead;
        a short event arriving afterwards with ``end <= cutoff`` could never
        be expired by the monotone window, so it must be dropped at flush
        instead of leaking into the index forever.
        """
        engine = build_engine(hierarchy, horizon=200)
        ingestor = EventIngestor(engine, max_batch_events=1, window=10)
        ingestor.submit(PresenceInstance("a", unit(hierarchy), 1, 100))  # cutoff -> 90
        assert ingestor.window.cutoff == 90
        report = ingestor.submit(PresenceInstance("b", unit(hierarchy), 2, 3))
        assert report.dropped_late == 1
        assert report.events == 0
        assert "b" not in engine.dataset
        assert list(engine.dataset.entities) == ["a"]
        assert ingestor.stats.events_dropped_late == 1
        assert ingestor.stats.events_buffered == 0

    def test_event_expiring_within_its_own_flush_is_dropped_up_front(self, hierarchy):
        """An event that this very flush's cutoff advance would expire is
        never appended at all (no pointless index churn)."""
        engine = build_engine(hierarchy, horizon=200)
        ingestor = EventIngestor(engine, max_batch_events=2, window=10)
        report = ingestor.extend(
            [
                PresenceInstance("stale", unit(hierarchy), 2, 3),
                PresenceInstance("fresh", unit(hierarchy), 98, 100),  # cutoff becomes 90
            ]
        )[0]
        assert report.dropped_late == 1
        assert report.affected_entities == ["fresh"]
        assert list(engine.dataset.entities) == ["fresh"]

    def test_config_validation(self, hierarchy):
        engine = build_engine(hierarchy)
        with pytest.raises(ValueError, match="max_batch_events"):
            EventIngestor(engine, max_batch_events=0)
        with pytest.raises(TypeError, match="unknown streaming options"):
            EventIngestor(engine, batch_size=5)
        with pytest.raises(ValueError, match="window"):
            StreamingConfig(window=0)

    def test_works_against_a_sharded_engine(self, hierarchy):
        dataset = TraceDataset(hierarchy, horizon=100)
        sharded = ShardedEngine(dataset, num_shards=2, num_hashes=16, seed=2).build()
        ingestor = EventIngestor(sharded, max_batch_events=2, window=20)
        ingestor.extend(
            [
                PresenceInstance("a", unit(hierarchy), 0, 2),
                PresenceInstance("b", unit(hierarchy), 0, 2),
                PresenceInstance("c", unit(hierarchy, 1), 50, 52),
                PresenceInstance("d", unit(hierarchy, 1), 50, 52),
            ]
        )
        assert sorted(sharded.dataset.entities) == ["c", "d"]
        # Fully expired entities leave the routing table too.
        with pytest.raises(KeyError):
            sharded.shard_of("a")
        assert sharded.top_k("c", k=1).entities == ["d"]


class TestShardedExpiry:
    def test_aggregated_report_covers_all_shards(self, hierarchy):
        dataset = TraceDataset(hierarchy, horizon=100)
        sharded = ShardedEngine(
            dataset, num_shards=3, partitioner="round_robin", num_hashes=16, seed=2
        ).build()
        records = [
            PresenceInstance(f"e{slot}", unit(hierarchy, slot % 4), 0, 2) for slot in range(6)
        ] + [PresenceInstance("e0", unit(hierarchy), 50, 52)]
        sharded.add_records(records)
        report = sharded.expire_events(25)
        assert sorted(report.removed_entities) == [f"e{slot}" for slot in range(1, 6)]
        assert report.resigned_entities == ["e0"]
        assert report.expired_records == 6
        assert sharded.dataset.entities == ("e0",)

    def test_sharded_compact(self, hierarchy):
        dataset = TraceDataset(hierarchy, horizon=100)
        sharded = ShardedEngine(dataset, num_shards=2, num_hashes=16, seed=2).build()
        sharded.add_records(
            [PresenceInstance(f"e{slot}", unit(hierarchy, slot % 4), 0, 2) for slot in range(8)]
            + [PresenceInstance(f"e{slot}", unit(hierarchy, 3 - slot % 4), 30, 32) for slot in range(8)]
        )
        sharded.expire_events(10)
        before = {e: sharded.top_k(e, k=3).items for e in sharded.dataset.entities}
        sharded.compact()
        assert all(shard.tree.loose_operations == 0 for shard in sharded.shards)
        for entity, items in before.items():
            assert sharded.top_k(entity, k=3).items == items


class TestReplay:
    def make_log(self, hierarchy, count=30):
        events = []
        for index in range(count):
            entity = f"r{index % 5}"
            events.append(
                PresenceInstance(entity, unit(hierarchy, index % 4), index, index + 2)
            )
        return events

    def test_replay_matches_direct_ingest(self, hierarchy):
        events = self.make_log(hierarchy)
        streamed = build_engine(hierarchy)
        report = replay_events(streamed, events, max_batch_events=7, window=15)
        direct = build_engine(hierarchy)
        ingestor = EventIngestor(direct, max_batch_events=7, window=15)
        ingestor.extend(events)
        ingestor.close()
        assert report.events == len(events)
        assert sorted(streamed.dataset.entities) == sorted(direct.dataset.entities)
        for entity in streamed.dataset.entities:
            assert streamed.top_k(entity, k=3).items == direct.top_k(entity, k=3).items

    def test_interleaved_queries_and_skips(self, hierarchy):
        events = self.make_log(hierarchy)
        engine = build_engine(hierarchy)
        seen = []
        report = replay_events(
            engine,
            events,
            max_batch_events=5,
            query_entities=["r0", "absent"],
            query_every=10,
            k=2,
            on_query=lambda index, result: seen.append((index, result.query_entity)),
        )
        # Queries fire at events 10, 20, 30: r0, absent (skipped), r0.
        assert report.queries_answered == 2
        assert report.queries_skipped == 1
        assert seen == [(10, "r0"), (30, "r0")]

    def test_validation(self, hierarchy):
        engine = build_engine(hierarchy)
        with pytest.raises(ValueError, match="rate"):
            replay_events(engine, [], rate=-1)
        with pytest.raises(ValueError, match="query_entities"):
            replay_events(engine, [], query_every=5)

    def test_read_event_log_orders_by_time(self, hierarchy, tmp_path):
        dataset = TraceDataset(hierarchy, horizon=50)
        dataset.add_record("b", unit(hierarchy), time=9, duration=1)
        dataset.add_record("b", unit(hierarchy), time=0, duration=1)
        dataset.add_record("a", unit(hierarchy), time=4, duration=1)
        path = tmp_path / "log.csv"
        write_traces_csv(dataset, path)
        events = read_event_log(path)
        assert [(e.entity, e.start) for e in events] == [("b", 0), ("a", 4), ("b", 9)]
        # The raw iterator preserves file order instead.
        raw = list(iter_traces_csv(path))
        assert [(e.entity, e.start) for e in raw] == [("b", 9), ("b", 0), ("a", 4)]
