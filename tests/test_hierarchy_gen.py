"""Tests for the power-law sp-index generator (repro.mobility.hierarchy_gen)."""

import pytest

from repro.mobility.hierarchy_gen import GridHierarchyBuilder, _power_law_partition
from repro.mobility.im_model import Grid


class TestPowerLawPartition:
    def test_sum_preserved(self):
        sizes = _power_law_partition(100, 7, 2.0)
        assert sum(sizes) == 100
        assert len(sizes) == 7

    def test_every_part_nonempty(self):
        assert all(size >= 1 for size in _power_law_partition(20, 10, 2.0))

    def test_skew_increases_with_exponent(self):
        flat = _power_law_partition(1000, 10, 0.0)
        skewed = _power_law_partition(1000, 10, 2.0)
        assert max(skewed) > max(flat)

    def test_exact_fit(self):
        assert _power_law_partition(5, 5, 2.0) == [1, 1, 1, 1, 1]

    def test_too_many_parts_rejected(self):
        with pytest.raises(ValueError):
            _power_law_partition(3, 5, 1.0)

    def test_zero_parts_rejected(self):
        with pytest.raises(ValueError):
            _power_law_partition(3, 0, 1.0)


class TestGridHierarchyBuilder:
    @pytest.fixture
    def builder(self):
        return GridHierarchyBuilder(Grid(12), num_levels=4, width_exponent=2.0, density_exponent=2.0)

    def test_level_widths_monotone_and_end_at_base_count(self, builder):
        widths = builder.level_widths()
        assert len(widths) == 4
        assert widths == sorted(widths)
        assert widths[-1] == 144

    def test_build_produces_uniform_depth(self, builder):
        hierarchy, cell_to_unit = builder.build()
        assert hierarchy.num_levels == 4
        assert hierarchy.num_base_units == 144
        assert len(cell_to_unit) == 144

    def test_every_grid_cell_mapped_to_distinct_base_unit(self, builder):
        _hierarchy, cell_to_unit = builder.build()
        assert len(set(cell_to_unit.values())) == 144

    def test_width_follows_configuration(self, builder):
        hierarchy, _mapping = builder.build()
        widths = builder.level_widths()
        for level in range(1, 4):
            assert len(hierarchy.units_at_level(level)) == min(widths[level - 1], len(hierarchy.units_at_level(level + 1)))

    def test_density_exponent_skews_unit_sizes(self):
        grid = Grid(12)
        flat_builder = GridHierarchyBuilder(grid, num_levels=3, density_exponent=0.0)
        skew_builder = GridHierarchyBuilder(grid, num_levels=3, density_exponent=2.0)
        flat_hierarchy, _ = flat_builder.build()
        skew_hierarchy, _ = skew_builder.build()

        def max_children(hierarchy):
            return max(
                len(hierarchy.base_descendants(unit))
                for unit in hierarchy.units_at_level(1)
            )

        assert max_children(skew_hierarchy) >= max_children(flat_hierarchy)

    def test_spatial_locality_of_siblings(self, builder):
        """Base units sharing a parent should be close on the grid (Morton order)."""
        hierarchy, cell_to_unit = builder.build()
        unit_to_cell = {unit: cell for cell, unit in cell_to_unit.items()}
        grid = builder.grid
        sibling_distances = []
        for parent in hierarchy.units_at_level(3):
            children = hierarchy.children_of(parent)
            cells = [unit_to_cell[c] for c in children]
            for a in cells:
                for b in cells:
                    if a < b:
                        sibling_distances.append(grid.distance(a, b))
        if sibling_distances:
            assert sum(sibling_distances) / len(sibling_distances) < grid.side / 2

    def test_small_grid_with_many_levels_rejected(self):
        with pytest.raises(ValueError):
            GridHierarchyBuilder(Grid(1), num_levels=4)

    def test_single_level_hierarchy(self):
        builder = GridHierarchyBuilder(Grid(4), num_levels=1)
        hierarchy, _mapping = builder.build()
        assert hierarchy.num_levels == 1
        assert hierarchy.num_base_units == 16

    def test_describe_mentions_widths(self, builder):
        assert "widths" in builder.describe()
