"""Tests for pages, the record codec and the paged file (repro.storage.pages)."""

import pytest

from repro.storage.pages import Page, PagedFile, RecordCodec


class TestRecordCodec:
    def test_roundtrip(self):
        codec = RecordCodec()
        record = ("device-42", "ap-17", 120, 123)
        blob = codec.encode(record)
        decoded, offset = codec.decode(blob)
        assert decoded == record
        assert offset == len(blob)

    def test_encoded_size_matches_actual(self):
        codec = RecordCodec()
        record = ("entity", "unit", 5, 9)
        assert codec.encoded_size(record) == len(codec.encode(record))

    def test_unicode_identifiers(self):
        codec = RecordCodec()
        record = ("café-α", "ünit", 1, 2)
        decoded, _ = codec.decode(codec.encode(record))
        assert decoded == record

    def test_multiple_records_sequential_decode(self):
        codec = RecordCodec()
        records = [("a", "u", 0, 1), ("bb", "vv", 2, 5), ("ccc", "w", 7, 8)]
        blob = b"".join(codec.encode(r) for r in records)
        offset = 0
        decoded = []
        for _ in records:
            record, offset = codec.decode(blob, offset)
            decoded.append(record)
        assert decoded == records

    def test_oversized_identifier_rejected(self):
        codec = RecordCodec()
        with pytest.raises(ValueError):
            codec.encode(("x" * 70_000, "u", 0, 1))


class TestPage:
    def test_try_add_until_full(self):
        codec = RecordCodec()
        page = Page(page_id=0, capacity=64)
        added = 0
        while page.try_add(codec.encode((f"e{added}", "u", 0, 1))):
            added += 1
        assert added >= 1
        assert page.record_count == added
        assert page.free_bytes < codec.encoded_size((f"e{added}", "u", 0, 1))

    def test_records_roundtrip(self):
        codec = RecordCodec()
        page = Page(page_id=0, capacity=256)
        records = [("a", "u", 0, 1), ("b", "v", 3, 9)]
        for record in records:
            assert page.try_add(codec.encode(record))
        assert list(page.records(codec)) == records


class TestPagedFile:
    def test_append_and_scan(self):
        file = PagedFile(page_size=128)
        records = [(f"entity-{i}", f"unit-{i % 3}", i, i + 1) for i in range(50)]
        file.append_records(records)
        assert file.num_pages > 1
        assert list(file.iter_records()) == records

    def test_read_write_counters(self):
        file = PagedFile(page_size=128)
        file.append_records([("a", "u", 0, 1)] * 20)
        writes = file.writes
        assert writes == file.num_pages
        file.read_page(0)
        file.read_page(0)
        assert file.reads == 2
        file.reset_counters()
        assert file.reads == 0 and file.writes == 0

    def test_write_page_single(self):
        file = PagedFile(page_size=256)
        page_id = file.write_page([("a", "u", 0, 1), ("b", "v", 1, 2)])
        assert file.read_page(page_id) == [("a", "u", 0, 1), ("b", "v", 1, 2)]

    def test_write_page_overflow_rejected(self):
        file = PagedFile(page_size=64)
        with pytest.raises(ValueError):
            file.write_page([("entity", "unit", 0, 1)] * 20)

    def test_read_missing_page(self):
        file = PagedFile()
        with pytest.raises(IndexError):
            file.read_page(0)

    def test_record_larger_than_page_rejected(self):
        file = PagedFile(page_size=64)
        with pytest.raises(ValueError):
            file.append_records([("x" * 100, "unit", 0, 1)])

    def test_tiny_page_size_rejected(self):
        with pytest.raises(ValueError):
            PagedFile(page_size=16)

    def test_records_per_page_estimate(self):
        file = PagedFile(page_size=128)
        assert file.records_per_page_estimate() == 0.0
        file.append_records([("a", "u", 0, 1)] * 30)
        assert file.records_per_page_estimate() > 1
