"""Tests for the MinSigTree index structure (repro.core.minsigtree)."""

import numpy as np
import pytest

from repro.core.hashing import HierarchicalHashFamily
from repro.core.minsigtree import MinSigTree
from repro.core.signatures import SignatureComputer


@pytest.fixture
def signed_dataset(small_dataset):
    family = HierarchicalHashFamily(small_dataset.hierarchy, small_dataset.horizon, 16, seed=4)
    computer = SignatureComputer(family)
    return small_dataset, computer.signatures_for_dataset(small_dataset)


@pytest.fixture
def tree(signed_dataset):
    dataset, signatures = signed_dataset
    return MinSigTree.build(signatures, num_levels=dataset.num_levels, num_hashes=16)


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MinSigTree(num_levels=0, num_hashes=4)
        with pytest.raises(ValueError):
            MinSigTree(num_levels=2, num_hashes=0)
        with pytest.raises(ValueError):
            MinSigTree(num_levels=2, num_hashes=4, routing_strategy="bogus")

    def test_every_entity_in_exactly_one_leaf(self, tree, signed_dataset):
        dataset, _signatures = signed_dataset
        placements = [leaf.entities for leaf in tree.leaves()]
        flat = [entity for group in placements for entity in group]
        assert sorted(flat) == sorted(dataset.entities)
        assert len(flat) == len(set(flat))

    def test_leaves_are_at_bottom_level(self, tree, signed_dataset):
        dataset, _ = signed_dataset
        for leaf in tree.leaves():
            if leaf.entities:
                assert leaf.level == dataset.num_levels

    def test_num_entities(self, tree, signed_dataset):
        dataset, _ = signed_dataset
        assert tree.num_entities == dataset.num_entities

    def test_contains(self, tree):
        assert "a" in tree
        assert "ghost" not in tree

    def test_routing_index_is_argmax_of_signature(self, tree, signed_dataset):
        _dataset, signatures = signed_dataset
        for entity, matrix in signatures.items():
            path = tree.path_to_leaf(entity)
            for node in path:
                row = matrix[node.level - 1]
                assert row[node.routing_index] == row.max()

    def test_group_value_is_min_over_members(self, tree, signed_dataset):
        _dataset, signatures = signed_dataset
        for leaf in tree.leaves():
            if not leaf.entities:
                continue
            node = leaf
            while node is not None and not node.is_root:
                members = _entities_under(node)
                expected = min(
                    int(signatures[entity][node.level - 1][node.routing_index])
                    for entity in members
                )
                assert node.routing_value == expected
                node = node.parent

    def test_node_count_bounded_by_entities_times_levels(self, tree, signed_dataset):
        dataset, _ = signed_dataset
        assert tree.num_nodes <= dataset.num_entities * dataset.num_levels

    def test_depth_histogram_levels(self, tree, signed_dataset):
        dataset, _ = signed_dataset
        histogram = tree.depth_histogram()
        assert set(histogram) <= set(range(1, dataset.num_levels + 1))
        assert sum(histogram.values()) == tree.num_nodes

    def test_signature_of_roundtrip(self, tree, signed_dataset):
        _dataset, signatures = signed_dataset
        assert np.array_equal(tree.signature_of("a"), signatures["a"])

    def test_signature_of_unknown(self, tree):
        with pytest.raises(KeyError):
            tree.signature_of("ghost")

    def test_wrong_signature_shape_rejected(self, tree):
        with pytest.raises(ValueError, match="shape"):
            tree.insert("new", np.zeros((2, 2), dtype=np.int64))

    def test_duplicate_insert_rejected(self, tree, signed_dataset):
        _dataset, signatures = signed_dataset
        with pytest.raises(ValueError, match="already indexed"):
            tree.insert("a", signatures["a"])


class TestStorageAccounting:
    def test_size_grows_with_full_signatures(self, signed_dataset):
        dataset, signatures = signed_dataset
        compact = MinSigTree.build(signatures, dataset.num_levels, 16)
        full = MinSigTree.build(signatures, dataset.num_levels, 16, store_full_signatures=True)
        assert full.size_bytes() > compact.size_bytes()

    def test_full_signatures_stored_as_minimum(self, signed_dataset):
        dataset, signatures = signed_dataset
        tree = MinSigTree.build(signatures, dataset.num_levels, 16, store_full_signatures=True)
        for leaf in tree.leaves():
            if not leaf.entities:
                continue
            expected = np.min(
                np.stack([signatures[e][leaf.level - 1] for e in leaf.entities]), axis=0
            )
            assert np.array_equal(leaf.full_signature, expected)

    def test_leaf_order_covers_all_entities(self, tree, signed_dataset):
        dataset, _ = signed_dataset
        order = tree.leaf_order()
        assert set(order) == set(dataset.entities)
        assert sorted(order.values()) == list(range(dataset.num_entities))

    def test_iter_nodes_is_deterministic(self, tree):
        first = [id(node) for node in tree.iter_nodes()]
        second = [id(node) for node in tree.iter_nodes()]
        assert first == second


class TestRoutingStrategies:
    def test_random_routing_still_places_everyone(self, signed_dataset):
        dataset, signatures = signed_dataset
        tree = MinSigTree.build(
            signatures, dataset.num_levels, 16, routing_strategy="random"
        )
        assert tree.num_entities == dataset.num_entities

    def test_strategies_generally_differ(self, signed_dataset):
        dataset, signatures = signed_dataset
        argmax_tree = MinSigTree.build(signatures, dataset.num_levels, 16)
        random_tree = MinSigTree.build(
            signatures, dataset.num_levels, 16, routing_strategy="random"
        )
        argmax_paths = {e: tuple(n.routing_index for n in argmax_tree.path_to_leaf(e)) for e in signatures}
        random_paths = {e: tuple(n.routing_index for n in random_tree.path_to_leaf(e)) for e in signatures}
        assert argmax_paths != random_paths


def _entities_under(node):
    """All entities stored in the subtree rooted at ``node``."""
    collected = []
    stack = [node]
    while stack:
        current = stack.pop()
        collected.extend(current.entities)
        stack.extend(current.children.values())
    return collected
