"""Snapshot persistence: exact round-trips and loud failure modes.

The contract under test (see :mod:`repro.storage.snapshot`): an engine
restored from ``save()`` is bitwise-identical to the saved one -- same
signature matrices, same tree structure and routing values, same top-k
results, orderings, and pruning statistics -- including across OS
processes; and any version or fingerprint mismatch fails loudly instead of
serving wrong results.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro import JaccardADM, PresenceInstance, TraceQueryEngine
from repro.measures.base import AssociationMeasure
from repro.storage.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    load_engine_snapshot,
    save_engine_snapshot,
    snapshot_info,
)


def assert_engines_identical(original: TraceQueryEngine, restored: TraceQueryEngine, queries, k=5):
    """Signatures, tree shape, and query outcomes must match exactly."""
    assert restored.dataset.num_entities == original.dataset.num_entities
    assert set(restored.dataset.entities) == set(original.dataset.entities)
    for entity in original.dataset.entities:
        assert np.array_equal(
            original.tree.signature_of(entity), restored.tree.signature_of(entity)
        ), f"signature mismatch for {entity!r}"
    assert restored.tree.num_nodes == original.tree.num_nodes
    assert restored.tree.depth_histogram() == original.tree.depth_histogram()
    assert restored.tree.leaf_order() == original.tree.leaf_order()
    for query in queries:
        expected = original.top_k(query, k=k)
        actual = restored.top_k(query, k=k)
        assert actual.items == expected.items
        assert actual.stats.__dict__ == expected.stats.__dict__


class TestRoundTrip:
    def test_small_engine_round_trip(self, small_engine, tmp_path):
        small_engine.save(tmp_path / "snap")
        restored = TraceQueryEngine.load(tmp_path / "snap")
        assert_engines_identical(small_engine, restored, ["a", "d"], k=3)
        assert restored.config == small_engine.config
        assert restored.measure.name == small_engine.measure.name

    def test_syn_engine_round_trip(self, syn_engine, tmp_path):
        syn_engine.save(tmp_path / "snap")
        restored = load_engine_snapshot(tmp_path / "snap")
        queries = list(syn_engine.dataset.entities)[:5]
        assert_engines_identical(syn_engine, restored, queries, k=10)

    def test_round_trip_preserves_dataset_traces(self, small_engine, tmp_path):
        small_engine.save(tmp_path / "snap")
        restored = TraceQueryEngine.load(tmp_path / "snap")
        for entity in small_engine.dataset.entities:
            assert restored.dataset.trace(entity) == small_engine.dataset.trace(entity)
        assert restored.dataset.horizon == small_engine.dataset.horizon

    def test_round_trip_after_updates(self, small_engine, small_hierarchy, tmp_path):
        """Snapshots taken mid-lifecycle capture the *current* tree exactly.

        remove() leaves ancestor routing values un-tightened; the snapshot
        must preserve those loose values, not re-tighten them.
        """
        base = small_hierarchy.base_units
        small_engine.add_records(
            [
                PresenceInstance("f", base[0], 2, 5),
                PresenceInstance("a", base[2], 30, 33),
            ]
        )
        small_engine.remove_entity("c")
        small_engine.save(tmp_path / "snap")
        restored = TraceQueryEngine.load(tmp_path / "snap")
        assert "c" not in restored.dataset
        assert_engines_identical(small_engine, restored, ["a", "f", "d"], k=3)

    def test_loaded_engine_supports_updates(self, small_engine, small_hierarchy, tmp_path):
        small_engine.save(tmp_path / "snap")
        restored = TraceQueryEngine.load(tmp_path / "snap")
        base = small_hierarchy.base_units
        new = [PresenceInstance("g", base[0], 0, 4), PresenceInstance("g", base[1], 20, 22)]
        assert small_engine.add_records(new) == restored.add_records(new)
        assert restored.top_k("g", k=3).items == small_engine.top_k("g", k=3).items
        small_engine.remove_entity("b")
        restored.remove_entity("b")
        assert restored.top_k("a", k=3).items == small_engine.top_k("a", k=3).items

    def test_full_signature_round_trip(self, small_dataset, small_measure, tmp_path):
        engine = TraceQueryEngine(
            small_dataset,
            measure=small_measure,
            num_hashes=16,
            seed=2,
            store_full_signatures=True,
            use_full_signatures=True,
        ).build()
        engine.save(tmp_path / "snap")
        restored = TraceQueryEngine.load(tmp_path / "snap")
        assert restored.config.store_full_signatures
        for node_a, node_b in zip(engine.tree.iter_nodes(), restored.tree.iter_nodes()):
            if node_a.full_signature is None:
                assert node_b.full_signature is None
            else:
                assert np.array_equal(node_a.full_signature, node_b.full_signature)
        assert_engines_identical(engine, restored, ["a", "e"], k=3)

    def test_round_trip_across_processes(self, small_engine, tmp_path):
        """A fresh interpreter must reproduce results byte for byte."""
        snapshot = tmp_path / "snap"
        small_engine.save(snapshot)
        expected = [small_engine.top_k(query, k=3).items for query in ("a", "d")]
        script = (
            "import json, sys\n"
            "from repro import TraceQueryEngine\n"
            "engine = TraceQueryEngine.load(sys.argv[1])\n"
            "items = [engine.top_k(q, k=3).items for q in ('a', 'd')]\n"
            "print(json.dumps(items))\n"
        )
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        output = subprocess.run(
            [sys.executable, "-c", script, str(snapshot)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout
        subprocess_items = [
            [(entity, score) for entity, score in result] for result in json.loads(output)
        ]
        assert subprocess_items == expected


class TestFailureModes:
    def test_save_requires_built_engine(self, small_dataset, tmp_path):
        engine = TraceQueryEngine(small_dataset, num_hashes=16)
        with pytest.raises(SnapshotError, match="build"):
            engine.save(tmp_path / "snap")

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(SnapshotError, match="not a snapshot directory"):
            TraceQueryEngine.load(tmp_path / "missing")

    def test_refuses_to_overwrite_foreign_directory(self, small_engine, tmp_path):
        target = tmp_path / "not-a-snapshot"
        target.mkdir()
        (target / "precious.txt").write_text("do not clobber")
        with pytest.raises(SnapshotError, match="refusing to overwrite"):
            small_engine.save(target)
        assert (target / "precious.txt").read_text() == "do not clobber"

    def test_overwriting_an_existing_snapshot_is_allowed(self, small_engine, tmp_path):
        small_engine.save(tmp_path / "snap")
        small_engine.save(tmp_path / "snap")
        restored = TraceQueryEngine.load(tmp_path / "snap")
        assert restored.tree.num_entities == small_engine.tree.num_entities

    def test_cross_format_overwrite_leaves_no_stale_artifacts(
        self, small_engine, small_dataset, small_measure, tmp_path
    ):
        """Rebuilding single-over-sharded (and back) wipes the old layout."""
        from repro import ShardedEngine

        target = tmp_path / "snap"
        small_engine.save(target)
        sharded = ShardedEngine(
            small_dataset, measure=small_measure, num_shards=2, num_hashes=32, seed=5
        ).build()
        sharded.save(target)
        # The single-engine payload files must be gone from the sharded dir.
        assert not (target / "arrays.npz").exists()
        assert not (target / "hierarchy.json").exists()
        assert ShardedEngine.load(target).num_shards == 2
        small_engine.save(target)
        # And the shard directories must be gone from the single-engine dir.
        assert not list(target.glob("shard-*"))
        assert TraceQueryEngine.load(target).tree.num_entities == small_engine.tree.num_entities

    def test_corrupt_manifest_raises_snapshot_error(self, small_engine, tmp_path):
        snapshot = tmp_path / "snap"
        small_engine.save(snapshot)
        (snapshot / "manifest.json").write_text("{truncated")
        with pytest.raises(SnapshotError, match="unreadable snapshot manifest"):
            TraceQueryEngine.load(snapshot)

    def test_tampered_unfingerprinted_manifest_field_raises_snapshot_error(
        self, small_engine, tmp_path
    ):
        """Fields outside the fingerprint (dataset/tree) still fail cleanly."""
        snapshot = tmp_path / "snap"
        small_engine.save(snapshot)
        manifest_path = snapshot / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["dataset"]["num_levels"] = manifest["dataset"]["num_levels"] - 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError):
            TraceQueryEngine.load(snapshot)

    def test_interrupted_save_leaves_previous_snapshot_loadable(
        self, small_engine, tmp_path, monkeypatch
    ):
        """save() stages and swaps: a mid-write crash keeps the old snapshot."""
        import numpy as np

        snapshot = tmp_path / "snap"
        small_engine.save(snapshot)

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", explode)
        with pytest.raises(OSError):
            small_engine.save(snapshot)
        monkeypatch.undo()
        # The previous snapshot is intact, loadable, and re-savable.
        assert TraceQueryEngine.load(snapshot).tree.num_entities == small_engine.tree.num_entities
        small_engine.save(snapshot)

    def test_version_mismatch_fails_loudly(self, small_engine, tmp_path):
        snapshot = tmp_path / "snap"
        small_engine.save(snapshot)
        manifest_path = snapshot / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="format version"):
            TraceQueryEngine.load(snapshot)

    def test_fingerprint_mismatch_fails_loudly(self, small_engine, tmp_path):
        snapshot = tmp_path / "snap"
        small_engine.save(snapshot)
        manifest_path = snapshot / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        # Tamper with a semantic config field: the stored fingerprint no
        # longer matches what the contents hash to.
        manifest["config"]["num_hashes"] = manifest["config"]["num_hashes"] * 2
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="fingerprint mismatch"):
            TraceQueryEngine.load(snapshot)

    def test_swapped_payload_file_fails_loudly(self, small_engine, syn_engine, tmp_path):
        """Mixing files from two snapshots must not serve wrong results."""
        ours = tmp_path / "ours"
        theirs = tmp_path / "theirs"
        small_engine.save(ours)
        syn_engine.save(theirs)
        (ours / "arrays.npz").write_bytes((theirs / "arrays.npz").read_bytes())
        with pytest.raises(SnapshotError, match="does not match the manifest digest"):
            TraceQueryEngine.load(ours)

    def test_corrupted_hierarchy_fails_loudly(self, small_engine, tmp_path):
        snapshot = tmp_path / "snap"
        small_engine.save(snapshot)
        hierarchy_path = snapshot / "hierarchy.json"
        hierarchy_path.write_text(hierarchy_path.read_text().replace("h1_0", "h1_X", 1))
        with pytest.raises(SnapshotError, match="does not match the manifest digest"):
            TraceQueryEngine.load(snapshot)

    def test_unknown_measure_rejected_at_save(self, small_dataset, tmp_path):
        class CustomMeasure(AssociationMeasure):
            name = "custom"

            def score_levels(self, overlaps):
                return 0.0

        engine = TraceQueryEngine(small_dataset, measure=CustomMeasure(), num_hashes=16).build()
        with pytest.raises(SnapshotError, match="cannot serialize measure"):
            engine.save(tmp_path / "snap")

    def test_failed_save_does_not_destroy_existing_snapshot(
        self, small_engine, small_dataset, tmp_path
    ):
        """A save that cannot succeed must fail before wiping the target."""

        class CustomMeasure(AssociationMeasure):
            name = "custom"

            def score_levels(self, overlaps):
                return 0.0

        snapshot = tmp_path / "snap"
        small_engine.save(snapshot)
        bad = TraceQueryEngine(small_dataset, measure=CustomMeasure(), num_hashes=16).build()
        with pytest.raises(SnapshotError, match="cannot serialize measure"):
            bad.save(snapshot)
        # The original snapshot is intact and still loads.
        restored = TraceQueryEngine.load(snapshot)
        assert restored.tree.num_entities == small_engine.tree.num_entities

    def test_foreign_manifest_json_is_not_clobbered(self, small_engine, tmp_path):
        """A directory with someone else's manifest.json must be refused."""
        target = tmp_path / "my-extension"
        target.mkdir()
        (target / "manifest.json").write_text('{"name": "my pwa", "start_url": "/"}')
        (target / "app.js").write_text("// precious")
        with pytest.raises(SnapshotError, match="not a repro snapshot manifest"):
            small_engine.save(target)
        assert (target / "manifest.json").read_text().startswith('{"name": "my pwa"')
        assert (target / "app.js").exists()

    def test_measure_override_on_load(self, small_engine, small_hierarchy, tmp_path):
        small_engine.save(tmp_path / "snap")
        override = JaccardADM(num_levels=small_hierarchy.num_levels)
        restored = TraceQueryEngine.load(tmp_path / "snap", measure=override)
        assert restored.measure is override
        # Queries run with the overriding measure (still exact: bounds are
        # admissible for any registered measure).
        result = restored.top_k("a", k=3)
        assert result.entities


class TestSnapshotInfo:
    def test_info_reports_manifest_and_size(self, small_engine, tmp_path):
        small_engine.save(tmp_path / "snap")
        info = snapshot_info(tmp_path / "snap")
        assert info["format"] == "repro-engine-snapshot"
        assert info["format_version"] == SNAPSHOT_FORMAT_VERSION
        assert info["dataset"]["num_entities"] == small_engine.dataset.num_entities
        assert info["size_bytes"] > 0

    def test_save_returns_directory(self, small_engine, tmp_path):
        returned = save_engine_snapshot(small_engine, tmp_path / "snap")
        assert returned == tmp_path / "snap"
        assert (returned / "manifest.json").exists()
        assert (returned / "arrays.npz").exists()
        assert (returned / "hierarchy.json").exists()
