"""Tests for the baseline approaches (repro.baselines)."""

import pytest

from repro.baselines import BruteForceTopK, ClusterBitmapIndex
from repro.measures import HierarchicalADM


class TestBruteForce:
    def test_finds_obvious_associate(self, small_dataset, small_measure):
        oracle = BruteForceTopK(small_dataset, small_measure)
        assert oracle.search("a", 1).entities == ["b"]

    def test_scores_sorted_and_positive(self, small_dataset, small_measure):
        result = BruteForceTopK(small_dataset, small_measure).search("a", 4)
        assert result.scores == sorted(result.scores, reverse=True)
        assert all(score > 0 for score in result.scores)

    def test_k_zero_rejected(self, small_dataset, small_measure):
        with pytest.raises(ValueError):
            BruteForceTopK(small_dataset, small_measure).search("a", 0)

    def test_scans_whole_population(self, small_dataset, small_measure):
        result = BruteForceTopK(small_dataset, small_measure).search("a", 2)
        assert result.stats.entities_scored == small_dataset.num_entities - 1

    def test_candidate_restriction(self, small_dataset, small_measure):
        oracle = BruteForceTopK(small_dataset, small_measure)
        result = oracle.search("a", 3, candidates=["c", "d"])
        assert set(result.entities) <= {"c", "d"}

    def test_unknown_query_raises(self, small_dataset, small_measure):
        with pytest.raises(KeyError):
            BruteForceTopK(small_dataset, small_measure).search("ghost", 1)

    def test_ties_broken_deterministically(self, small_dataset, small_measure):
        first = BruteForceTopK(small_dataset, small_measure).search("a", 4)
        second = BruteForceTopK(small_dataset, small_measure).search("a", 4)
        assert first.items == second.items


class TestClusterBitmap:
    @pytest.fixture
    def index(self, small_dataset, small_measure):
        return ClusterBitmapIndex(small_dataset, small_measure, num_clusters=8).build()

    def test_build_required_before_search(self, small_dataset, small_measure):
        index = ClusterBitmapIndex(small_dataset, small_measure)
        assert not index.is_built
        with pytest.raises(RuntimeError):
            index.search("a", 1)

    def test_groups_cover_population(self, index, small_dataset):
        assert index.num_groups >= 1
        assert index.num_groups <= small_dataset.num_entities

    def test_results_match_brute_force(self, index, small_dataset, small_measure):
        oracle = BruteForceTopK(small_dataset, small_measure)
        for query in small_dataset.entities:
            baseline = index.search(query, 3)
            exact = oracle.search(query, 3)
            assert [round(s, 9) for s in baseline.scores] == [round(s, 9) for s in exact.scores]

    def test_results_match_brute_force_on_synthetic(self, syn_dataset):
        measure = HierarchicalADM(num_levels=syn_dataset.num_levels)
        index = ClusterBitmapIndex(syn_dataset, measure, num_clusters=32).build()
        oracle = BruteForceTopK(syn_dataset, measure)
        for query in syn_dataset.entities[::20]:
            baseline = index.search(query, 5)
            exact = oracle.search(query, 5)
            assert [round(s, 9) for s in baseline.scores] == [round(s, 9) for s in exact.scores]

    def test_invalid_k(self, index):
        with pytest.raises(ValueError):
            index.search("a", 0)

    def test_cluster_assignment_exists_for_query_cells(self, index, small_dataset):
        for cell in small_dataset.cell_sequence("a").base_cells:
            assert index.cluster_of(cell) is not None

    def test_stats_are_populated(self, index, small_dataset):
        result = index.search("a", 2)
        assert result.stats.population == small_dataset.num_entities
        assert result.stats.entities_scored >= len(result)

    def test_baseline_stats_comparable_to_minsigtree(self, syn_engine):
        """Both methods expose the same work counters so Figure 7.7 can compare
        them; the quantitative comparison lives in the benchmark, not here."""
        measure = syn_engine.measure
        dataset = syn_engine.dataset
        baseline = ClusterBitmapIndex(dataset, measure, num_clusters=48).build()
        for query in dataset.entities[::40]:
            tree_stats = syn_engine.top_k(query, 1).stats
            baseline_stats = baseline.search(query, 1).stats
            for stats in (tree_stats, baseline_stats):
                assert 0.0 <= stats.pruning_effectiveness <= 1.0
                assert 0 < stats.entities_scored <= stats.population
