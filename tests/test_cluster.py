"""Unit tests for the distributed serving tier's building blocks.

Each layer of :mod:`repro.cluster` is pinned in isolation here -- the
consistent-hash ring and its remap bound, the partitioner that routes
entities to shard groups, the wire codec that ships query sequences, the
per-replica health state machine, the shard server's operation handling,
and the replica group's failover/hedging policy (against in-test framed
TCP servers, no subprocesses).  The end-to-end behaviour -- real shard
server processes, kills, catch-up, degraded answers -- is exercised by
the chaos battery (``test_cluster_chaos.py``) and by
``repro cluster chaos`` in CI.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.replica import (
    ClusterConfig,
    ReplicaClient,
    ReplicaGroup,
    ShardUnavailable,
)
from repro.cluster.shard_server import ShardServer
from repro.cluster.wire import decode_sequence, encode_sequence
from repro.obs.health import SUSPECT_THRESHOLD, NodeHealth
from repro.server import protocol
from repro.server.generation import GenerationStore
from repro.server.workers import recv_frame, send_frame
from repro.service.partition import ConsistentHashPartitioner, make_partitioner


class TestConsistentHashRing:
    def test_routing_is_deterministic_across_instances(self):
        nodes = [f"shard-{index:03d}" for index in range(4)]
        first = ConsistentHashRing(nodes)
        second = ConsistentHashRing(list(reversed(nodes)))  # order-insensitive
        keys = [f"entity-{index}" for index in range(500)]
        assert [first.node_for(key) for key in keys] == [
            second.node_for(key) for key in keys
        ]

    def test_every_node_owns_a_reasonable_share(self):
        nodes = [f"shard-{index:03d}" for index in range(4)]
        ring = ConsistentHashRing(nodes)
        keys = [f"entity-{index}" for index in range(2000)]
        counts = ring.distribution(keys)
        assert set(counts) == set(nodes)
        fair = len(keys) / len(nodes)
        assert min(counts.values()) > 0
        # Virtual nodes keep the split within a loose envelope of fair.
        assert max(counts.values()) < 2 * fair

    def test_adding_a_node_moves_only_a_minority_of_keys(self):
        keys = [f"entity-{index}" for index in range(1000)]
        four = ConsistentHashRing([f"shard-{index:03d}" for index in range(4)])
        five = ConsistentHashRing([f"shard-{index:03d}" for index in range(5)])
        moved = four.assignments_moved(five, keys)
        # Consistent hashing's remap bound: about 1/5 of the keyspace, and
        # certainly nowhere near the ~4/5 a modulo rehash would shuffle.
        assert 0 < moved < len(keys) // 2
        # Keys that did not move still route to their old node.
        stayed = [key for key in keys if four.node_for(key) == five.node_for(key)]
        assert len(stayed) == len(keys) - moved

    def test_construction_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="at least one node"):
            ConsistentHashRing([])
        with pytest.raises(ValueError, match="duplicate"):
            ConsistentHashRing(["a", "a"])
        with pytest.raises(ValueError, match="virtual_nodes"):
            ConsistentHashRing(["a"], virtual_nodes=0)


class TestConsistentHashPartitioner:
    def test_matches_the_ring_assignment(self):
        partitioner = ConsistentHashPartitioner(4)
        ring = ConsistentHashRing([f"shard-{index:03d}" for index in range(4)])
        for index in range(200):
            entity = f"entity-{index}"
            assert f"shard-{partitioner.assign(entity):03d}" == ring.node_for(entity)

    def test_assignments_are_stable_across_instances(self):
        entities = [f"entity-{index}" for index in range(300)]
        first = ConsistentHashPartitioner(3)
        second = ConsistentHashPartitioner(3)
        assert [first.assign(e) for e in entities] == [second.assign(e) for e in entities]

    def test_resharding_moves_a_minority_of_entities(self):
        entities = [f"entity-{index}" for index in range(1000)]
        three = ConsistentHashPartitioner(3)
        four = ConsistentHashPartitioner(4)
        moved = sum(1 for e in entities if three.assign(e) != four.assign(e))
        assert 0 < moved < len(entities) // 2

    def test_registered_with_make_partitioner(self):
        partitioner = make_partitioner("consistent_hash", 3)
        assert isinstance(partitioner, ConsistentHashPartitioner)
        assert partitioner.kind == "consistent_hash"
        assert partitioner.num_shards == 3


class TestWireCodec:
    def test_sequence_round_trips_exactly(self, small_dataset):
        for entity in ("a", "b", "e"):
            sequence = small_dataset.cell_sequence(entity)
            assert decode_sequence(encode_sequence(sequence)) == sequence

    def test_encoding_is_deterministic(self, small_dataset):
        sequence = small_dataset.cell_sequence("a")
        first = json.dumps(encode_sequence(sequence))
        second = json.dumps(encode_sequence(decode_sequence(encode_sequence(sequence))))
        assert first == second


class TestNodeHealth:
    def test_failures_escalate_live_to_suspect_to_down(self):
        health = NodeHealth("r0")
        health.record_failure()
        assert health.state == "suspect"
        assert health.is_usable and not health.is_live
        for _ in range(SUSPECT_THRESHOLD - 1):
            health.record_failure()
        assert health.state == "down"
        assert not health.is_usable

    def test_success_recovers_a_suspect(self):
        health = NodeHealth("r0")
        health.record_failure()
        health.record_success()
        assert health.state == "live"
        assert health.consecutive_failures == 0
        assert health.recoveries_total == 1

    def test_catching_up_is_a_rejoin_gate(self):
        health = NodeHealth("r0")
        health.mark_catching_up()
        # Answering a probe is not proof of catch-up: only mark_live (called
        # after generation verification) returns the node to rotation.
        health.record_success()
        assert health.state == "catching_up"
        assert not health.is_usable
        health.mark_live()
        assert health.is_live
        assert health.recoveries_total == 1

    def test_mark_down_records_an_observed_kill(self):
        health = NodeHealth("r0")
        health.mark_down()
        assert health.state == "down"
        assert not health.is_usable


class TestShardServerHandle:
    @pytest.fixture
    def shard_server(self, small_engine, tmp_path):
        store = GenerationStore(tmp_path / "shard-000")
        store.publish(small_engine)
        return ShardServer(str(tmp_path / "shard-000"), shard="shard-000")

    def test_ping_and_status(self, shard_server):
        ping = shard_server.handle({"op": "ping"})
        assert ping["ok"] and ping["generation"] == 0  # nothing adopted yet
        status = shard_server.handle({"op": "status"})
        assert status["shard"] == "shard-000"
        assert status["chaos"] == {"delay": 0.0, "drop": 0, "refuse": False}

    def test_sync_adopts_and_verifies_the_generation(self, shard_server):
        reply = shard_server.handle({"op": "sync", "min_generation": 1})
        assert reply == {"ok": True, "generation": 1}
        # A generation the store has not published cannot be verified.
        behind = shard_server.handle({"op": "sync", "min_generation": 99})
        assert behind == {"ok": False, "generation": 1}

    def test_topk_answers_match_the_source_engine(
        self, shard_server, small_engine, small_dataset
    ):
        request = {
            "op": "topk",
            "queries": [
                {
                    "entity": "a",
                    "sequence": encode_sequence(small_dataset.cell_sequence("a")),
                }
            ],
            "k": 3,
            "approximation": 0.0,
        }
        reply = shard_server.handle(request)
        assert "error" not in reply
        expected = protocol.topk_result_payload(small_engine.top_k("a", k=3))
        assert reply["results"][0]["query"] == "a"
        assert reply["results"][0]["results"] == expected["results"]

    def test_unknown_op_is_a_400(self, shard_server):
        reply = shard_server.handle({"op": "frobnicate"})
        assert reply["status"] == 400
        assert "unknown op" in reply["error"]

    def test_chaos_flags_round_trip(self, shard_server):
        reply = shard_server.handle(
            {"op": "chaos", "delay": 0.25, "drop": 2, "refuse": True}
        )
        assert reply["chaos"] == {"delay": 0.25, "drop": 2, "refuse": True}
        assert shard_server.chaos.should_refuse()
        assert shard_server.chaos.take_drop() and shard_server.chaos.take_drop()
        assert not shard_server.chaos.take_drop()  # tokens consumed
        shard_server.handle({"op": "chaos", "delay": 0.0, "drop": 0, "refuse": False})
        assert shard_server.chaos.snapshot() == {
            "delay": 0.0,
            "drop": 0,
            "refuse": False,
        }


# ----------------------------------------------------------------------
# Replica group failover against in-test framed TCP servers
# ----------------------------------------------------------------------
class _FakeShardServer:
    """A framed TCP peer answering with ``reply_fn(request)`` per frame."""

    def __init__(self, reply_fn):
        self._reply_fn = reply_fn
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._closed = False
        threading.Thread(target=self._accept_loop, daemon=True).start()

    def _accept_loop(self):
        while not self._closed:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(connection,), daemon=True
            ).start()

    def _serve(self, connection):
        with connection:
            while True:
                try:
                    request = recv_frame(connection)
                except (ConnectionError, OSError, ValueError):
                    return
                if request is None:
                    return
                try:
                    send_frame(connection, self._reply_fn(request))
                except OSError:
                    return

    def close(self):
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass


def _dead_port() -> int:
    """A port with no listener: connects are refused."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _fast_config(**overrides) -> ClusterConfig:
    base = dict(
        connect_timeout=0.5,
        request_timeout=2.0,
        shard_deadline=5.0,
        hedge_delay=0.05,
        backoff_base=0.01,
        backoff_cap=0.05,
        max_attempts=3,
    )
    base.update(overrides)
    return ClusterConfig(**base)


class TestReplicaGroup:
    def test_fails_over_from_a_dead_primary(self):
        live = _FakeShardServer(lambda request: {"ok": True, "server": "r1"})
        try:
            config = _fast_config()
            dead = ReplicaClient("r0", "127.0.0.1", _dead_port(), config=config)
            alive = ReplicaClient("r1", "127.0.0.1", live.port, config=config)
            group = ReplicaGroup("shard-000", [dead, alive], config=config)
            reply = group.request({"op": "ping"})
            assert reply["server"] == "r1"
            # The hedge answered after the primary failed: a failover.
            assert group.counters["failovers"] >= 1
            assert dead.health.state != "live"
            assert alive.health.is_live
        finally:
            live.close()

    def test_hedges_to_a_second_replica_when_the_primary_is_slow(self):
        def slow_reply(request):
            time.sleep(0.5)
            return {"ok": True, "server": "r0"}

        slow = _FakeShardServer(slow_reply)
        fast = _FakeShardServer(lambda request: {"ok": True, "server": "r1"})
        try:
            config = _fast_config()
            clients = [
                ReplicaClient("r0", "127.0.0.1", slow.port, config=config),
                ReplicaClient("r1", "127.0.0.1", fast.port, config=config),
            ]
            group = ReplicaGroup("shard-000", clients, config=config)
            reply = group.request({"op": "ping"})
            assert reply["server"] == "r1"  # the hedge won
            assert group.counters["hedges"] >= 1
            assert group.counters["failovers"] >= 1
        finally:
            slow.close()
            fast.close()

    def test_catching_up_replicas_are_excluded_from_rotation(self):
        served = []

        def record(request):
            served.append("r1")
            return {"ok": True, "server": "r1"}

        stale = _FakeShardServer(lambda request: {"ok": True, "server": "r0"})
        fresh = _FakeShardServer(record)
        try:
            config = _fast_config()
            clients = [
                ReplicaClient("r0", "127.0.0.1", stale.port, config=config),
                ReplicaClient("r1", "127.0.0.1", fresh.port, config=config),
            ]
            clients[0].health.mark_catching_up()
            group = ReplicaGroup("shard-000", clients, config=config)
            for _ in range(4):
                assert group.request({"op": "ping"})["server"] == "r1"
            assert len(served) == 4  # every exchange went to the live replica
        finally:
            stale.close()
            fresh.close()

    def test_every_replica_dead_raises_shard_unavailable(self):
        config = _fast_config(shard_deadline=1.0, max_attempts=2)
        clients = [
            ReplicaClient("r0", "127.0.0.1", _dead_port(), config=config),
            ReplicaClient("r1", "127.0.0.1", _dead_port(), config=config),
        ]
        group = ReplicaGroup("shard-000", clients, config=config)
        with pytest.raises(ShardUnavailable, match="shard-000"):
            group.request({"op": "ping"})
        assert group.counters["retries"] >= 1

    def test_group_requires_at_least_one_replica(self):
        with pytest.raises(ValueError, match="needs >= 1 replica"):
            ReplicaGroup("shard-000", [])
