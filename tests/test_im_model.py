"""Tests for the individual mobility model (repro.mobility.im_model)."""

import random
import statistics

import pytest

from repro.mobility.im_model import Grid, IMModelParams, IndividualMobilityModel


class TestGrid:
    def test_num_cells(self):
        assert Grid(5).num_cells == 25

    def test_coordinates_roundtrip(self):
        grid = Grid(7)
        for cell in range(grid.num_cells):
            x, y = grid.coordinates(cell)
            assert grid.cell_at(x, y) == cell

    def test_coordinates_out_of_range(self):
        with pytest.raises(IndexError):
            Grid(3).coordinates(9)

    def test_cell_at_clamps_to_boundary(self):
        grid = Grid(4)
        assert grid.cell_at(-5, 0) == grid.cell_at(0, 0)
        assert grid.cell_at(99, 99) == grid.cell_at(3, 3)

    def test_distance(self):
        grid = Grid(5)
        assert grid.distance(0, 0) == 0.0
        assert grid.distance(grid.cell_at(0, 0), grid.cell_at(3, 4)) == pytest.approx(5.0)

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            Grid(0)


class TestParams:
    def test_defaults_match_paper(self):
        params = IMModelParams()
        assert (params.alpha, params.beta, params.gamma, params.zeta, params.rho) == (
            0.6,
            0.8,
            0.2,
            1.2,
            0.6,
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beta": 0.0},
            {"beta": 1.5},
            {"alpha": 0.0},
            {"alpha": 2.5},
            {"rho": 0.0},
            {"rho": 1.5},
            {"gamma": -0.1},
            {"zeta": -1.0},
            {"max_stay": 0},
            {"max_jump": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            IMModelParams(**kwargs)


class TestWalk:
    @pytest.fixture
    def grid(self):
        return Grid(20)

    def test_walk_covers_horizon_exactly(self, grid):
        model = IndividualMobilityModel(grid, IMModelParams(), random.Random(1))
        stays = model.walk(100)
        assert stays[0].start == 0
        assert stays[-1].end == 100
        for previous, current in zip(stays, stays[1:]):
            assert current.start == previous.end

    def test_stays_have_positive_duration(self, grid):
        model = IndividualMobilityModel(grid, IMModelParams(), random.Random(2))
        assert all(stay.duration >= 1 for stay in model.walk(50))

    def test_stays_within_grid(self, grid):
        model = IndividualMobilityModel(grid, IMModelParams(), random.Random(3))
        assert all(0 <= stay.cell < grid.num_cells for stay in model.walk(200))

    def test_deterministic_given_rng_seed(self, grid):
        walk_a = IndividualMobilityModel(grid, IMModelParams(), random.Random(7), home_cell=5).walk(80)
        walk_b = IndividualMobilityModel(grid, IMModelParams(), random.Random(7), home_cell=5).walk(80)
        assert walk_a == walk_b

    def test_home_cell_respected(self, grid):
        model = IndividualMobilityModel(grid, IMModelParams(), random.Random(4), home_cell=17)
        assert model.walk(30)[0].cell == 17

    def test_invalid_home_cell(self, grid):
        with pytest.raises(ValueError):
            IndividualMobilityModel(grid, IMModelParams(), random.Random(4), home_cell=10_000)

    def test_invalid_horizon(self, grid):
        model = IndividualMobilityModel(grid, IMModelParams(), random.Random(4))
        with pytest.raises(ValueError):
            model.walk(0)

    def test_preferential_return_concentrates_visits(self, grid):
        """With strong return (low rho, high gamma) visits concentrate on few cells."""
        sticky = IMModelParams(rho=0.1, gamma=0.9)
        roaming = IMModelParams(rho=1.0, gamma=0.0)
        sticky_cells = set()
        roaming_cells = set()
        for seed in range(5):
            sticky_cells.update(
                s.cell for s in IndividualMobilityModel(grid, sticky, random.Random(seed)).walk(300)
            )
            roaming_cells.update(
                s.cell for s in IndividualMobilityModel(grid, roaming, random.Random(seed)).walk(300)
            )
        assert len(sticky_cells) < len(roaming_cells)

    def test_alpha_controls_jump_locality(self, grid):
        """Larger alpha (steeper displacement law) keeps jumps short."""
        def mean_jump(alpha: float) -> float:
            params = IMModelParams(alpha=alpha, rho=1.0, gamma=0.0)
            distances = []
            for seed in range(5):
                model = IndividualMobilityModel(grid, params, random.Random(seed))
                stays = model.walk(300)
                distances.extend(
                    grid.distance(a.cell, b.cell) for a, b in zip(stays, stays[1:]) if a.cell != b.cell
                )
            return statistics.mean(distances) if distances else 0.0

        assert mean_jump(2.0) < mean_jump(0.3)

    def test_waiting_time_distribution_heavy_tailed(self, grid):
        """Short stays dominate but long stays occur (Equation 6.1)."""
        model = IndividualMobilityModel(grid, IMModelParams(max_stay=12), random.Random(11))
        durations = [stay.duration for stay in model.walk(2000)]
        short = sum(1 for d in durations if d <= 2)
        long = sum(1 for d in durations if d >= 6)
        assert short > long > 0

    def test_distinct_units_over_time_monotone(self, grid):
        model = IndividualMobilityModel(grid, IMModelParams(), random.Random(5))
        stays = model.walk(300)
        counts = [count for _time, count in model.distinct_units_over_time(stays)]
        assert counts == sorted(counts)
        assert counts[-1] >= 2

    def test_mean_squared_displacement_non_negative(self, grid):
        model = IndividualMobilityModel(grid, IMModelParams(), random.Random(6))
        stays = model.walk(200)
        values = [value for _time, value in model.mean_squared_displacement(stays)]
        assert all(value >= 0 for value in values)
        assert values[0] == 0.0
