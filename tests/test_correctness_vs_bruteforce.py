"""End-to-end correctness: the indexed search against the exhaustive oracle.

The strictly admissible ``per_level`` bound must reproduce the brute-force
answer exactly (same score multiset) on arbitrary random datasets; the
paper's ``lift`` bound must do so on overwhelming average (its theoretical
corner case -- associations existing only at coarse levels -- is quantified
in the bound-mode ablation, not here).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import HierarchicalADM, SpatialHierarchy, TraceDataset, TraceQueryEngine
from repro.baselines import BruteForceTopK
from repro.measures import DiceADM, JaccardADM


def _random_dataset(seed: int, num_entities: int, branching, horizon: int) -> TraceDataset:
    rng = random.Random(seed)
    hierarchy = SpatialHierarchy.regular(list(branching), prefix="r")
    dataset = TraceDataset(hierarchy, horizon=horizon)
    bases = hierarchy.base_units
    for index in range(num_entities):
        entity = f"e{index}"
        for _ in range(rng.randint(1, 12)):
            unit = rng.choice(bases)
            start = rng.randrange(horizon - 1)
            dataset.add_record(entity, unit, start, duration=rng.randint(1, 2))
    return dataset


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_entities=st.integers(min_value=5, max_value=25),
    k=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_per_level_bound_is_exact_on_random_data(seed, num_entities, k):
    dataset = _random_dataset(seed, num_entities, (2, 2, 3), horizon=24)
    engine = TraceQueryEngine(
        dataset, num_hashes=24, seed=seed % 7, bound_mode="per_level"
    ).build()
    oracle = BruteForceTopK(dataset, engine.measure)
    query = dataset.entities[seed % dataset.num_entities]
    indexed = engine.top_k(query, k=k)
    exact = oracle.search(query, k=k)
    assert [round(s, 9) for s in indexed.scores] == [round(s, 9) for s in exact.scores]


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_per_level_bound_exact_with_other_measures(seed, k):
    dataset = _random_dataset(seed, 15, (2, 3), horizon=20)
    for measure in (JaccardADM(num_levels=2), DiceADM(num_levels=2)):
        engine = TraceQueryEngine(
            dataset, measure=measure, num_hashes=16, seed=3, bound_mode="per_level"
        ).build()
        oracle = BruteForceTopK(dataset, measure)
        query = dataset.entities[seed % dataset.num_entities]
        indexed = engine.top_k(query, k=k)
        exact = oracle.search(query, k=k)
        assert [round(s, 9) for s in indexed.scores] == [round(s, 9) for s in exact.scores]


def test_lift_bound_high_recall_on_mobility_data(syn_dataset):
    """Average recall of the paper's bound vs the oracle on realistic data."""
    measure = HierarchicalADM(num_levels=syn_dataset.num_levels)
    engine = TraceQueryEngine(syn_dataset, measure=measure, num_hashes=128, seed=2).build()
    oracle = BruteForceTopK(syn_dataset, measure)
    recalls = []
    for query in syn_dataset.entities[::10]:
        expected = set(oracle.search(query, 10).entities)
        if not expected:
            continue
        found = set(engine.top_k(query, 10).entities)
        recalls.append(len(found & expected) / len(expected))
    assert recalls, "no query produced associates"
    assert sum(recalls) / len(recalls) >= 0.9


def test_lift_bound_exact_top1_on_mobility_data(syn_engine):
    """The single best associate is found exactly by the lift bound."""
    oracle = BruteForceTopK(syn_engine.dataset, syn_engine.measure)
    mismatches = 0
    total = 0
    for query in syn_engine.dataset.entities[::12]:
        exact = oracle.search(query, 1)
        if not exact.scores:
            continue
        total += 1
        indexed = syn_engine.top_k(query, 1)
        if not indexed.scores or abs(indexed.scores[0] - exact.scores[0]) > 1e-9:
            mismatches += 1
    assert total > 0
    assert mismatches <= max(1, total // 10)


def test_wifi_dataset_equivalence(wifi_dataset):
    measure = HierarchicalADM(num_levels=wifi_dataset.num_levels)
    engine = TraceQueryEngine(
        wifi_dataset, measure=measure, num_hashes=64, seed=5, bound_mode="per_level"
    ).build()
    oracle = BruteForceTopK(wifi_dataset, measure)
    for query in wifi_dataset.entities[::25]:
        indexed = engine.top_k(query, 5)
        exact = oracle.search(query, 5)
        assert [round(s, 9) for s in indexed.scores] == [round(s, 9) for s in exact.scores]


@pytest.mark.parametrize("k", [1, 3, 10])
def test_results_are_supersets_never_fabricated(syn_engine, k):
    """Every returned entity really has a positive degree with the query."""
    for query in syn_engine.dataset.entities[:10]:
        result = syn_engine.top_k(query, k=k)
        for entity, score in result:
            true_score = syn_engine.measure.score(
                syn_engine.dataset.cell_sequence(entity),
                syn_engine.dataset.cell_sequence(query),
            )
            assert score == pytest.approx(true_score)
            assert true_score > 0
