"""The incremental-maintenance paths versus from-scratch builds.

Section 4.2.3's update operations must leave the index *semantically*
equivalent to rebuilding from the current data: after ``remove_entity`` --
and after ``add_records`` re-introduces a removed entity -- every query
returns exactly the results a fresh build over the same dataset would
(routing values may stay looser after removals, which affects pruning work
but never results).
"""

import pytest

from repro import PresenceInstance, TraceDataset, TraceQueryEngine


def rebuild_from(dataset: TraceDataset, **knobs) -> TraceQueryEngine:
    """A from-scratch engine over an independent copy of ``dataset``."""
    copy = TraceDataset(dataset.hierarchy, horizon=dataset.explicit_horizon)
    for entity in dataset.entities:
        copy.restore_trace(entity, dataset.trace(entity))
    return TraceQueryEngine(copy, **knobs).build()


KNOBS = dict(num_hashes=64, seed=11)


@pytest.fixture
def incremental(syn_dataset):
    """A live engine over a private copy of the synthetic dataset."""
    copy = TraceDataset(syn_dataset.hierarchy, horizon=syn_dataset.explicit_horizon)
    for entity in syn_dataset.entities:
        copy.restore_trace(entity, syn_dataset.trace(entity))
    return TraceQueryEngine(copy, **KNOBS).build()


def assert_matches_scratch(incremental: TraceQueryEngine, queries, k=10):
    scratch = rebuild_from(incremental.dataset, **KNOBS)
    assert incremental.tree.num_entities == scratch.tree.num_entities
    for query in queries:
        live = incremental.top_k(query, k=k)
        fresh = scratch.top_k(query, k=k)
        assert live.items == fresh.items, f"divergence for query {query!r}"


class TestRemoveThenQuery:
    def test_single_removal(self, incremental):
        entities = list(incremental.dataset.entities)
        victim = entities[5]
        incremental.remove_entity(victim)
        assert victim not in incremental.dataset
        assert victim not in incremental.tree
        assert_matches_scratch(incremental, entities[:4])

    def test_removed_entity_never_appears_in_results(self, incremental):
        entities = list(incremental.dataset.entities)
        query = entities[0]
        baseline = incremental.top_k(query, k=len(entities))
        if not baseline.entities:
            pytest.skip("query has no associates in this workload")
        victim = baseline.entities[0]
        incremental.remove_entity(victim)
        after = incremental.top_k(query, k=len(entities))
        assert victim not in after.entities

    def test_many_removals(self, incremental):
        entities = list(incremental.dataset.entities)
        for victim in entities[10:20]:
            incremental.remove_entity(victim)
        assert_matches_scratch(incremental, entities[:4])


class TestReAddAfterRemoval:
    def test_add_records_reintroduces_removed_entity(self, incremental):
        entities = list(incremental.dataset.entities)
        victim, query = entities[5], entities[0]
        original_trace = incremental.dataset.trace(victim)
        incremental.remove_entity(victim)
        affected = incremental.add_records(list(original_trace))
        assert affected == [victim]
        assert victim in incremental.tree
        assert_matches_scratch(incremental, [query, victim])

    def test_reintroduction_with_a_different_trace(self, incremental):
        entities = list(incremental.dataset.entities)
        victim, query = entities[7], entities[0]
        base_units = incremental.dataset.hierarchy.base_units
        incremental.remove_entity(victim)
        new_trace = [
            PresenceInstance(victim, base_units[0], 0, 3),
            PresenceInstance(victim, base_units[3], 8, 10),
        ]
        incremental.add_records(new_trace)
        assert incremental.dataset.trace(victim) == tuple(new_trace)
        assert_matches_scratch(incremental, [query, victim])

    def test_interleaved_updates_and_queries(self, incremental):
        """A remove/add/extend mix, queried at every step, matches scratch."""
        entities = list(incremental.dataset.entities)
        base_units = incremental.dataset.hierarchy.base_units
        query = entities[0]

        incremental.remove_entity(entities[3])
        assert_matches_scratch(incremental, [query])

        incremental.add_records([PresenceInstance("newcomer", base_units[1], 4, 7)])
        assert_matches_scratch(incremental, [query, "newcomer"])

        incremental.remove_entity("newcomer")
        incremental.add_records(
            [
                PresenceInstance("newcomer", base_units[2], 1, 2),
                PresenceInstance(entities[1], base_units[2], 1, 2),
            ]
        )
        assert_matches_scratch(incremental, [query, "newcomer", entities[1]])


class TestAddRecordsDedup:
    def test_affected_entities_first_seen_order(self, small_engine, small_hierarchy):
        base = small_hierarchy.base_units
        affected = small_engine.add_records(
            [
                PresenceInstance("y", base[0], 0, 1),
                PresenceInstance("x", base[0], 1, 2),
                PresenceInstance("y", base[1], 2, 3),
                PresenceInstance("x", base[1], 3, 4),
                PresenceInstance("y", base[2], 4, 5),
            ]
        )
        assert affected == ["y", "x"]

    def test_large_single_entity_batch(self, small_engine, small_hierarchy):
        """A batch of many records for one entity dedups to one re-signing."""
        base = small_hierarchy.base_units
        batch = [
            PresenceInstance("bulk", base[i % len(base)], t, t + 1)
            for i, t in enumerate(range(0, 40))
        ]
        affected = small_engine.add_records(batch)
        assert affected == ["bulk"]
        assert len(small_engine.dataset.trace("bulk")) == 40


class TestFuzzedUpdateInterleavings:
    """Random remove/re-add/query interleavings stay scratch-equivalent.

    Seeds route through the shared ``seeded_rng`` plumbing: failures print
    the effective seed and replay under ``REPRO_TEST_SEED``.
    """

    @pytest.mark.parametrize("fuzz_seed", [101, 211])
    def test_random_remove_re_add_interleavings(self, incremental, fuzz_seed, seeded_rng):
        rng = seeded_rng(fuzz_seed)
        base_units = incremental.dataset.hierarchy.base_units
        removed = {}
        for round_index in range(8):
            live = list(incremental.dataset.entities)
            action = rng.random()
            if action < 0.5 and len(live) > 10:
                victim = rng.choice(live)
                removed[victim] = incremental.dataset.trace(victim)
                incremental.remove_entity(victim)
            elif removed:
                entity, trace = removed.popitem()
                keep = [p for p in trace if rng.random() < 0.7]
                fresh = [
                    PresenceInstance(
                        entity, rng.choice(base_units), start, start + rng.randrange(1, 3)
                    )
                    for start in rng.sample(range(90), rng.randrange(1, 4))
                ]
                incremental.add_records(keep + fresh)
            if round_index % 3 == 2:
                queries = rng.sample(list(incremental.dataset.entities), 3)
                assert_matches_scratch(incremental, queries, k=8)
        assert_matches_scratch(
            incremental, rng.sample(list(incremental.dataset.entities), 4), k=10
        )
