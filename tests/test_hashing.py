"""Tests for the hierarchical MinHash family (repro.core.hashing)."""

import numpy as np
import pytest

from repro.core.hashing import HierarchicalHashFamily
from repro.traces.events import STCell


@pytest.fixture
def family(small_hierarchy):
    return HierarchicalHashFamily(small_hierarchy, horizon=48, num_hashes=16, seed=3)


class TestConstruction:
    def test_hash_range_is_cell_universe(self, family, small_hierarchy):
        assert family.hash_range == small_hierarchy.num_base_units * 48

    def test_invalid_parameters(self, small_hierarchy):
        with pytest.raises(ValueError):
            HierarchicalHashFamily(small_hierarchy, horizon=0, num_hashes=4)
        with pytest.raises(ValueError):
            HierarchicalHashFamily(small_hierarchy, horizon=10, num_hashes=0)

    def test_universe_too_large_rejected(self, small_hierarchy):
        with pytest.raises(ValueError, match="exceeds"):
            HierarchicalHashFamily(small_hierarchy, horizon=2**31, num_hashes=4)

    def test_same_seed_same_hashes(self, small_hierarchy):
        cell = STCell(5, small_hierarchy.base_units[0])
        family_a = HierarchicalHashFamily(small_hierarchy, 48, 8, seed=7)
        family_b = HierarchicalHashFamily(small_hierarchy, 48, 8, seed=7)
        assert np.array_equal(family_a.hash_cell(cell), family_b.hash_cell(cell))

    def test_different_seed_different_hashes(self, small_hierarchy):
        cell = STCell(5, small_hierarchy.base_units[0])
        family_a = HierarchicalHashFamily(small_hierarchy, 48, 8, seed=7)
        family_b = HierarchicalHashFamily(small_hierarchy, 48, 8, seed=8)
        assert not np.array_equal(family_a.hash_cell(cell), family_b.hash_cell(cell))


class TestEncoding:
    def test_encode_base_cell_unique(self, family, small_hierarchy):
        codes = {
            family.encode_base_cell(time, unit)
            for time in range(5)
            for unit in small_hierarchy.base_units
        }
        assert len(codes) == 5 * small_hierarchy.num_base_units

    def test_encode_unknown_unit_raises(self, family):
        with pytest.raises(KeyError):
            family.encode_base_cell(0, "nope")


class TestHashValues:
    def test_values_within_range(self, family, small_hierarchy):
        for unit in small_hierarchy.base_units:
            values = family.hash_cell(STCell(3, unit))
            assert values.shape == (16,)
            assert (values >= 0).all() and (values < family.hash_range).all()

    def test_deterministic_and_cached(self, family, small_hierarchy):
        cell = STCell(2, small_hierarchy.base_units[1])
        first = family.hash_cell(cell)
        second = family.hash_cell(cell)
        assert first is second  # cache returns the same array

    def test_parent_constraint(self, family, small_hierarchy):
        """h(t, parent) == min over children of h(t, child) (Section 4.2.1)."""
        for parent in small_hierarchy.units_at_level(2):
            children = small_hierarchy.children_of(parent)
            child_hashes = np.stack(
                [family.hash_cell(STCell(7, child)) for child in children]
            )
            parent_hash = family.hash_cell(STCell(7, parent))
            assert np.array_equal(parent_hash, child_hashes.min(axis=0))

    def test_parent_constraint_recursive_to_root(self, family, small_hierarchy):
        root = small_hierarchy.units_at_level(1)[0]
        descendants = small_hierarchy.base_descendants(root)
        descendant_hashes = np.stack(
            [family.hash_cell(STCell(11, unit)) for unit in descendants]
        )
        assert np.array_equal(
            family.hash_cell(STCell(11, root)), descendant_hashes.min(axis=0)
        )

    def test_parent_hash_never_larger_than_child(self, family, small_hierarchy):
        for base in small_hierarchy.base_units:
            child_values = family.hash_cell(STCell(4, base))
            for level in range(1, small_hierarchy.num_levels):
                ancestor = small_hierarchy.ancestor_at_level(base, level)
                ancestor_values = family.hash_cell(STCell(4, ancestor))
                assert (ancestor_values <= child_values).all()

    def test_hash_value_scalar_accessor(self, family, small_hierarchy):
        cell = STCell(0, small_hierarchy.base_units[0])
        vector = family.hash_cell(cell)
        assert family.hash_value(3, cell) == int(vector[3])

    def test_hash_value_out_of_range_function(self, family, small_hierarchy):
        with pytest.raises(IndexError):
            family.hash_value(99, STCell(0, small_hierarchy.base_units[0]))

    def test_hash_matrix_shape_and_order(self, family, small_hierarchy):
        cells = [STCell(t, small_hierarchy.base_units[0]) for t in range(4)]
        matrix = family.hash_matrix(cells)
        assert matrix.shape == (4, 16)
        assert np.array_equal(matrix[2], family.hash_cell(cells[2]))

    def test_hash_matrix_empty(self, family):
        assert family.hash_matrix([]).shape == (0, 16)

    def test_distribution_roughly_uniform(self, small_hierarchy):
        """Base-cell hashes should cover the range without obvious bias."""
        family = HierarchicalHashFamily(small_hierarchy, horizon=200, num_hashes=4, seed=1)
        values = [
            int(family.hash_cell(STCell(time, unit))[0])
            for time in range(0, 200, 5)
            for unit in small_hierarchy.base_units
        ]
        mean = sum(values) / len(values)
        assert 0.3 * family.hash_range < mean < 0.7 * family.hash_range

    def test_cache_size_and_clear(self, family, small_hierarchy):
        family.hash_cell(STCell(0, small_hierarchy.base_units[0]))
        family.hash_cell(STCell(0, small_hierarchy.base_units[1]))
        assert family.cache_size() == 2
        family.clear_cache()
        assert family.cache_size() == 0
