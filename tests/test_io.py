"""Tests for the trace file loaders and writers (repro.traces.io)."""

import pytest

from repro.traces.io import (
    load_hierarchy_json,
    load_traces_csv,
    load_traces_jsonl,
    write_hierarchy_json,
    write_traces_csv,
    write_traces_jsonl,
)


def _datasets_equal(left, right) -> bool:
    if set(left.entities) != set(right.entities):
        return False
    for entity in left.entities:
        if sorted(left.trace(entity)) != sorted(right.trace(entity)):
            return False
    return True


class TestCSV:
    def test_roundtrip(self, small_dataset, small_hierarchy, tmp_path):
        path = tmp_path / "traces.csv"
        written = write_traces_csv(small_dataset, path)
        assert written == small_dataset.num_presences
        loaded = load_traces_csv(path, small_hierarchy)
        assert _datasets_equal(small_dataset, loaded)

    def test_loader_respects_explicit_horizon(self, small_dataset, small_hierarchy, tmp_path):
        path = tmp_path / "traces.csv"
        write_traces_csv(small_dataset, path)
        loaded = load_traces_csv(path, small_hierarchy, horizon=500)
        assert loaded.horizon == 500

    def test_missing_columns_rejected(self, small_hierarchy, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("entity,unit\nx,y\n")
        with pytest.raises(ValueError, match="missing columns"):
            load_traces_csv(path, small_hierarchy)

    def test_malformed_row_rejected(self, small_hierarchy, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("entity,unit,start,end\na,h3_0_0_0,notanumber,2\n")
        with pytest.raises(ValueError, match="line 2"):
            load_traces_csv(path, small_hierarchy)

    def test_unknown_unit_rejected(self, small_hierarchy, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("entity,unit,start,end\na,mystery,0,2\n")
        with pytest.raises(KeyError):
            load_traces_csv(path, small_hierarchy)


class TestJSONL:
    def test_roundtrip(self, small_dataset, small_hierarchy, tmp_path):
        path = tmp_path / "traces.jsonl"
        written = write_traces_jsonl(small_dataset, path)
        assert written == small_dataset.num_presences
        loaded = load_traces_jsonl(path, small_hierarchy)
        assert _datasets_equal(small_dataset, loaded)

    def test_blank_lines_skipped(self, small_hierarchy, tmp_path):
        path = tmp_path / "traces.jsonl"
        path.write_text(
            '{"entity": "a", "unit": "h3_0_0_0", "start": 0, "end": 2}\n\n'
        )
        loaded = load_traces_jsonl(path, small_hierarchy)
        assert loaded.num_presences == 1

    def test_malformed_json_rejected(self, small_hierarchy, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="line 1"):
            load_traces_jsonl(path, small_hierarchy)

    def test_missing_field_rejected(self, small_hierarchy, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"entity": "a", "unit": "h3_0_0_0", "start": 0}\n')
        with pytest.raises(ValueError):
            load_traces_jsonl(path, small_hierarchy)


class TestHierarchyJSON:
    def test_roundtrip(self, small_hierarchy, tmp_path):
        path = tmp_path / "hierarchy.json"
        write_hierarchy_json(small_hierarchy, path)
        loaded = load_hierarchy_json(path)
        assert loaded.num_levels == small_hierarchy.num_levels
        assert set(loaded.base_units) == set(small_hierarchy.base_units)
        for unit in small_hierarchy.base_units:
            assert loaded.parent_of(unit) == small_hierarchy.parent_of(unit)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="object"):
            load_hierarchy_json(path)

    def test_full_dataset_roundtrip_through_files(self, small_dataset, tmp_path):
        hierarchy_path = tmp_path / "hierarchy.json"
        traces_path = tmp_path / "traces.csv"
        write_hierarchy_json(small_dataset.hierarchy, hierarchy_path)
        write_traces_csv(small_dataset, traces_path)
        hierarchy = load_hierarchy_json(hierarchy_path)
        dataset = load_traces_csv(traces_path, hierarchy)
        assert dataset.num_entities == small_dataset.num_entities
        assert dataset.num_presences == small_dataset.num_presences
