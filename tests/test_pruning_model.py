"""Tests for the analytic pruning-effectiveness model (repro.analysis.pruning_model)."""

import numpy as np
import pytest

from repro.analysis.pruning_model import PruningModel, PruningModelParams


def make_params(**overrides):
    defaults = dict(
        universe_size=10_000,
        cells_per_entity=20,
        num_hashes=256,
        min_shared_cells=6,
        num_ranges=64,
    )
    defaults.update(overrides)
    return PruningModelParams(**defaults)


class TestParams:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"universe_size": 0},
            {"cells_per_entity": 0},
            {"num_hashes": 0},
            {"min_shared_cells": -1},
            {"num_ranges": 1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            make_params(**kwargs)

    def test_query_cells_defaults_to_entity_cells(self):
        assert make_params().effective_query_cells == 20
        assert make_params(query_cells=33).effective_query_cells == 33


class TestDistributions:
    def test_signature_cdf_monotone_and_bounded(self):
        model = PruningModel(make_params())
        thresholds = np.linspace(0, 9_999, 50)
        cdf = model.signature_value_cdf(thresholds)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[0] >= 0.0 and cdf[-1] == pytest.approx(1.0)

    def test_routing_cdf_dominated_by_signature_cdf(self):
        """The max of n_h coordinates is stochastically larger than one coordinate."""
        model = PruningModel(make_params())
        thresholds = np.linspace(0, 9_999, 50)
        assert np.all(model.routing_value_cdf(thresholds) <= model.signature_value_cdf(thresholds) + 1e-12)

    def test_routing_distribution_sums_to_one(self):
        model = PruningModel(make_params())
        assert model.routing_value_distribution().sum() == pytest.approx(1.0)

    def test_more_hashes_shift_routing_values_up(self):
        few = PruningModel(make_params(num_hashes=32))
        many = PruningModel(make_params(num_hashes=2048))
        thresholds = np.array([2_000.0])
        # P(SIG <= x) shrinks when the maximum is taken over more coordinates.
        assert many.routing_value_cdf(thresholds)[0] <= few.routing_value_cdf(thresholds)[0]

    def test_survival_probability_decreasing_in_threshold(self):
        model = PruningModel(make_params())
        uppers = np.linspace(0, 9_999, 20)
        survival = model.survival_probability(uppers)
        assert np.all(np.diff(survival) <= 1e-12)
        assert 0.0 <= survival[-1] <= survival[0] <= 1.0


class TestPredictions:
    def test_checked_fraction_in_unit_interval(self):
        model = PruningModel(make_params())
        value = model.expected_checked_fraction()
        assert 0.0 <= value <= 1.0
        assert model.expected_pruning_effectiveness() == pytest.approx(1.0 - value)

    def test_pe_increases_with_hash_functions(self):
        """The Figure 7.3 trend: more hash functions, more pruning."""
        values = [
            PruningModel(make_params(num_hashes=nh)).expected_pruning_effectiveness()
            for nh in (16, 64, 256, 1024)
        ]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_pe_decreases_with_entity_activity(self):
        """Heavier entities (more cells) have smaller signatures and prune less."""
        light = PruningModel(make_params(cells_per_entity=5)).expected_pruning_effectiveness()
        heavy = PruningModel(make_params(cells_per_entity=200)).expected_pruning_effectiveness()
        assert light > heavy

    def test_pe_decreases_with_required_overlap(self):
        """A larger n_c (stronger k-th associate) makes nodes easier to discard."""
        weak = PruningModel(make_params(min_shared_cells=1)).expected_pruning_effectiveness()
        strong = PruningModel(make_params(min_shared_cells=15)).expected_pruning_effectiveness()
        assert strong >= weak

    def test_min_shared_larger_than_query_clamped(self):
        model = PruningModel(make_params(min_shared_cells=10_000))
        assert 0.0 <= model.expected_checked_fraction() <= 1.0

    def test_zero_min_shared_means_nothing_discardable(self):
        model = PruningModel(make_params(min_shared_cells=0))
        assert model.expected_checked_fraction() == pytest.approx(1.0)
