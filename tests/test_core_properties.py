"""Property-based tests of the paper's structural theorems on random datasets.

Theorem 1 (level monotonicity of signatures), Theorem 2 (pruned cells are
truly absent), Theorem 3 (pruned sets grow along root-to-leaf paths) and the
Theorem 4 bound admissibility are exercised over randomly generated
hierarchies, traces and hash seeds.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.hashing import HierarchicalHashFamily
from repro.core.minsigtree import MinSigTree
from repro.core.pruning import PruningState, QueryHashes, upper_bound
from repro.core.signatures import SignatureComputer
from repro.measures import HierarchicalADM
from repro.traces.dataset import TraceDataset
from repro.traces.spatial import SpatialHierarchy


@st.composite
def random_environment(draw):
    """A random hierarchy + dataset + hash family + signatures."""
    branching = draw(
        st.lists(st.integers(min_value=2, max_value=3), min_size=2, max_size=3)
    )
    num_entities = draw(st.integers(min_value=3, max_value=12))
    horizon = draw(st.integers(min_value=6, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=1_000))
    num_hashes = draw(st.sampled_from([8, 16, 32]))

    hierarchy = SpatialHierarchy.regular(branching, prefix="p")
    dataset = TraceDataset(hierarchy, horizon=horizon)
    rng = random.Random(seed)
    bases = hierarchy.base_units
    for index in range(num_entities):
        entity = f"e{index}"
        for _ in range(rng.randint(1, 8)):
            unit = rng.choice(bases)
            start = rng.randrange(horizon - 1)
            dataset.add_record(entity, unit, start, duration=rng.randint(1, 2))
    family = HierarchicalHashFamily(hierarchy, horizon, num_hashes, seed=seed)
    computer = SignatureComputer(family)
    signatures = computer.signatures_for_dataset(dataset)
    return dataset, family, signatures


SETTINGS = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@given(random_environment())
@SETTINGS
def test_theorem1_signature_levels_monotone(environment):
    _dataset, _family, signatures = environment
    for matrix in signatures.values():
        for level in range(matrix.shape[0] - 1):
            assert (matrix[level] <= matrix[level + 1]).all()


@given(random_environment())
@SETTINGS
def test_theorem2_group_signatures_witness_absence(environment):
    dataset, family, signatures = environment
    tree = MinSigTree.build(signatures, dataset.num_levels, family.num_hashes)
    query_entity = dataset.entities[0]
    query = QueryHashes.from_sequence(dataset.cell_sequence(query_entity), family)
    for entity in dataset.entities:
        state = PruningState.initial(query)
        for node in tree.path_to_leaf(entity):
            state = state.refine(node, query)
        candidate = dataset.cell_sequence(entity)
        for level_index, mask in enumerate(state.masks):
            for cell, pruned in zip(query.cells[level_index], mask):
                if pruned:
                    assert cell not in candidate.levels[level_index]


@given(random_environment())
@SETTINGS
def test_theorem3_pruned_sets_grow_along_paths(environment):
    dataset, family, signatures = environment
    tree = MinSigTree.build(signatures, dataset.num_levels, family.num_hashes)
    query = QueryHashes.from_sequence(dataset.cell_sequence(dataset.entities[-1]), family)
    for entity in dataset.entities:
        state = PruningState.initial(query)
        previous = state.pruned_counts()
        for node in tree.path_to_leaf(entity):
            state = state.refine(node, query)
            current = state.pruned_counts()
            assert all(now >= before for now, before in zip(current, previous))
            previous = current


@given(random_environment())
@SETTINGS
def test_theorem4_per_level_bound_admissible(environment):
    dataset, family, signatures = environment
    tree = MinSigTree.build(signatures, dataset.num_levels, family.num_hashes)
    measure = HierarchicalADM(num_levels=dataset.num_levels)
    query_entity = dataset.entities[0]
    query_sequence = dataset.cell_sequence(query_entity)
    query = QueryHashes.from_sequence(query_sequence, family)
    for entity in dataset.entities:
        if entity == query_entity:
            continue
        state = PruningState.initial(query)
        for node in tree.path_to_leaf(entity):
            state = state.refine(node, query)
        bound = upper_bound(state, query, measure, mode="per_level")
        true_degree = measure.score(dataset.cell_sequence(entity), query_sequence)
        assert bound >= true_degree - 1e-9


@given(random_environment())
@SETTINGS
def test_base_level_restriction_of_lift_bound_is_sound(environment):
    """The lift bound's base level never under-counts shared base cells."""
    dataset, family, signatures = environment
    tree = MinSigTree.build(signatures, dataset.num_levels, family.num_hashes)
    query_entity = dataset.entities[0]
    query_sequence = dataset.cell_sequence(query_entity)
    query = QueryHashes.from_sequence(query_sequence, family)
    for entity in dataset.entities:
        if entity == query_entity:
            continue
        state = PruningState.initial(query)
        for node in tree.path_to_leaf(entity):
            state = state.refine(node, query)
        surviving_base = state.lifted_surviving_counts(query)[-1]
        shared_base = len(
            dataset.cell_sequence(entity).base_cells & query_sequence.base_cells
        )
        assert surviving_base >= shared_base


@given(random_environment())
@SETTINGS
def test_incremental_build_equals_bulk_build(environment):
    """Inserting entities one by one gives the same leaves as a bulk build."""
    dataset, family, signatures = environment
    bulk = MinSigTree.build(signatures, dataset.num_levels, family.num_hashes)
    incremental = MinSigTree(dataset.num_levels, family.num_hashes)
    for entity, matrix in signatures.items():
        incremental.insert(entity, matrix)
    bulk_leaves = {tuple(sorted(leaf.entities)) for leaf in bulk.leaves()}
    incremental_leaves = {tuple(sorted(leaf.entities)) for leaf in incremental.leaves()}
    assert bulk_leaves == incremental_leaves


@given(random_environment())
@SETTINGS
def test_remove_then_reinsert_restores_placement(environment):
    dataset, family, signatures = environment
    tree = MinSigTree.build(signatures, dataset.num_levels, family.num_hashes)
    entity = dataset.entities[0]
    original_leafmates = sorted(tree.leaf_of(entity).entities)
    tree.remove(entity)
    tree.insert(entity, signatures[entity])
    assert sorted(tree.leaf_of(entity).entities) == original_leafmates
