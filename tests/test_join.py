"""Tests for batch queries and similarity joins (repro.core.join)."""

import pytest

from repro.baselines import BruteForceTopK
from repro.core.join import association_graph, mutual_top_k_pairs, top_k_join


class TestTopKJoin:
    def test_one_result_per_probe(self, small_engine):
        join = top_k_join(small_engine.top_k, ["a", "d"], k=2)
        assert join.probe_entities == ["a", "d"]
        assert join.k == 2
        assert len(join) == 2

    def test_duplicates_collapsed(self, small_engine):
        join = top_k_join(small_engine.top_k, ["a", "a", "d"], k=2)
        assert join.probe_entities == ["a", "d"]

    def test_results_match_single_queries(self, small_engine):
        join = top_k_join(small_engine.top_k, ["a"], k=3)
        single = small_engine.top_k("a", k=3)
        assert join.results["a"].items == single.items

    def test_total_entities_scored(self, small_engine):
        join = top_k_join(small_engine.top_k, ["a", "d"], k=2)
        assert join.total_entities_scored == sum(
            result.stats.entities_scored for result in join.results.values()
        )

    def test_pairs_threshold(self, small_engine):
        join = top_k_join(small_engine.top_k, ["a"], k=3)
        all_pairs = join.pairs()
        strong_pairs = join.pairs(min_degree=0.5)
        assert len(strong_pairs) <= len(all_pairs)
        assert all(degree >= 0.5 for _p, _e, degree in strong_pairs)

    def test_invalid_k(self, small_engine):
        with pytest.raises(ValueError):
            top_k_join(small_engine.top_k, ["a"], k=0)

    def test_works_with_brute_force_searcher(self, small_dataset, small_measure):
        oracle = BruteForceTopK(small_dataset, small_measure)
        join = top_k_join(oracle.search, ["a", "d"], k=2)
        assert join.results["a"].entities[0] == "b"


class TestMutualPairs:
    def test_mutual_pairs_found(self, small_engine):
        pairs = mutual_top_k_pairs(small_engine.top_k, list(small_engine.dataset.entities), k=2)
        pair_sets = {(left, right) for left, right, _degree in pairs}
        assert ("a", "b") in pair_sets
        assert ("d", "e") in pair_sets

    def test_pairs_sorted_by_strength(self, small_engine):
        pairs = mutual_top_k_pairs(small_engine.top_k, list(small_engine.dataset.entities), k=3)
        degrees = [degree for _l, _r, degree in pairs]
        assert degrees == sorted(degrees, reverse=True)

    def test_each_pair_reported_once(self, small_engine):
        pairs = mutual_top_k_pairs(small_engine.top_k, list(small_engine.dataset.entities), k=3)
        keys = [(left, right) for left, right, _d in pairs]
        assert len(keys) == len(set(keys))
        assert all(left < right for left, right in keys)

    def test_min_degree_filters(self, small_engine):
        entities = list(small_engine.dataset.entities)
        all_pairs = mutual_top_k_pairs(small_engine.top_k, entities, k=3)
        strong = mutual_top_k_pairs(small_engine.top_k, entities, k=3, min_degree=0.5)
        assert len(strong) <= len(all_pairs)

    def test_non_probed_entities_ignored(self, small_engine):
        pairs = mutual_top_k_pairs(small_engine.top_k, ["a"], k=3)
        assert pairs == []


class TestAssociationGraph:
    def test_graph_is_symmetric(self, small_engine):
        graph = association_graph(small_engine.top_k, list(small_engine.dataset.entities), k=3)
        for node, neighbours in graph.items():
            for neighbour, weight in neighbours.items():
                assert graph[neighbour][node] == weight

    def test_threshold_prunes_edges(self, small_engine):
        entities = list(small_engine.dataset.entities)
        dense = association_graph(small_engine.top_k, entities, k=3)
        sparse = association_graph(small_engine.top_k, entities, k=3, min_degree=0.9)
        dense_edges = sum(len(neighbours) for neighbours in dense.values())
        sparse_edges = sum(len(neighbours) for neighbours in sparse.values())
        assert sparse_edges <= dense_edges

    def test_graph_feeds_networkx(self, small_engine):
        networkx = pytest.importorskip("networkx")
        graph = association_graph(small_engine.top_k, list(small_engine.dataset.entities), k=3)
        g = networkx.Graph()
        for node, neighbours in graph.items():
            for neighbour, weight in neighbours.items():
                g.add_edge(node, neighbour, weight=weight)
        components = list(networkx.connected_components(g))
        assert any({"a", "b"} <= component for component in components)
        assert any({"d", "e"} <= component for component in components)


class TestApproximateTopK:
    def test_zero_slack_matches_exact(self, small_engine):
        exact = small_engine.top_k("a", k=3)
        approx = small_engine.top_k("a", k=3, approximation=0.0)
        assert exact.items == approx.items

    def test_slack_never_misses_by_more_than_epsilon(self, syn_engine):
        oracle = BruteForceTopK(syn_engine.dataset, syn_engine.measure)
        epsilon = 0.1
        for query in syn_engine.dataset.entities[:10]:
            exact = oracle.search(query, k=5)
            if not exact.scores:
                continue
            approx = syn_engine.top_k(query, k=5, approximation=epsilon)
            if not approx.scores:
                continue
            kth_exact = exact.scores[min(len(approx.scores), len(exact.scores)) - 1]
            assert approx.scores[-1] >= kth_exact - epsilon - 1e-9

    def test_slack_reduces_or_equals_work(self, syn_engine):
        query = syn_engine.dataset.entities[0]
        exact = syn_engine.top_k(query, k=10)
        approx = syn_engine.top_k(query, k=10, approximation=0.2)
        assert approx.stats.entities_scored <= exact.stats.entities_scored

    def test_negative_slack_rejected(self, small_engine):
        with pytest.raises(ValueError):
            small_engine.top_k("a", k=2, approximation=-0.1)
