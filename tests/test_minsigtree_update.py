"""Tests for incremental MinSigTree maintenance (Section 4.2.3)."""

import numpy as np
import pytest

from repro.core.hashing import HierarchicalHashFamily
from repro.core.minsigtree import MinSigTree
from repro.core.signatures import SignatureComputer
from repro.traces.events import PresenceInstance


@pytest.fixture
def environment(small_dataset):
    family = HierarchicalHashFamily(small_dataset.hierarchy, small_dataset.horizon, 16, seed=4)
    computer = SignatureComputer(family)
    signatures = computer.signatures_for_dataset(small_dataset)
    tree = MinSigTree.build(signatures, small_dataset.num_levels, 16)
    return small_dataset, computer, tree


class TestRemove:
    def test_remove_drops_entity(self, environment):
        _dataset, _computer, tree = environment
        tree.remove("c")
        assert "c" not in tree
        assert all("c" not in leaf.entities for leaf in tree.leaves())

    def test_remove_prunes_empty_branches(self, environment):
        dataset, _computer, tree = environment
        before = tree.num_nodes
        for entity in list(dataset.entities):
            tree.remove(entity)
        assert tree.num_entities == 0
        assert tree.num_nodes == 0
        assert before > 0

    def test_remove_unknown_raises(self, environment):
        _dataset, _computer, tree = environment
        with pytest.raises(KeyError):
            tree.remove("ghost")

    def test_remove_keeps_other_entities_findable(self, environment):
        _dataset, _computer, tree = environment
        tree.remove("a")
        assert "b" in tree
        assert tree.leaf_of("b") is not None


class TestUpdate:
    def test_update_moves_entity_to_new_leaf(self, environment):
        dataset, computer, tree = environment
        old_leaf = tree.leaf_of("c")
        # Give c a completely different trace (the other region of the grid).
        other_base = dataset.hierarchy.base_units[7]
        dataset.replace_trace("c", [PresenceInstance("c", other_base, t, t + 1) for t in range(0, 30, 2)])
        new_signature = computer.signature_matrix(dataset.cell_sequence("c"))
        tree.update("c", new_signature)
        assert np.array_equal(tree.signature_of("c"), new_signature)
        assert "c" in tree.leaf_of("c").entities
        assert tree.leaf_of("c") is not old_leaf or "c" in old_leaf.entities

    def test_update_of_new_entity_is_insert(self, environment):
        dataset, computer, tree = environment
        base = dataset.hierarchy.base_units[5]
        dataset.add_record("newcomer", base, 3, duration=2)
        matrix = computer.signature_matrix(dataset.cell_sequence("newcomer"))
        tree.update("newcomer", matrix)
        assert "newcomer" in tree
        assert tree.num_entities == dataset.num_entities

    def test_update_preserves_entity_count(self, environment):
        dataset, computer, tree = environment
        before = tree.num_entities
        matrix = computer.signature_matrix(dataset.cell_sequence("a"))
        tree.update("a", matrix)
        assert tree.num_entities == before

    def test_group_values_remain_lower_bounds_after_updates(self, environment):
        dataset, computer, tree = environment
        # Update everyone once; stored node values must remain <= member values.
        for entity in dataset.entities:
            tree.update(entity, computer.signature_matrix(dataset.cell_sequence(entity)))
        signatures = {e: tree.signature_of(e) for e in dataset.entities}
        for leaf in tree.leaves():
            node = leaf
            while node is not None and not node.is_root:
                members = _entities_under(node)
                for entity in members:
                    row = signatures[entity][node.level - 1]
                    assert node.routing_value <= int(row[node.routing_index])
                node = node.parent


class TestRebuild:
    def test_rebuild_tightens_after_removals(self, environment):
        dataset, _computer, tree = environment
        for entity in list(dataset.entities)[:3]:
            tree.remove(entity)
        before_nodes = tree.num_nodes
        tree.rebuild()
        assert tree.num_entities == dataset.num_entities - 3
        assert tree.num_nodes <= before_nodes

    def test_rebuild_keeps_membership(self, environment):
        dataset, _computer, tree = environment
        expected = set(dataset.entities)
        tree.rebuild()
        placed = {entity for leaf in tree.leaves() for entity in leaf.entities}
        assert placed == expected


def _entities_under(node):
    collected = []
    stack = [node]
    while stack:
        current = stack.pop()
        collected.extend(current.entities)
        stack.extend(current.children.values())
    return collected
