"""Tests for the WiFi-handshake workload generator (repro.mobility.wifi)."""

import statistics

import pytest

from repro.measures import HierarchicalADM
from repro.mobility.wifi import WiFiConfig, build_wifi_hierarchy, generate_wifi_dataset


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_devices": 0},
            {"num_hotspots": 0},
            {"horizon": 0},
            {"companion_fraction": 1.5},
            {"anchor_probability": -0.1},
        ],
    )
    def test_invalid_configuration(self, kwargs):
        with pytest.raises(ValueError):
            WiFiConfig(**kwargs)

    def test_with_params(self):
        config = WiFiConfig()
        assert config.with_params(num_devices=10).num_devices == 10


class TestHierarchy:
    def test_four_levels(self):
        hierarchy, hotspots = build_wifi_hierarchy(WiFiConfig(num_hotspots=48))
        assert hierarchy.num_levels == 4
        assert len(hotspots) == 48
        assert hierarchy.num_base_units == 48

    def test_hotspots_grouped_into_venues(self):
        config = WiFiConfig(num_hotspots=40, hotspots_per_venue=4)
        hierarchy, _hotspots = build_wifi_hierarchy(config)
        assert len(hierarchy.units_at_level(3)) == 10

    def test_single_city_root(self):
        hierarchy, _ = build_wifi_hierarchy(WiFiConfig(num_hotspots=20))
        assert hierarchy.units_at_level(1) == ("city",)


class TestGeneration:
    @pytest.fixture(scope="class")
    def dataset(self):
        dataset, _config = generate_wifi_dataset(
            num_devices=120, num_hotspots=60, horizon=24 * 5, mean_detections=25, seed=3
        )
        return dataset

    def test_device_count(self, dataset):
        assert dataset.num_entities == 120

    def test_presences_within_horizon(self, dataset):
        for entity in dataset.entities:
            for presence in dataset.trace(entity):
                assert 0 <= presence.start < presence.end <= dataset.horizon

    def test_heavy_tailed_detection_counts(self, dataset):
        counts = sorted(len(dataset.trace(entity)) for entity in dataset.entities)
        assert counts[-1] > 4 * statistics.median(counts)

    def test_reproducible(self):
        first, _ = generate_wifi_dataset(num_devices=40, num_hotspots=30, seed=11)
        second, _ = generate_wifi_dataset(num_devices=40, num_hotspots=30, seed=11)
        for entity in first.entities:
            assert first.trace(entity) == second.trace(entity)

    def test_companions_are_strongly_associated(self):
        dataset, _config = generate_wifi_dataset(
            num_devices=80,
            num_hotspots=40,
            companion_fraction=0.25,
            companion_copy_probability=0.9,
            seed=21,
        )
        measure = HierarchicalADM(num_levels=dataset.num_levels)
        companions = [entity for entity in dataset.entities if entity.startswith("device-companion")]
        assert companions
        scores = []
        for companion in companions[:10]:
            best = max(
                measure.score(dataset.cell_sequence(companion), dataset.cell_sequence(other))
                for other in dataset.entities
                if other != companion
            )
            scores.append(best)
        assert statistics.mean(scores) > 0.2

    def test_anchor_behaviour_concentrates_detections(self, dataset):
        """Most devices visit far fewer hotspots than they have detections."""
        ratios = []
        for entity in dataset.entities:
            trace = dataset.trace(entity)
            if len(trace) < 10:
                continue
            distinct_hotspots = len({presence.unit for presence in trace})
            ratios.append(distinct_hotspots / len(trace))
        assert ratios
        assert statistics.mean(ratios) < 0.8

    def test_overrides_through_kwargs(self):
        dataset, config = generate_wifi_dataset(num_devices=15, num_hotspots=20, seed=1)
        assert config.num_devices == 15
        assert dataset.hierarchy.num_base_units == 20
