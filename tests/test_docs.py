"""Documentation verification: doctests, runnable markdown examples, links.

Four contracts keep the docs from rotting:

1. every doctest in the public-API modules passes (and the key classes
   actually carry one);
2. every ``python`` code block in README.md and docs/*.md executes --
   blocks run top-to-bottom per file in one shared namespace, like a
   notebook, inside a temporary working directory;
3. every intra-repo markdown link resolves to an existing file;
4. every public class, function, and method of the serving-facing
   packages (``repro.server``, ``repro.service``, ``repro.streaming``)
   carries a docstring.

The CI docs job runs exactly this module.
"""

import doctest
import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Modules whose docstring examples are executed.  Modules without any
#: doctest pass trivially; the ones in MUST_HAVE_EXAMPLES are additionally
#: required to carry at least one runnable example.
DOCTEST_MODULES = [
    "repro.core.engine",
    "repro.core.hashing",
    "repro.core.minsigtree",
    "repro.core.query",
    "repro.core.signatures",
    "repro.obs.exposition",
    "repro.obs.trace",
    "repro.server.app",
    "repro.server.coalescer",
    "repro.server.metrics",
    "repro.server.protocol",
    "repro.service.cache",
    "repro.service.partition",
    "repro.service.sharded",
    "repro.storage.snapshot",
    "repro.streaming.ingestor",
    "repro.streaming.replay",
    "repro.streaming.window",
    "repro.traces.dataset",
    "repro.traces.events",
    "repro.traces.io",
]

MUST_HAVE_EXAMPLES = {
    "repro.core.engine",       # EngineConfig + TraceQueryEngine + save/load
    "repro.core.query",        # TopKSearcher
    "repro.obs.trace",         # Tracer + span trees
    "repro.server.app",        # TraceServer end-to-end (transport-free)
    "repro.server.coalescer",  # RequestCoalescer
    "repro.service.sharded",   # ShardedEngine
    "repro.streaming.ingestor",
    "repro.streaming.window",
}

#: Packages whose entire public surface must be docstring-covered: every
#: public module-level class and function, and every public method defined
#: on a public class (inherited members are the parent's responsibility).
DOCSTRING_COVERED_PACKAGES = [
    "repro.cluster", "repro.obs", "repro.scenarios", "repro.server", "repro.service",
    "repro.streaming",
]


def _docstring_covered_modules():
    modules = []
    for package_name in DOCSTRING_COVERED_PACKAGES:
        package = importlib.import_module(package_name)
        modules.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            if not info.name.startswith("_"):
                modules.append(f"{package_name}.{info.name}")
    return modules


class TestDocstringCoverage:
    @pytest.mark.parametrize("module_name", _docstring_covered_modules())
    def test_public_api_is_docstring_covered(self, module_name):
        module = importlib.import_module(module_name)
        missing = []
        if not (module.__doc__ or "").strip():
            missing.append(module_name)
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(member) or inspect.isfunction(member)):
                continue
            if getattr(member, "__module__", None) != module_name:
                continue  # re-exports are covered where they are defined
            if not (member.__doc__ or "").strip():
                missing.append(f"{module_name}.{name}")
            if inspect.isclass(member):
                for attr_name, attr in vars(member).items():
                    if attr_name.startswith("_"):
                        continue
                    if isinstance(attr, property):
                        target = attr.fget
                    elif isinstance(attr, (staticmethod, classmethod)):
                        target = attr.__func__
                    elif inspect.isfunction(attr):
                        target = attr
                    else:
                        continue  # data attributes, dataclass defaults, ...
                    if target is None or not (target.__doc__ or "").strip():
                        missing.append(f"{module_name}.{name}.{attr_name}")
        assert not missing, (
            "public API members without a docstring: " + ", ".join(sorted(missing))
        )

MARKDOWN_FILES = [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))

_CODE_BLOCK = re.compile(r"```(\w[\w-]*)?\n(.*?)```", re.DOTALL)
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


class TestDoctests:
    @pytest.mark.parametrize("module_name", DOCTEST_MODULES)
    def test_module_doctests_pass(self, module_name):
        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
        if module_name in MUST_HAVE_EXAMPLES:
            assert results.attempted > 0, (
                f"{module_name} is a documented public API and must carry at "
                "least one runnable docstring example"
            )


def python_blocks(path: Path):
    """Every fenced ``python`` block of a markdown file, in order."""
    text = path.read_text(encoding="utf-8")
    return [
        block
        for language, block in _CODE_BLOCK.findall(text)
        if language == "python"
    ]


class TestMarkdownExamples:
    @pytest.mark.parametrize(
        "path", MARKDOWN_FILES, ids=[p.relative_to(REPO_ROOT).as_posix() for p in MARKDOWN_FILES]
    )
    def test_python_blocks_execute(self, path, tmp_path, monkeypatch):
        blocks = python_blocks(path)
        if not blocks:
            pytest.skip(f"{path.name} has no python blocks")
        # Snapshot saves and the like land in a scratch directory.
        monkeypatch.chdir(tmp_path)
        namespace: dict = {}
        for number, block in enumerate(blocks, start=1):
            try:
                exec(compile(block, f"{path.name}#block{number}", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail(f"{path.name} python block #{number} failed: {exc!r}")

    def test_readme_carries_a_streaming_quickstart(self):
        blocks = python_blocks(REPO_ROOT / "README.md")
        assert any("EventIngestor" in block for block in blocks)


class TestMarkdownLinks:
    @pytest.mark.parametrize(
        "path", MARKDOWN_FILES, ids=[p.relative_to(REPO_ROOT).as_posix() for p in MARKDOWN_FILES]
    )
    def test_intra_repo_links_resolve(self, path):
        text = path.read_text(encoding="utf-8")
        broken = []
        for target in _MD_LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                broken.append(target)
        assert not broken, f"broken intra-repo links in {path.name}: {broken}"
