"""End-to-end chaos battery: real shard-server processes under faults.

This runs the same battery as ``repro cluster chaos --smoke`` (and the CI
chaos job): a 2-shard x 2-replica cluster serving interleaved queries and
ingest while replicas are SIGKILLed, slowed, dropped, and blacked out.
The gates are the robustness contract of the distributed tier:

- answers stay *item-exact* against a single-engine oracle whenever at
  least one replica per shard is live, and *byte-identical* to the
  in-process sharded engine's merged payloads;
- a whole-group blackout produces **marked** degraded answers (the
  ``degraded`` / ``missing_shards`` payload keys), never silently wrong
  ones;
- recovered replicas rejoin only after verified catch-up, and shutdown
  leaves no process needing SIGKILL.

One battery run spawns four subprocesses and takes a few seconds; the
per-layer behaviour is pinned cheaply in ``test_cluster.py``.
"""

from __future__ import annotations

from repro.cluster.battery import run_battery


def test_chaos_battery_smoke_passes():
    report = run_battery(smoke=True, seed=7, shards=2, replication=2)
    assert report["passed"], f"battery failures: {report['failures']}"
    assert report["failures"] == []
    # The battery must actually have exercised each gate, not vacuously
    # passed: exactness, byte identity, and degraded marking all fired.
    assert report["checks"]["exact_items"] > 0
    assert report["checks"]["byte_identical"] > 0
    assert report["checks"]["degraded_marked"] > 0
    # ... and actually injected faults (kills, wire chaos, a blackout).
    kinds = {fault["fault"] for fault in report["faults"]}
    assert "kill_one_per_group" in kinds
    assert "blackout_group" in kinds
    assert "restore_group" in kinds
    # Clean shutdown: every shard server left on SIGTERM.
    assert report["stubborn_processes"] == []
