"""The paper's worked examples, reproduced verbatim.

* Example 4.1.1 -- building the ST-cell set sequence over the L1..L6 hierarchy.
* Tables 4.1–4.3 -- the hash table, ST-cell set sequences and signature table
  for entities ``e_a``..``e_d`` (reproduced with a stub hash family that
  returns exactly the paper's hash values).
* Figure 4.1 -- the resulting MinSigTree (routing indexes, values and leaf
  membership).
* Example 5.2.1 -- the top-1 query for ``e_c`` under the Dice-based measure,
  which must return ``e_a``.
"""

import numpy as np
import pytest

from repro.core.minsigtree import MinSigTree
from repro.core.query import TopKSearcher
from repro.core.signatures import SignatureComputer
from repro.measures import ExampleDiceADM
from repro.traces.dataset import TraceDataset
from repro.traces.events import STCell

# Table 4.1: hash values of the level-2 (base) ST-cells.
PAPER_HASH_TABLE = {
    ("T1", "L1"): (2, 8),
    ("T2", "L1"): (8, 3),
    ("T1", "L2"): (5, 6),
    ("T2", "L2"): (1, 5),
    ("T1", "L3"): (4, 4),
    ("T2", "L3"): (6, 1),
    ("T1", "L4"): (7, 2),
    ("T2", "L4"): (3, 7),
}

# Table 4.2: base-level presences of the four entities (time label, unit).
PAPER_TRACES = {
    "ea": [("T1", "L2"), ("T2", "L1")],
    "eb": [("T1", "L1"), ("T2", "L2")],
    "ec": [("T1", "L3"), ("T2", "L1")],
    "ed": [("T1", "L4"), ("T2", "L4")],
}

TIME_OF = {"T1": 1, "T2": 2}


class PaperHashFamily:
    """A two-function hash family returning exactly the Table 4.1 values.

    Implements the same interface as
    :class:`repro.core.hashing.HierarchicalHashFamily`: coarse cells hash to
    the minimum over their base descendants, as required by the parent
    constraint.
    """

    def __init__(self, hierarchy):
        self.hierarchy = hierarchy
        self.num_hashes = 2
        self.hash_range = 10

    def hash_cell(self, cell: STCell) -> np.ndarray:
        unit = self.hierarchy.unit(cell.unit)
        time_label = f"T{cell.time}"
        if unit.is_base:
            return np.array(PAPER_HASH_TABLE[(time_label, cell.unit)], dtype=np.int64)
        descendants = self.hierarchy.base_descendants(cell.unit)
        values = np.stack(
            [np.array(PAPER_HASH_TABLE[(time_label, base)], dtype=np.int64) for base in descendants]
        )
        return values.min(axis=0)

    def hash_matrix(self, cells) -> np.ndarray:
        rows = [self.hash_cell(cell) for cell in cells]
        if not rows:
            return np.empty((0, self.num_hashes), dtype=np.int64)
        return np.stack(rows, axis=0)


@pytest.fixture
def paper_dataset(paper_hierarchy) -> TraceDataset:
    dataset = TraceDataset(paper_hierarchy, horizon=3)
    for entity, presences in PAPER_TRACES.items():
        for time_label, unit in presences:
            time = TIME_OF[time_label]
            dataset.add_record(entity, unit, time)
    return dataset


@pytest.fixture
def paper_family(paper_hierarchy) -> PaperHashFamily:
    return PaperHashFamily(paper_hierarchy)


@pytest.fixture
def paper_signatures(paper_dataset, paper_family):
    computer = SignatureComputer(paper_family)
    return computer.signatures_for_dataset(paper_dataset)


class TestExample411CellSequences:
    def test_base_level_sequence(self, paper_dataset):
        sequence = paper_dataset.cell_sequence("ea")
        assert sequence.at_level(2) == frozenset({STCell(1, "L2"), STCell(2, "L1")})

    def test_coarse_level_sequence_uses_parents(self, paper_dataset):
        sequence = paper_dataset.cell_sequence("ea")
        assert sequence.at_level(1) == frozenset({STCell(1, "L5"), STCell(2, "L5")})

    def test_ec_has_presence_under_both_regions(self, paper_dataset):
        sequence = paper_dataset.cell_sequence("ec")
        assert sequence.at_level(1) == frozenset({STCell(1, "L6"), STCell(2, "L5")})


class TestTable43Signatures:
    """The signature table of Table 4.3 (level-1 signature, level-2 signature).

    Note: the thesis prints ``sig^2_d = <3, 7>``, but applying its own
    definition (element-wise minimum over the hash values of ``T1L4 = (7, 2)``
    and ``T2L4 = (3, 7)``) gives ``<3, 2>``; the printed value appears to be a
    transcription error.  The expectations below follow the definition; every
    other entry matches the thesis exactly.
    """

    EXPECTED = {
        "ea": ([1, 3], [5, 3]),
        "eb": ([1, 3], [1, 5]),
        "ec": ([1, 2], [4, 3]),
        "ed": ([3, 1], [3, 2]),
    }

    @pytest.mark.parametrize("entity", ["ea", "eb", "ec", "ed"])
    def test_signature_matches_paper(self, paper_signatures, entity):
        expected_level1, expected_level2 = self.EXPECTED[entity]
        matrix = paper_signatures[entity]
        assert matrix[0].tolist() == expected_level1
        assert matrix[1].tolist() == expected_level2

    def test_theorem1_on_paper_signatures(self, paper_signatures):
        for matrix in paper_signatures.values():
            assert (matrix[0] <= matrix[1]).all()


class TestFigure41MinSigTree:
    @pytest.fixture
    def tree(self, paper_signatures):
        return MinSigTree.build(paper_signatures, num_levels=2, num_hashes=2)

    def test_level1_grouping(self, tree):
        children = tree.root.children
        assert set(children) == {0, 1}
        # N1: routing index 1 in the paper's 1-based numbering = position 0.
        assert children[0].routing_value == 3
        assert children[1].routing_value == 2

    def test_leaf_membership(self, tree):
        placements = {
            tuple(sorted(leaf.entities)): (leaf.routing_index, leaf.routing_value)
            for leaf in tree.leaves()
        }
        # Figure 4.1 draws e_d's leaf with routing index 2 and value 7, which
        # follows from the mis-printed sig^2_d (see TestTable43Signatures);
        # with the corrected signature <3, 2> the leaf routes on index 1
        # (0-based position 0) with value 3.  The other two leaves match the
        # figure exactly.
        assert placements[("ed",)] == (0, 3)       # N1* (corrected from N12 = 7)
        assert placements[("ea", "ec")] == (0, 4)  # N21
        assert placements[("eb",)] == (1, 5)       # N22

    def test_node_count_matches_figure(self, tree):
        # Figure 4.1 shows 2 level-1 nodes and 3 level-2 leaves.
        assert tree.depth_histogram() == {1: 2, 2: 3}


class TestExample521Query:
    def test_top1_for_ec_is_ea(self, paper_dataset, paper_family, paper_signatures):
        tree = MinSigTree.build(paper_signatures, num_levels=2, num_hashes=2)
        measure = ExampleDiceADM()
        searcher = TopKSearcher(tree, paper_dataset, measure, paper_family)
        result = searcher.search("ec", k=1)
        assert result.entities == ["ea"]

    def test_degree_of_ea_follows_the_measure_definition(self, paper_dataset):
        """deg(e_a, e_c) under the Example 5.2.1 measure.

        Both levels share exactly one of two cells, so each Dice term is
        ``1 / (2 + 2) = 0.25`` and the un-normalised degree is
        ``0.1 * 0.25 + 0.9 * 0.25 = 0.25``.  (The thesis prints 0.15, which
        does not follow from its own formula; the qualitative conclusion --
        e_a's degree exceeds the 0.1 upper bound of the remaining branches,
        so the search stops -- is unchanged.)
        """
        measure = ExampleDiceADM()
        from repro.measures.base import level_overlaps

        overlaps = level_overlaps(
            paper_dataset.cell_sequence("ea"), paper_dataset.cell_sequence("ec")
        )
        assert measure.raw_score_levels(overlaps) == pytest.approx(0.25)

    def test_search_prunes_at_least_one_entity(self, paper_dataset, paper_family, paper_signatures):
        tree = MinSigTree.build(paper_signatures, num_levels=2, num_hashes=2)
        searcher = TopKSearcher(tree, paper_dataset, ExampleDiceADM(), paper_family)
        result = searcher.search("ec", k=1)
        # The paper's walk-through only ever scores e_a; allow any outcome
        # that avoids scoring the full population.
        assert result.stats.entities_scored < paper_dataset.num_entities - 1


class TestSection23MinHashExample:
    """The Section 2.3 MinHash walk-through (sets S1..S4, h1 = x+1, h2 = 3x+1 mod 5)."""

    SETS = {"S1": {0, 3}, "S2": {2}, "S3": {1, 3, 4}, "S4": {0, 2, 3}}

    @staticmethod
    def _signature(values):
        h1 = min((x + 1) % 5 for x in values)
        h2 = min((3 * x + 1) % 5 for x in values)
        return [h1, h2]

    def test_signature_table(self):
        table = {name: self._signature(values) for name, values in self.SETS.items()}
        assert table == {"S1": [1, 0], "S2": [3, 2], "S3": [0, 0], "S4": [1, 0]}

    def test_estimated_similarity_of_s1_s4(self):
        sig1 = self._signature(self.SETS["S1"])
        sig4 = self._signature(self.SETS["S4"])
        estimated = sum(a == b for a, b in zip(sig1, sig4)) / 2
        true_jaccard = len(self.SETS["S1"] & self.SETS["S4"]) / len(self.SETS["S1"] | self.SETS["S4"])
        assert estimated == 1.0
        assert true_jaccard == pytest.approx(2 / 3)
