"""Tests for the trace dataset container (repro.traces.dataset)."""

import pytest

from repro.traces.dataset import TraceDataset
from repro.traces.events import PresenceInstance, STCell


class TestMutation:
    def test_add_record_creates_entity(self, small_hierarchy):
        dataset = TraceDataset(small_hierarchy)
        dataset.add_record("x", small_hierarchy.base_units[0], 0)
        assert "x" in dataset
        assert dataset.num_entities == 1

    def test_add_presence_unknown_unit(self, small_hierarchy):
        dataset = TraceDataset(small_hierarchy)
        with pytest.raises(KeyError):
            dataset.add_presence(PresenceInstance("x", "nowhere", 0, 1))

    def test_add_presence_non_base_unit_rejected(self, small_hierarchy):
        dataset = TraceDataset(small_hierarchy)
        coarse = small_hierarchy.units_at_level(1)[0]
        with pytest.raises(ValueError, match="base spatial unit"):
            dataset.add_presence(PresenceInstance("x", coarse, 0, 1))

    def test_extend(self, small_hierarchy):
        dataset = TraceDataset(small_hierarchy)
        base = small_hierarchy.base_units[0]
        dataset.extend([PresenceInstance("x", base, 0, 1), PresenceInstance("y", base, 1, 2)])
        assert dataset.num_entities == 2
        assert dataset.num_presences == 2

    def test_remove_entity(self, small_dataset):
        small_dataset.remove_entity("c")
        assert "c" not in small_dataset
        with pytest.raises(KeyError):
            small_dataset.trace("c")

    def test_remove_unknown_entity(self, small_dataset):
        with pytest.raises(KeyError):
            small_dataset.remove_entity("ghost")

    def test_replace_trace(self, small_dataset, small_hierarchy):
        base = small_hierarchy.base_units[3]
        small_dataset.replace_trace("c", [PresenceInstance("c", base, 0, 1)])
        assert len(small_dataset.trace("c")) == 1

    def test_replace_trace_rejects_wrong_entity(self, small_dataset, small_hierarchy):
        base = small_hierarchy.base_units[3]
        with pytest.raises(ValueError):
            small_dataset.replace_trace("c", [PresenceInstance("b", base, 0, 1)])

    def test_mutation_invalidates_sequence_cache(self, small_dataset, small_hierarchy):
        before = small_dataset.cell_sequence("a")
        small_dataset.add_record("a", small_hierarchy.base_units[7], 45)
        after = small_dataset.cell_sequence("a")
        assert len(after.base_cells) == len(before.base_cells) + 1


class TestIntrospection:
    def test_entities_in_insertion_order(self, small_dataset):
        assert small_dataset.entities[0] == "a"

    def test_len_and_iter(self, small_dataset):
        assert len(small_dataset) == small_dataset.num_entities
        assert set(iter(small_dataset)) == set(small_dataset.entities)

    def test_horizon_derived_from_data(self, small_hierarchy):
        dataset = TraceDataset(small_hierarchy)
        dataset.add_record("x", small_hierarchy.base_units[0], 10, duration=5)
        assert dataset.horizon == 15

    def test_explicit_horizon_wins(self, small_hierarchy):
        dataset = TraceDataset(small_hierarchy, horizon=100)
        dataset.add_record("x", small_hierarchy.base_units[0], 10)
        assert dataset.horizon == 100

    def test_num_st_cells(self, small_dataset):
        assert small_dataset.num_st_cells == 8 * small_dataset.horizon

    def test_trace_returns_tuple_copy(self, small_dataset):
        trace = small_dataset.trace("a")
        assert isinstance(trace, tuple)

    def test_unknown_trace_raises(self, small_dataset):
        with pytest.raises(KeyError):
            small_dataset.trace("ghost")

    def test_average_cells_per_entity_positive(self, small_dataset):
        assert small_dataset.average_cells_per_entity() > 0

    def test_average_cells_empty_dataset(self, small_hierarchy):
        assert TraceDataset(small_hierarchy).average_cells_per_entity() == 0.0

    def test_describe_contains_counts(self, small_dataset):
        text = small_dataset.describe()
        assert str(small_dataset.num_entities) in text


class TestCellSequences:
    def test_sequence_cached(self, small_dataset):
        assert small_dataset.cell_sequence("a") is small_dataset.cell_sequence("a")

    def test_sequence_levels_match_hierarchy(self, small_dataset):
        assert small_dataset.cell_sequence("a").num_levels == small_dataset.num_levels

    def test_base_cells_match_presence_hours(self, small_dataset):
        sequence = small_dataset.cell_sequence("b")
        total_hours = sum(p.duration for p in small_dataset.trace("b"))
        # b never revisits the same cell twice in the fixture.
        assert len(sequence.base_cells) == total_hours


class TestCellIndex:
    def test_entities_at_cell_base_level(self, small_dataset, small_hierarchy):
        base = small_hierarchy.base_units[0]
        entities = small_dataset.entities_at_cell(STCell(0, base))
        assert entities == {"a", "b"}

    def test_entities_at_cell_coarse_level(self, small_dataset, small_hierarchy):
        base = small_hierarchy.base_units[0]
        root = small_hierarchy.ancestor_at_level(base, 1)
        entities = small_dataset.entities_at_cell(STCell(0, root), level=1)
        assert {"a", "b"} <= entities

    def test_entities_at_unknown_cell_empty(self, small_dataset, small_hierarchy):
        base = small_hierarchy.base_units[7]
        assert small_dataset.entities_at_cell(STCell(47, base)) == set()

    def test_cell_index_invalidated_on_update(self, small_dataset, small_hierarchy):
        base = small_hierarchy.base_units[7]
        cell = STCell(46, base)
        assert small_dataset.entities_at_cell(cell) == set()
        small_dataset.add_record("a", base, 46)
        assert small_dataset.entities_at_cell(cell) == {"a"}
