"""Tests for the hierarchical-IM synthetic generator (repro.mobility.hierarchical)."""

import pytest

from repro.mobility.hierarchical import HierarchicalMobilityConfig, generate_synthetic_dataset
from repro.mobility.im_model import IMModelParams


class TestConfig:
    def test_defaults_match_paper_mobility_parameters(self):
        config = HierarchicalMobilityConfig()
        assert config.im_params == IMModelParams()
        assert config.width_exponent == 2.0
        assert config.density_exponent == 2.0
        assert config.num_levels == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_entities": 0},
            {"horizon": 0},
            {"max_group_size": 0},
            {"group_copy_probability": 1.5},
            {"observation_rate_range": (0.0, 0.5)},
            {"observation_rate_range": (0.8, 0.5)},
        ],
    )
    def test_invalid_configuration(self, kwargs):
        with pytest.raises(ValueError):
            HierarchicalMobilityConfig(**kwargs)

    def test_with_params_returns_modified_copy(self):
        config = HierarchicalMobilityConfig()
        changed = config.with_params(num_entities=50)
        assert changed.num_entities == 50
        assert config.num_entities == 200


class TestGeneration:
    def test_entity_count_exact(self):
        dataset, _config = generate_synthetic_dataset(num_entities=37, grid_side=6, horizon=48, seed=1)
        assert dataset.num_entities == 37

    def test_every_entity_has_presence(self):
        dataset, _config = generate_synthetic_dataset(num_entities=30, grid_side=6, horizon=48, seed=2)
        for entity in dataset.entities:
            assert len(dataset.trace(entity)) >= 1

    def test_presences_within_horizon(self):
        dataset, _config = generate_synthetic_dataset(num_entities=20, grid_side=6, horizon=48, seed=3)
        for entity in dataset.entities:
            for presence in dataset.trace(entity):
                assert 0 <= presence.start < presence.end <= 48

    def test_hierarchy_depth_configurable(self):
        dataset, _config = generate_synthetic_dataset(num_entities=10, grid_side=8, num_levels=3, seed=4)
        assert dataset.num_levels == 3

    def test_reproducible_given_seed(self):
        first, _ = generate_synthetic_dataset(num_entities=25, grid_side=6, horizon=48, seed=5)
        second, _ = generate_synthetic_dataset(num_entities=25, grid_side=6, horizon=48, seed=5)
        assert first.entities == second.entities
        for entity in first.entities:
            assert first.trace(entity) == second.trace(entity)

    def test_different_seeds_differ(self):
        first, _ = generate_synthetic_dataset(num_entities=25, grid_side=6, horizon=48, seed=5)
        second, _ = generate_synthetic_dataset(num_entities=25, grid_side=6, horizon=48, seed=6)
        traces_first = [first.trace(entity) for entity in first.entities]
        traces_second = [second.trace(entity) for entity in second.entities]
        assert traces_first != traces_second

    def test_overrides_applied(self):
        _dataset, config = generate_synthetic_dataset(num_entities=12, grid_side=6, seed=0, max_group_size=3)
        assert config.max_group_size == 3

    def test_groups_produce_strong_associations(self):
        """With large copy probability group members overlap heavily."""
        from repro.measures import HierarchicalADM

        dataset, _config = generate_synthetic_dataset(
            num_entities=40,
            grid_side=6,
            horizon=72,
            max_group_size=4,
            group_size_exponent=0.1,       # almost always the maximal size
            group_copy_probability=0.9,
            observation_rate_range=(0.8, 1.0),
            seed=8,
        )
        measure = HierarchicalADM(num_levels=dataset.num_levels)
        # Group members are generated consecutively after their leader, so at
        # least one adjacent pair among the first entities is a leader/member
        # pair with heavy overlap.
        best = max(
            measure.score(
                dataset.cell_sequence(f"syn-{i}"), dataset.cell_sequence(f"syn-{i + 1}")
            )
            for i in range(0, 15)
        )
        assert best > 0.3

    def test_heavy_tailed_activity(self):
        """Observation sampling produces a wide spread of per-entity cell counts."""
        dataset, _config = generate_synthetic_dataset(
            num_entities=80,
            grid_side=8,
            horizon=96,
            observation_rate_range=(0.05, 1.0),
            seed=9,
        )
        counts = sorted(len(dataset.cell_sequence(entity).base_cells) for entity in dataset.entities)
        assert counts[-1] >= 3 * max(1, counts[len(counts) // 4])

    def test_disabling_groups_and_sampling_recovers_plain_im(self):
        dataset, _config = generate_synthetic_dataset(
            num_entities=15,
            grid_side=6,
            horizon=48,
            max_group_size=1,
            observation_rate_range=(1.0, 1.0),
            seed=10,
        )
        # With full observation every entity's stays tile the horizon exactly.
        for entity in dataset.entities:
            covered = sum(presence.duration for presence in dataset.trace(entity))
            assert covered == 48
