"""The write-ahead log and crash recovery, pinned end to end.

Three layers of guarantee, weakest to strongest:

* **Framing** -- records round-trip through segments, segments roll at the
  size limit, and a reopened log resumes the sequence where it left off.
* **Damage containment** -- a torn tail (garbage, truncated header or
  payload) is repaired at open time; a flipped checksum or missing magic
  stops both :meth:`WriteAheadLog.records` and :func:`scan_wal` cleanly at
  the last valid record, never mid-record and never with an exception.
* **Recovery equivalence** -- a process restarted from snapshot + WAL
  replay is *byte-identical* to one that never crashed: same stream state,
  same top-k answers, same compiled columnar arrays.  This is the theorem
  ``docs/DURABILITY.md`` describes: flushes are deterministic given their
  buffer and watermark, and the WAL records exactly those.
"""

import json
import os

import pytest

from repro import (
    EventIngestor,
    PresenceInstance,
    SpatialHierarchy,
    TraceDataset,
    TraceQueryEngine,
)
from repro.cli import main as cli_main
from repro.core.columnar import ColumnarTree
from repro.server.recovery import replay_wal_into_engine
from repro.storage.snapshot import load_engine_snapshot, read_manifest
from repro.streaming import (
    StreamingConfig,
    WriteAheadLog,
    replay_into,
    scan_wal,
)
from repro.streaming.wal import MAGIC

HORIZON = 120
KNOBS = dict(num_hashes=32, seed=7, bound_mode="per_level")


@pytest.fixture(scope="module")
def hierarchy():
    return SpatialHierarchy.regular([2, 3, 2], prefix="f")


def make_stream(hierarchy, rng, count, num_entities=14, span=100):
    events = []
    for _ in range(count):
        start = rng.randrange(0, span)
        events.append(
            PresenceInstance(
                entity=f"s{rng.randrange(num_entities)}",
                unit=rng.choice(hierarchy.base_units),
                start=start,
                end=start + rng.randrange(1, 5),
            )
        )
    events.sort(key=lambda p: (p.start, p.end, p.entity, p.unit))
    return events


def fresh_engine(hierarchy):
    dataset = TraceDataset(hierarchy, horizon=HORIZON)
    return TraceQueryEngine(dataset, **KNOBS).build()


def batches_of(events, size):
    return [events[i : i + size] for i in range(0, len(events), size)]


def canonical_topk(engine, k=5):
    """Canonical bytes of every entity's top-k answer."""
    payload = {
        entity: engine.top_k(entity, k=k).items
        for entity in sorted(engine.dataset.entities)
    }
    return json.dumps(payload, sort_keys=True)


def assert_engines_byte_identical(left, right):
    """Stream-visible state AND compiled kernel arrays must match exactly."""
    assert sorted(left.dataset.entities) == sorted(right.dataset.entities)
    assert canonical_topk(left) == canonical_topk(right)
    left_arrays = ColumnarTree.compile(left._tree, left.dataset).export_arrays()
    right_arrays = ColumnarTree.compile(right._tree, right.dataset).export_arrays()
    assert sorted(left_arrays) == sorted(right_arrays)
    for name, array in left_arrays.items():
        assert array.dtype == right_arrays[name].dtype, name
        assert array.tobytes() == right_arrays[name].tobytes(), name


# ---------------------------------------------------------------------------
# Framing: append / iterate / roll / reopen
# ---------------------------------------------------------------------------
class TestFraming:
    def test_append_iterate_round_trip(self, tmp_path, hierarchy, seeded_rng):
        rng = seeded_rng(1)
        events = make_stream(hierarchy, rng, count=30)
        with WriteAheadLog(tmp_path) as wal:
            for index, batch in enumerate(batches_of(events, 6), start=1):
                seq = wal.append(batch, watermark=10 * index)
                assert seq == index
            assert wal.last_seq == 5
        records = list(WriteAheadLog(tmp_path).records())
        assert [record.seq for record in records] == [1, 2, 3, 4, 5]
        assert [record.watermark for record in records] == [10, 20, 30, 40, 50]
        replayed = [event for record in records for event in record.events]
        assert list(replayed) == events

    def test_records_suffix_from_start_seq(self, tmp_path, hierarchy, seeded_rng):
        events = make_stream(hierarchy, seeded_rng(2), count=20)
        with WriteAheadLog(tmp_path) as wal:
            for batch in batches_of(events, 4):
                wal.append(batch, watermark=batch[-1].end)
        assert [r.seq for r in WriteAheadLog(tmp_path).records(start_seq=4)] == [4, 5]

    def test_segments_roll_at_size_limit(self, tmp_path, hierarchy, seeded_rng):
        events = make_stream(hierarchy, seeded_rng(3), count=40)
        with WriteAheadLog(tmp_path, segment_max_bytes=256) as wal:
            for batch in batches_of(events, 4):
                wal.append(batch, watermark=batch[-1].end)
        segments = sorted(p.name for p in tmp_path.iterdir())
        assert len(segments) > 1, "256-byte segments must roll"
        for name in segments:
            assert (tmp_path / name).read_bytes().startswith(MAGIC)
        # Segment files are named by their first sequence number.
        report = scan_wal(tmp_path)
        assert not report.corrupt
        assert report.total_records == 10
        for info in report.segments:
            assert info.path.name == f"wal-{info.first_seq:08d}.log"

    def test_reopen_resumes_sequence(self, tmp_path, hierarchy, seeded_rng):
        events = make_stream(hierarchy, seeded_rng(4), count=24)
        first, second = batches_of(events, 12)
        with WriteAheadLog(tmp_path) as wal:
            wal.append(first, watermark=50)
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_seq == 1
            assert wal.append(second, watermark=90) == 2
        records = list(WriteAheadLog(tmp_path).records())
        assert [record.seq for record in records] == [1, 2]
        assert [event for r in records for event in r.events] == first + second


# ---------------------------------------------------------------------------
# Damage containment: torn tails, flipped bits, lost magic
# ---------------------------------------------------------------------------
def build_log(tmp_path, hierarchy, rng, count=30, batch=6, **wal_kwargs):
    events = make_stream(hierarchy, rng, count=count)
    with WriteAheadLog(tmp_path, **wal_kwargs) as wal:
        for chunk in batches_of(events, batch):
            wal.append(chunk, watermark=chunk[-1].end)
    return events


def only_segment(tmp_path):
    segments = sorted(tmp_path.glob("wal-*.log"))
    assert len(segments) == 1
    return segments[0]


class TestDamageContainment:
    def test_garbage_tail_repaired_on_open(self, tmp_path, hierarchy, seeded_rng):
        build_log(tmp_path, hierarchy, seeded_rng(10))
        segment = only_segment(tmp_path)
        clean_size = segment.stat().st_size
        with open(segment, "ab") as handle:
            handle.write(b"\x7fgarbage-from-a-torn-write")
        before = scan_wal(tmp_path)
        assert before.corrupt and before.segments[-1].truncated
        assert before.last_seq == 5  # the valid prefix survives the tear

        with WriteAheadLog(tmp_path) as wal:  # open-time repair
            assert wal.last_seq == 5
            assert segment.stat().st_size == clean_size
            wal.append(
                [PresenceInstance("late", hierarchy.base_units[0], 200, 204)],
                watermark=204,
            )
        after = scan_wal(tmp_path)
        assert not after.corrupt
        assert after.last_seq == 6

    @pytest.mark.parametrize("kind", ["header", "payload"])
    def test_truncated_tail_stops_at_last_valid_record(
        self, tmp_path, hierarchy, kind, seeded_rng
    ):
        build_log(tmp_path, hierarchy, seeded_rng(11))
        segment = only_segment(tmp_path)
        report = scan_wal(tmp_path)
        last_record_bytes = (
            report.segments[0].valid_bytes
            - report.segments[0].valid_bytes // report.segments[0].records
        )
        # Cut mid-header (3 bytes past the previous record) or mid-payload
        # (well inside the final record's JSON body).
        data = segment.read_bytes()
        cut = last_record_bytes + (3 if kind == "header" else 12)
        segment.write_bytes(data[:cut])

        records = list(WriteAheadLog(tmp_path).records())
        assert [record.seq for record in records] == [1, 2, 3, 4]
        repaired = scan_wal(tmp_path)  # the open above repaired the tear
        assert not repaired.corrupt
        assert repaired.last_seq == 4
        with WriteAheadLog(tmp_path) as wal:
            unit = hierarchy.base_units[0]
            assert wal.append([PresenceInstance("x", unit, 1, 2)], watermark=2) == 5

    def test_checksum_flip_stops_replay_cleanly(self, tmp_path, hierarchy, seeded_rng):
        events = build_log(tmp_path, hierarchy, seeded_rng(12))
        assert len(events) == 30
        segment = only_segment(tmp_path)
        data = bytearray(segment.read_bytes())
        # Flip one byte inside the *third* record's payload: replay must
        # keep records 1-2 and surrender everything from the flip on.
        per_record = (len(data) - len(MAGIC)) // 5
        flip_at = len(MAGIC) + 2 * per_record + per_record // 2
        data[flip_at] ^= 0xFF
        segment.write_bytes(bytes(data))

        report = scan_wal(tmp_path)
        assert report.corrupt
        assert report.segments[0].error == "checksum mismatch"
        assert report.last_seq == 2
        assert [r.seq for r in WriteAheadLog(tmp_path).records()] == [1, 2]

    def test_defective_segment_blocks_later_segments(
        self, tmp_path, hierarchy, seeded_rng
    ):
        build_log(
            tmp_path, hierarchy, seeded_rng(13), count=40, batch=4, segment_max_bytes=256
        )
        segments = sorted(tmp_path.glob("wal-*.log"))
        assert len(segments) >= 3
        # Corrupt the second segment's first record payload.
        data = bytearray(segments[1].read_bytes())
        data[len(MAGIC) + 12] ^= 0xFF
        segments[1].write_bytes(bytes(data))

        report = scan_wal(tmp_path)
        assert report.corrupt
        assert report.segments[1].error == "checksum mismatch"
        assert all(info.error == "unreachable" for info in report.segments[2:])
        replayable = [r.seq for r in WriteAheadLog(tmp_path).records()]
        assert replayable == list(range(1, report.last_seq + 1))
        assert report.last_seq == report.segments[0].records

    def test_magic_lost_removes_segment(self, tmp_path, hierarchy, seeded_rng):
        build_log(tmp_path, hierarchy, seeded_rng(14))
        segment = only_segment(tmp_path)
        segment.write_bytes(MAGIC[:4])  # even the magic was torn
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_seq == 0
            assert not segment.exists()
            unit = hierarchy.base_units[0]
            assert wal.append([PresenceInstance("x", unit, 1, 2)], watermark=2) == 1


# ---------------------------------------------------------------------------
# Recovery equivalence: restart == never crashed
# ---------------------------------------------------------------------------
STREAMING = dict(max_batch_events=7, window=60, compact_after=5)


class TestRecoveryEquivalence:
    def test_full_replay_equals_never_crashed_oracle(
        self, tmp_path, hierarchy, seeded_rng
    ):
        events = make_stream(hierarchy, seeded_rng(20), count=120)
        live = fresh_engine(hierarchy)
        wal = WriteAheadLog(tmp_path / "wal")
        ingestor = EventIngestor(live, wal=wal, **STREAMING)
        ingestor.extend(events)
        ingestor.flush()
        wal.close()

        restarted = fresh_engine(hierarchy)
        summary, stream_state = replay_wal_into_engine(
            restarted,
            WriteAheadLog(tmp_path / "wal"),
            streaming=StreamingConfig(**STREAMING),
        )
        assert summary.last_seq == wal.last_seq
        assert summary.records == wal.last_seq
        assert stream_state == ingestor.stream_state()
        assert_engines_byte_identical(restarted, live)

    def test_snapshot_plus_wal_suffix_equals_oracle(
        self, tmp_path, hierarchy, seeded_rng
    ):
        """The real recovery path: restore a mid-stream snapshot, then
        replay only the WAL records *after* its stamped ``wal_seq``."""
        events = make_stream(hierarchy, seeded_rng(21), count=120)
        live = fresh_engine(hierarchy)
        wal = WriteAheadLog(tmp_path / "wal")
        ingestor = EventIngestor(live, wal=wal, **STREAMING)

        ingestor.extend(events[:60])
        ingestor.flush()
        snapshot = tmp_path / "snap"
        live.save(
            snapshot,
            extra_meta={"wal_seq": wal.last_seq, "stream": ingestor.stream_state()},
        )
        ingestor.extend(events[60:])
        ingestor.flush()
        wal.close()

        meta = read_manifest(snapshot)["extra"]
        assert meta["wal_seq"] > 0
        restarted = load_engine_snapshot(snapshot)
        summary, stream_state = replay_wal_into_engine(
            restarted,
            WriteAheadLog(tmp_path / "wal"),
            streaming=StreamingConfig(**STREAMING),
            meta=meta,
        )
        assert summary.records < wal.last_seq  # only the suffix replayed
        assert summary.last_seq == wal.last_seq
        assert stream_state == ingestor.stream_state()
        assert_engines_byte_identical(restarted, live)

    def test_replay_after_torn_tail_recovers_acknowledged_prefix(
        self, tmp_path, hierarchy, seeded_rng
    ):
        """Crash mid-append: the torn final record is lost, every record
        before it replays, and the engine equals an oracle fed exactly the
        acknowledged batches."""
        events = make_stream(hierarchy, seeded_rng(22), count=84)
        live = fresh_engine(hierarchy)
        wal_dir = tmp_path / "wal"
        wal = WriteAheadLog(wal_dir)
        ingestor = EventIngestor(live, wal=wal, **STREAMING)
        ingestor.extend(events)
        ingestor.flush()
        wal.close()
        acknowledged = list(WriteAheadLog(wal_dir).records())

        # Tear the final record in half, as a crash mid-write would.
        segment = sorted(wal_dir.glob("wal-*.log"))[-1]
        report = scan_wal(wal_dir)
        info = report.segments[-1]
        keep = info.valid_bytes - (info.valid_bytes - len(MAGIC)) // info.records // 2
        segment.write_bytes(segment.read_bytes()[:keep])

        restarted = fresh_engine(hierarchy)
        summary, _ = replay_wal_into_engine(
            restarted,
            WriteAheadLog(wal_dir),
            streaming=StreamingConfig(**STREAMING),
        )
        assert summary.last_seq == len(acknowledged) - 1

        oracle = fresh_engine(hierarchy)
        oracle_ingestor = EventIngestor(oracle, **STREAMING)
        for record in acknowledged[:-1]:
            oracle_ingestor.ingest_batch(record.events, watermark=record.watermark)
        assert_engines_byte_identical(restarted, oracle)

    def test_replay_into_suspends_the_ingestors_own_wal(
        self, tmp_path, hierarchy, seeded_rng
    ):
        events = make_stream(hierarchy, seeded_rng(23), count=40)
        source = WriteAheadLog(tmp_path / "source")
        ingestor = EventIngestor(fresh_engine(hierarchy), wal=source, **STREAMING)
        ingestor.extend(events)
        ingestor.flush()
        source.close()

        own = WriteAheadLog(tmp_path / "own")
        target = EventIngestor(fresh_engine(hierarchy), wal=own, **STREAMING)
        replay_into(target, WriteAheadLog(tmp_path / "source"))
        assert own.last_seq == 0  # replay never re-appends durable records
        assert target.wal is own  # and the WAL is restored afterwards
        target.submit(PresenceInstance("x", hierarchy.base_units[0], 300, 302))
        target.flush()
        assert own.last_seq == 1  # live appends resume once replay is done


# ---------------------------------------------------------------------------
# CLI: repro wal inspect / repro wal replay
# ---------------------------------------------------------------------------
class TestCli:
    def test_inspect_reports_clean_log(self, tmp_path, hierarchy, seeded_rng, capsys):
        build_log(tmp_path, hierarchy, seeded_rng(30))
        assert cli_main(["wal", "inspect", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "5 records" in out and "(ok)" in out

    def test_inspect_json_flags_corruption(self, tmp_path, hierarchy, seeded_rng, capsys):
        build_log(tmp_path, hierarchy, seeded_rng(31))
        segment = only_segment(tmp_path)
        data = bytearray(segment.read_bytes())
        data[len(MAGIC) + 10] ^= 0xFF
        segment.write_bytes(bytes(data))
        assert cli_main(["wal", "inspect", str(tmp_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["corrupt"] is True
        assert payload["last_seq"] == 0
        assert payload["segments"][0]["error"] == "checksum mismatch"

    def test_replay_writes_a_loadable_recovered_snapshot(
        self, tmp_path, hierarchy, seeded_rng, capsys
    ):
        events = make_stream(hierarchy, seeded_rng(32), count=80)
        live = fresh_engine(hierarchy)
        wal = WriteAheadLog(tmp_path / "wal")
        ingestor = EventIngestor(live, wal=wal, **STREAMING)
        ingestor.extend(events[:40])
        ingestor.flush()
        snapshot = tmp_path / "snap"
        live.save(
            snapshot,
            extra_meta={"wal_seq": wal.last_seq, "stream": ingestor.stream_state()},
        )
        ingestor.extend(events[40:])
        ingestor.flush()
        wal.close()

        recovered_path = tmp_path / "recovered"
        code = cli_main(
            [
                "wal",
                "replay",
                str(tmp_path / "wal"),
                "--snapshot",
                str(snapshot),
                "--output",
                str(recovered_path),
                "--batch-size",
                str(STREAMING["max_batch_events"]),
                "--window",
                str(STREAMING["window"]),
                "--compact-every",
                str(STREAMING["compact_after"]),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered snapshot written" in out

        # The written snapshot round-trips through save/load once more, which
        # re-canonicalises tree shape -- so compare the query-visible state
        # (entities and every top-k answer), not raw kernel bytes.
        recovered = load_engine_snapshot(recovered_path)
        assert sorted(recovered.dataset.entities) == sorted(live.dataset.entities)
        assert canonical_topk(recovered) == canonical_topk(live)
        # The recovered snapshot is itself restartable: it stamps the WAL
        # position it already covers.
        extra = read_manifest(recovered_path)["extra"]
        assert extra["wal_seq"] == wal.last_seq
        assert extra["stream"] == ingestor.stream_state()
