"""The scenario harness: corpus integrity, oracle rule, runner, CLI, reports.

Tier-1 covers the contracts that do not need a live HTTP server: corpus
shape, spec resolution, generator determinism, the oracle's
batching-independent final-state rule (fuzzed against a real ingestor),
the report validator, and a real runner pass over the in-process and
sharded backends.  The HTTP backends -- real sockets, worker processes --
run under the ``scenario`` marker (a dedicated CI job) so the default
``pytest -q`` stays fast.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.scenarios import (
    BACKENDS,
    DEFAULT_BACKENDS,
    SCENARIOS,
    ChurnProfile,
    DatasetProfile,
    GroundTruth,
    QueryWorkload,
    REPORT_VERSION,
    ScenarioSpec,
    build_churn_events,
    build_dataset,
    get_scenario,
    iter_scenarios,
    make_backend,
    render_html,
    run_scenarios,
    scenario_names,
    validate_report,
)
from repro.scenarios.spec import EngineProfile
from repro.streaming.ingestor import EventIngestor, StreamingConfig
from repro.core.engine import TraceQueryEngine


class TestCorpus:
    def test_corpus_size_and_hostile_floor(self):
        specs = iter_scenarios()
        assert len(specs) >= 6
        assert sum(1 for spec in specs if spec.hostile) >= 2
        # Both churn generators are exercised by at least one bundled spec.
        churners = {spec.churn.generator for spec in specs}
        assert {"bursty_late", "rolling"} <= churners

    def test_every_spec_is_exactly_scorable(self):
        # 100%-agreement scoring relies on the strictly admissible bound;
        # a spec slipping to "lift" would turn mismatches into flakes.
        for spec in iter_scenarios():
            assert spec.engine.bound_mode == "per_level", spec.name

    def test_specs_serialize_to_json(self):
        for spec in iter_scenarios():
            document = json.dumps(spec.to_dict())
            assert spec.name in document

    def test_lookup_errors(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("no-such-scenario")
        assert scenario_names() == list(SCENARIOS)

    def test_referenced_generators_exist(self):
        from repro.scenarios.generators import CHURN_GENERATORS, DATASET_GENERATORS

        for spec in iter_scenarios():
            assert spec.dataset.generator in DATASET_GENERATORS, spec.name
            assert spec.churn.generator in CHURN_GENERATORS, spec.name


class TestSpecResolution:
    def test_smoke_overlay(self):
        profile = DatasetProfile(
            generator="syn", params={"seed": 1, "num_entities": 400},
            smoke_params={"num_entities": 40},
        )
        assert profile.resolve(smoke=False) == {"seed": 1, "num_entities": 400}
        assert profile.resolve(smoke=True) == {"seed": 1, "num_entities": 40}

    def test_query_count_resolution(self):
        workload = QueryWorkload(count=12, smoke_count=3)
        assert workload.resolve_count(False) == 12
        assert workload.resolve_count(True) == 3
        assert QueryWorkload(count=12).resolve_count(True) == 12

    def test_churn_profile_resolution(self):
        churn = ChurnProfile(
            generator="rolling", params={"steps": 30}, smoke_params={"steps": 5},
            window=24,
        )
        assert churn.resolve(False)["steps"] == 30
        assert churn.resolve(True)["steps"] == 5


class TestGenerators:
    def test_unknown_names_error(self):
        with pytest.raises(ValueError, match="unknown dataset generator"):
            build_dataset("nope", {})
        dataset = build_dataset("clone_families", {"num_families": 2, "num_background": 2})
        with pytest.raises(ValueError, match="unknown churn generator"):
            build_churn_events("nope", dataset, {})

    def test_dataset_generators_are_deterministic(self):
        params = {"num_entities": 30, "seed": 5}
        first = build_dataset("heavy_tail", params)
        second = build_dataset("heavy_tail", params)
        assert list(first.entities) == list(second.entities)
        for entity in first.entities:
            assert first.trace(entity) == second.trace(entity)

    def test_churn_generators_are_deterministic(self):
        dataset = build_dataset("syn", {"num_entities": 40, "seed": 3})
        params = {"bursts": 2, "events_per_burst": 30, "seed": 8}
        first = build_churn_events("bursty_late", dataset, params)
        fresh = build_dataset("syn", {"num_entities": 40, "seed": 3})
        second = build_churn_events("bursty_late", fresh, params)
        assert first == second
        assert len(first) == 60

    def test_bursty_stream_contains_late_arrivals(self):
        dataset = build_dataset("syn", {"num_entities": 40, "seed": 3})
        events = build_churn_events(
            "bursty_late", dataset,
            {"bursts": 3, "events_per_burst": 40, "late_lag": 30, "seed": 1},
        )
        # Submission order is not timestamp order: at least one event ends
        # earlier than a predecessor (that is what "late arrival" means).
        assert any(
            later.end < earlier.end
            for earlier, later in zip(events, events[1:])
        )

    def test_clone_families_produce_identical_traces(self):
        dataset = build_dataset(
            "clone_families",
            {"num_families": 3, "family_size": 3, "distinguish_probability": 0.0,
             "num_background": 0, "seed": 2},
        )
        for family in range(3):
            prototype = dataset.trace(f"cf-{family}-0")
            for member in range(1, 3):
                clone = dataset.trace(f"cf-{family}-{member}")
                assert [(p.unit, p.start, p.end) for p in clone] == [
                    (p.unit, p.start, p.end) for p in prototype
                ]


class TestOracleFinalStateRule:
    """The ground truth's final-state rule matches a real ingestor replay.

    The oracle computes the post-churn dataset *without* the streaming
    machinery (records with ``end > watermark - window`` survive).  Fuzz
    that claim against an actual :class:`EventIngestor` under random batch
    sizes: the surviving traces must be identical no matter how the stream
    is chopped into micro-batches.
    """

    @pytest.mark.parametrize("fuzz_seed", [7, 19])
    def test_rule_matches_real_ingestor_replay(self, fuzz_seed, seeded_rng):
        rng = seeded_rng(fuzz_seed)
        spec = get_scenario("bursty-late")
        truth = GroundTruth(spec, smoke=True)
        assert truth.events, "the fuzz needs a churn stream"

        dataset = build_dataset(spec.dataset.generator, spec.dataset.resolve(True))
        engine = TraceQueryEngine(
            dataset, num_hashes=8, seed=0, bound_mode="per_level"
        ).build()
        ingestor = EventIngestor(
            engine,
            config=StreamingConfig(
                max_batch_events=rng.randrange(1, 50),
                window=spec.churn.window,
                compact_after=spec.churn.compact_after,
            ),
        )
        remaining = list(truth.events)
        while remaining:
            take = rng.randrange(1, 40)
            chunk, remaining = remaining[:take], remaining[take:]
            ingestor.extend(chunk)
            if rng.random() < 0.5:
                ingestor.flush()
        ingestor.close()

        oracle_final = truth._final
        assert sorted(dataset.entities) == sorted(oracle_final.entities)
        for entity in dataset.entities:
            assert sorted(dataset.trace(entity)) == sorted(
                oracle_final.trace(entity)
            ), f"trace mismatch for {entity!r}"


class TestRunnerInProcess:
    """A real runner pass over the engine-level backends (no sockets)."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_scenarios(
            names=["clone-families", "churn-compaction"],
            backends=["in_process", "sharded"],
            smoke=True,
        )

    def test_exact_agreement_everywhere(self, report):
        assert report["summary"]["all_passed"] is True
        assert report["summary"]["exact"] == report["summary"]["queries"]
        for entry in report["scenarios"]:
            for backend_entry in entry["backends"]:
                assert backend_entry["accuracy"]["exact_fraction"] == 1.0
                assert backend_entry["accuracy"]["mismatches"] == []

    def test_latency_sections_are_populated(self, report):
        for entry in report["scenarios"]:
            for backend_entry in entry["backends"]:
                latency = backend_entry["latency"]
                assert latency["count"] == entry["queries"]["count"]
                assert latency["p50_ms"] is not None
                assert latency["mean_ms"] is not None

    def test_report_validates_and_survives_json(self, report):
        assert validate_report(report) == []
        round_tripped = json.loads(json.dumps(report))
        assert validate_report(round_tripped) == []

    def test_html_rendering(self, report):
        page = render_html(report)
        assert "clone-families" in page
        assert "PASS" in page
        assert "<table>" in page

    def test_validator_rejects_mutations(self, report):
        broken = json.loads(json.dumps(report))
        broken["version"] = REPORT_VERSION + 1
        assert any("version" in problem for problem in validate_report(broken))

        broken = json.loads(json.dumps(report))
        del broken["summary"]["all_passed"]
        assert validate_report(broken)

        broken = json.loads(json.dumps(report))
        entry = broken["scenarios"][0]["backends"][0]
        entry["accuracy"]["exact"] = entry["accuracy"]["queries"] + 1
        assert any("out of range" in problem for problem in validate_report(broken))

        broken = json.loads(json.dumps(report))
        broken["summary"]["all_passed"] = False
        assert any("disagrees" in problem for problem in validate_report(broken))


class TestBackendsRegistry:
    def test_registry_shape(self):
        assert set(DEFAULT_BACKENDS) <= set(BACKENDS)
        assert {"in_process", "sharded", "http", "http_workers"} <= set(BACKENDS)
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("nope")

    def test_http_workers_factory_is_distinct(self):
        backend = make_backend("http_workers")
        assert backend.name == "http_workers"
        assert backend.workers == 2
        backend.close()  # never started: must be a clean no-op


class TestScenarioCli:
    def test_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        output = capsys.readouterr().out
        for name in scenario_names():
            assert name in output

    def test_list_json_and_tag_filter(self, capsys):
        assert main(["scenario", "list", "--json", "--tag", "hostile"]) == 0
        specs = json.loads(capsys.readouterr().out)
        assert specs and all("hostile" in spec["tags"] for spec in specs)

    def test_list_unknown_tag_errors(self, capsys):
        assert main(["scenario", "list", "--tag", "no-such-tag"]) == 2
        assert "no scenario carries tag" in capsys.readouterr().err

    def test_run_rejects_bad_selections(self, capsys):
        assert main(["scenario", "run"]) == 2
        assert main(["scenario", "run", "--all", "im-mobility"]) == 2
        assert main(["scenario", "run", "no-such-scenario"]) == 2
        assert main(["scenario", "run", "--all", "--backends", "nope"]) == 2

    def test_report_rejects_missing_and_invalid_files(self, tmp_path, capsys):
        assert main(["scenario", "report", "--input", str(tmp_path / "nope.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["scenario", "report", "--input", str(bad)]) == 2
        invalid = tmp_path / "invalid.json"
        invalid.write_text(json.dumps({"version": REPORT_VERSION}))
        assert main(["scenario", "report", "--input", str(invalid)]) == 2

    def test_run_and_report_round_trip(self, tmp_path, capsys):
        output = tmp_path / "report.json"
        html = tmp_path / "report.html"
        code = main(
            [
                "scenario", "run", "clone-families", "--smoke", "--quiet",
                "--backends", "in_process",
                "--output", str(output), "--html", str(html),
            ]
        )
        assert code == 0
        report = json.loads(output.read_text())
        assert validate_report(report) == []
        assert report["summary"]["all_passed"] is True
        assert "clone-families" in html.read_text()

        assert main(["scenario", "report", "--input", str(output)]) == 0
        summary_line = capsys.readouterr().out
        assert "PASS" in summary_line and "clone-families" in summary_line


@pytest.mark.scenario
class TestHttpBackendsEndToEnd:
    """The live-socket backends, exercised by the dedicated CI job."""

    def test_http_and_workers_agree_with_oracle(self):
        report = run_scenarios(
            names=["wifi-crime", "bursty-late"],
            backends=["http", "http_workers"],
            smoke=True,
        )
        assert validate_report(report) == []
        assert report["summary"]["all_passed"] is True
        for entry in report["scenarios"]:
            for backend_entry in entry["backends"]:
                assert backend_entry["accuracy"]["exact_fraction"] == 1.0


@pytest.mark.slow
class TestFullScaleCorpus:
    """The un-smoked corpus on the engine backends (minutes, not seconds)."""

    def test_full_corpus_in_process(self):
        report = run_scenarios(backends=["in_process"], smoke=False)
        assert report["summary"]["all_passed"] is True
