"""Tests for adjoint presence instances (repro.traces.adjoint)."""

import pytest

from repro.traces.adjoint import (
    adjoint_durations_by_level,
    adjoint_instances,
    entities_with_ajpi,
)
from repro.traces.events import PresenceInstance


class TestAdjointInstances:
    def test_same_unit_overlap_is_base_level(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        a = [PresenceInstance("a", base, 0, 5)]
        b = [PresenceInstance("b", base, 3, 8)]
        ajpis = adjoint_instances(a, b, small_hierarchy)
        assert len(ajpis) == 1
        assert ajpis[0].level == small_hierarchy.num_levels
        assert (ajpis[0].start, ajpis[0].end) == (3, 5)
        assert ajpis[0].duration == 2

    def test_sibling_units_overlap_at_parent_level(self, small_hierarchy):
        parent = small_hierarchy.units_at_level(2)[0]
        child_a, child_b = small_hierarchy.children_of(parent)
        ajpis = adjoint_instances(
            [PresenceInstance("a", child_a, 0, 4)],
            [PresenceInstance("b", child_b, 2, 6)],
            small_hierarchy,
        )
        assert len(ajpis) == 1
        assert ajpis[0].level == 2

    def test_disjoint_roots_produce_nothing(self, small_hierarchy):
        roots = small_hierarchy.units_at_level(1)
        a_unit = small_hierarchy.base_descendants(roots[0])[0]
        b_unit = small_hierarchy.base_descendants(roots[1])[0]
        ajpis = adjoint_instances(
            [PresenceInstance("a", a_unit, 0, 4)],
            [PresenceInstance("b", b_unit, 0, 4)],
            small_hierarchy,
        )
        assert ajpis == []

    def test_no_temporal_overlap_produces_nothing(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        ajpis = adjoint_instances(
            [PresenceInstance("a", base, 0, 2)],
            [PresenceInstance("b", base, 2, 4)],
            small_hierarchy,
        )
        assert ajpis == []

    def test_multiple_pairs_generate_multiple_ajpis(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        a = [PresenceInstance("a", base, 0, 2), PresenceInstance("a", base, 10, 12)]
        b = [PresenceInstance("b", base, 1, 3), PresenceInstance("b", base, 11, 13)]
        ajpis = adjoint_instances(a, b, small_hierarchy)
        assert len(ajpis) == 2

    def test_unsorted_input_handled(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        a = [PresenceInstance("a", base, 10, 12), PresenceInstance("a", base, 0, 2)]
        b = [PresenceInstance("b", base, 11, 13), PresenceInstance("b", base, 1, 3)]
        assert len(adjoint_instances(a, b, small_hierarchy)) == 2

    def test_empty_traces(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        assert adjoint_instances([], [PresenceInstance("b", base, 0, 1)], small_hierarchy) == []
        assert adjoint_instances([], [], small_hierarchy) == []

    def test_symmetry_of_total_duration(self, small_hierarchy, small_dataset):
        a = small_dataset.trace("a")
        b = small_dataset.trace("b")
        forward = sum(x.duration for x in adjoint_instances(a, b, small_hierarchy))
        backward = sum(x.duration for x in adjoint_instances(b, a, small_hierarchy))
        assert forward == backward


class TestAdjointDurations:
    def test_fine_ajpis_count_at_coarser_levels(self, small_hierarchy):
        base = small_hierarchy.base_units[0]
        durations = adjoint_durations_by_level(
            [PresenceInstance("a", base, 0, 4)],
            [PresenceInstance("b", base, 0, 4)],
            small_hierarchy,
        )
        assert durations[1] == durations[2] == durations[3] == 4

    def test_levels_are_monotone_decreasing(self, small_dataset):
        hierarchy = small_dataset.hierarchy
        durations = adjoint_durations_by_level(
            small_dataset.trace("a"), small_dataset.trace("c"), hierarchy
        )
        values = [durations.get(level, 0) for level in range(1, hierarchy.num_levels + 1)]
        assert values == sorted(values, reverse=True)

    def test_no_overlap_empty_dict(self, small_hierarchy):
        roots = small_hierarchy.units_at_level(1)
        a_unit = small_hierarchy.base_descendants(roots[0])[0]
        b_unit = small_hierarchy.base_descendants(roots[1])[0]
        durations = adjoint_durations_by_level(
            [PresenceInstance("a", a_unit, 0, 4)],
            [PresenceInstance("b", b_unit, 0, 4)],
            small_hierarchy,
        )
        assert durations == {}


class TestEntitiesWithAjpi:
    def test_base_level_cooccurrence(self, small_dataset):
        found = entities_with_ajpi(small_dataset, "a", level=small_dataset.num_levels)
        assert "b" in found
        assert "c" in found
        assert "d" not in found

    def test_query_entity_excluded(self, small_dataset):
        assert "a" not in entities_with_ajpi(small_dataset, "a", level=1)

    def test_coarse_level_superset_of_fine_level(self, small_dataset):
        fine = entities_with_ajpi(small_dataset, "a", level=small_dataset.num_levels)
        coarse = entities_with_ajpi(small_dataset, "a", level=1)
        assert fine <= coarse

    def test_unknown_entity_raises(self, small_dataset):
        with pytest.raises(KeyError):
            entities_with_ajpi(small_dataset, "missing", level=1)
