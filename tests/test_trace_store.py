"""Tests for the disk-backed trace store (repro.storage.trace_store)."""

import pytest

from repro.baselines import BruteForceTopK
from repro.storage.trace_store import DiskBackedTraceStore, SimulatedCostModel


class TestCostModel:
    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            SimulatedCostModel(page_read_ms=-1)

    def test_defaults_penalise_misses(self):
        model = SimulatedCostModel()
        assert model.page_read_ms > model.page_hit_ms


class TestStoreLayout:
    def test_invalid_memory_fraction(self, small_dataset):
        with pytest.raises(ValueError):
            DiskBackedTraceStore(small_dataset, memory_fraction=1.5)

    def test_every_entity_has_pages(self, small_dataset):
        store = DiskBackedTraceStore(small_dataset, memory_fraction=0.5)
        for entity in small_dataset.entities:
            assert store.pages_of(entity)

    def test_buffer_capacity_tracks_fraction(self, small_dataset):
        full = DiskBackedTraceStore(small_dataset, memory_fraction=1.0)
        half = DiskBackedTraceStore(small_dataset, memory_fraction=0.5)
        assert full.buffer_capacity == full.num_pages
        assert half.buffer_capacity <= full.buffer_capacity

    def test_leaf_order_places_leaf_neighbours_together(self, small_engine):
        dataset = small_engine.dataset
        order = small_engine.tree.leaf_order()
        store = DiskBackedTraceStore(dataset, order, memory_fraction=1.0, page_size=4096)
        # With a 4 KiB page and a tiny dataset everything fits in few pages.
        assert store.num_pages >= 1

    def test_unknown_entity(self, small_dataset):
        store = DiskBackedTraceStore(small_dataset, memory_fraction=0.5)
        with pytest.raises(KeyError):
            store.fetch_trace("ghost")


class TestFetching:
    def test_fetch_trace_roundtrip(self, small_dataset):
        store = DiskBackedTraceStore(small_dataset, memory_fraction=1.0)
        for entity in small_dataset.entities:
            assert sorted(store.fetch_trace(entity)) == sorted(small_dataset.trace(entity))

    def test_fetch_sequence_matches_dataset(self, small_dataset):
        store = DiskBackedTraceStore(small_dataset, memory_fraction=1.0)
        for entity in small_dataset.entities:
            assert store.fetch_sequence(entity) == small_dataset.cell_sequence(entity)

    def test_misses_then_hits(self, small_dataset):
        store = DiskBackedTraceStore(small_dataset, memory_fraction=1.0)
        store.fetch_trace("a")
        misses_first = store.page_misses
        store.fetch_trace("a")
        assert store.page_misses == misses_first
        assert store.page_hits > 0

    def test_zero_memory_always_misses(self, small_dataset):
        store = DiskBackedTraceStore(small_dataset, memory_fraction=0.0, page_size=256)
        store.fetch_trace("a")
        store.fetch_trace("a")
        assert store.page_hits == 0
        assert store.page_misses > 0

    def test_elapsed_time_accumulates_and_resets(self, small_dataset):
        store = DiskBackedTraceStore(small_dataset, memory_fraction=0.5)
        store.fetch_trace("a")
        assert store.elapsed_ms > 0
        store.reset_counters()
        assert store.elapsed_ms == 0.0
        assert store.page_misses == 0

    def test_smaller_memory_costs_more_simulated_time(self, syn_engine):
        dataset = syn_engine.dataset
        order = syn_engine.tree.leaf_order()
        queries = dataset.entities[::20]

        def run(fraction: float) -> float:
            store = DiskBackedTraceStore(dataset, order, memory_fraction=fraction, page_size=1024)
            for query in queries:
                syn_engine.top_k(query, k=5, sequence_fetcher=store.fetch_sequence)
            return store.elapsed_ms

        assert run(0.1) > run(1.0)

    def test_query_results_unchanged_through_store(self, small_engine):
        dataset = small_engine.dataset
        store = DiskBackedTraceStore(dataset, small_engine.tree.leaf_order(), memory_fraction=0.3)
        oracle = BruteForceTopK(dataset, small_engine.measure)
        for query in dataset.entities:
            through_store = small_engine.top_k(query, k=3, sequence_fetcher=store.fetch_sequence)
            exact = oracle.search(query, k=3)
            assert through_store.entities == exact.entities
