"""Tests for the B-way external merge sort (repro.storage.external_sort)."""

import random

import pytest

from repro.storage.external_sort import ExternalSorter
from repro.storage.pages import PagedFile


def _file_with_records(num_records: int, seed: int = 0, page_size: int = 128) -> PagedFile:
    rng = random.Random(seed)
    file = PagedFile(page_size=page_size)
    records = [
        (f"entity-{rng.randrange(30)}", f"unit-{rng.randrange(10)}", rng.randrange(100), rng.randrange(100, 200))
        for _ in range(num_records)
    ]
    file.append_records(records)
    return file


class TestSortCorrectness:
    def test_output_is_sorted_by_entity(self):
        source = _file_with_records(200, seed=1)
        sorted_file, _stats = ExternalSorter(buffer_pages=3).sort(source)
        records = list(sorted_file.iter_records())
        assert records == sorted(records)

    def test_output_is_permutation_of_input(self):
        source = _file_with_records(150, seed=2)
        original = sorted(source.iter_records())
        source.reset_counters()
        sorted_file, _stats = ExternalSorter(buffer_pages=4).sort(source)
        assert sorted(sorted_file.iter_records()) == original

    def test_custom_key(self):
        source = _file_with_records(80, seed=3)
        sorted_file, _stats = ExternalSorter(buffer_pages=3, key=lambda r: r[2]).sort(source)
        starts = [record[2] for record in sorted_file.iter_records()]
        assert starts == sorted(starts)

    def test_empty_input(self):
        source = PagedFile(page_size=128)
        sorted_file, stats = ExternalSorter(buffer_pages=2).sort(source)
        assert sorted_file.num_pages == 0
        assert stats.page_ios == 0
        assert stats.initial_runs == 0

    def test_input_smaller_than_buffer(self):
        source = _file_with_records(5, seed=4, page_size=4096)
        sorted_file, stats = ExternalSorter(buffer_pages=8).sort(source)
        assert stats.merge_passes == 0
        assert stats.initial_runs == 1
        assert list(sorted_file.iter_records()) == sorted(source.iter_records())

    def test_invalid_buffer_pages(self):
        with pytest.raises(ValueError):
            ExternalSorter(buffer_pages=1)


class TestSortCost:
    def test_pass_count_matches_formula(self):
        source = _file_with_records(400, seed=5, page_size=128)
        sorter = ExternalSorter(buffer_pages=3)
        _sorted_file, stats = sorter.sort(source)
        # total passes = 1 (run formation) + ceil(log_{B-1}(runs))
        import math

        runs = math.ceil(stats.input_pages / stats.buffer_pages)
        expected_merge = math.ceil(math.log(runs, stats.buffer_pages - 1)) if runs > 1 else 0
        assert stats.merge_passes == expected_merge

    def test_measured_ios_close_to_analytic(self):
        source = _file_with_records(400, seed=6, page_size=128)
        _sorted_file, stats = ExternalSorter(buffer_pages=4).sort(source)
        # Re-packing can change the page count slightly, so allow 25% slack.
        assert stats.page_ios == pytest.approx(stats.analytic_page_ios, rel=0.25)

    def test_more_buffer_pages_means_fewer_ios(self):
        small_buffer_stats = ExternalSorter(buffer_pages=2).sort(_file_with_records(400, seed=7))[1]
        large_buffer_stats = ExternalSorter(buffer_pages=16).sort(_file_with_records(400, seed=7))[1]
        assert large_buffer_stats.page_ios <= small_buffer_stats.page_ios
        assert large_buffer_stats.total_passes <= small_buffer_stats.total_passes

    def test_stats_fields_consistent(self):
        source = _file_with_records(120, seed=8)
        _sorted, stats = ExternalSorter(buffer_pages=3).sort(source)
        assert stats.input_pages == source.num_pages
        assert stats.total_passes == stats.merge_passes + 1
        assert stats.page_ios > 0
