"""ShardedEngine: exact equivalence with the single engine, plus routing.

The acceptance contract: for every shard count, ``top_k`` and
``top_k_batch`` over the sharded deployment return exactly the single
engine's results -- including after interleaved ``add_records`` /
``remove_entity`` updates -- because shard hash families are identical and
per-shard searches are exact over a partition of the candidates.
"""

import pytest

from repro import (
    HashPartitioner,
    PresenceInstance,
    RoundRobinPartitioner,
    ShardedEngine,
    TraceDataset,
    TraceQueryEngine,
)
from repro.service.partition import make_partitioner

SHARD_COUNTS = (1, 2, 4)


def clone_dataset(dataset: TraceDataset) -> TraceDataset:
    """An independent copy (engines mutate their dataset on updates)."""
    copy = TraceDataset(dataset.hierarchy, horizon=dataset.explicit_horizon)
    for entity in dataset.entities:
        copy.restore_trace(entity, dataset.trace(entity))
    return copy


def assert_same_results(sharded_result, single_result):
    assert sharded_result.items == single_result.items
    assert sharded_result.stats.population == single_result.stats.population


@pytest.fixture(scope="module")
def syn(syn_dataset):
    return syn_dataset


class TestEquivalence:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("partitioner", ["hash", "round_robin"])
    def test_top_k_matches_single_engine(self, syn, num_shards, partitioner):
        single = TraceQueryEngine(clone_dataset(syn), num_hashes=64, seed=11).build()
        sharded = ShardedEngine(
            clone_dataset(syn),
            num_shards=num_shards,
            partitioner=partitioner,
            num_hashes=64,
            seed=11,
        ).build()
        for query in list(syn.entities)[:6]:
            assert_same_results(sharded.top_k(query, k=10), single.top_k(query, k=10))

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_top_k_batch_matches_single_engine(self, syn, num_shards):
        single = TraceQueryEngine(clone_dataset(syn), num_hashes=64, seed=11).build()
        sharded = ShardedEngine(
            clone_dataset(syn), num_shards=num_shards, num_hashes=64, seed=11
        ).build()
        queries = list(syn.entities)[:8]
        single_batch = single.top_k_batch(queries, k=10)
        for workers in (0, 3):
            sharded_batch = sharded.top_k_batch(queries, k=10, workers=workers)
            assert [r.query_entity for r in sharded_batch] == queries
            for sharded_result, single_result in zip(sharded_batch, single_batch):
                assert_same_results(sharded_result, single_result)

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_equivalence_after_interleaved_updates(self, syn, num_shards):
        """add/remove/re-add interleaved with queries stays exactly equal."""
        single = TraceQueryEngine(clone_dataset(syn), num_hashes=64, seed=11).build()
        sharded = ShardedEngine(
            clone_dataset(syn), num_shards=num_shards, num_hashes=64, seed=11
        ).build()
        entities = list(syn.entities)
        base_units = syn.hierarchy.base_units
        victim, query = entities[3], entities[0]

        new_records = [
            PresenceInstance("late-arrival", base_units[0], 1, 4),
            PresenceInstance("late-arrival", base_units[5], 10, 12),
            PresenceInstance(entities[1], base_units[0], 2, 3),
        ]
        assert single.add_records(new_records) == sharded.add_records(new_records)
        assert_same_results(sharded.top_k(query, k=10), single.top_k(query, k=10))

        single.remove_entity(victim)
        sharded.remove_entity(victim)
        assert_same_results(sharded.top_k(query, k=10), single.top_k(query, k=10))
        assert victim not in sharded.dataset

        # Re-introduce the removed entity with a fresh trace.
        revived = [PresenceInstance(victim, base_units[2], 6, 9)]
        single.add_records(revived)
        sharded.add_records(revived)
        assert_same_results(sharded.top_k(query, k=10), single.top_k(query, k=10))
        assert_same_results(sharded.top_k(victim, k=10), single.top_k(victim, k=10))

    @pytest.mark.parametrize("fuzz_seed", [0, 1, 2])
    def test_per_level_bound_equivalence_is_unconditional(self, fuzz_seed):
        """With the strictly admissible bound, equality holds on any data.

        Random datasets with deliberately duplicated traces (score ties and
        heavy coarse-level overlap -- the lift bound's weak spot) must give
        identical sharded and single-engine answers for every query and
        shard count under ``bound_mode="per_level"``.
        """
        import random

        from repro import SpatialHierarchy

        rng = random.Random(fuzz_seed)
        hierarchy = SpatialHierarchy.regular([2, 3, 3], prefix="f")
        dataset = TraceDataset(hierarchy, horizon=24)
        bases = hierarchy.base_units
        for index in range(30):
            entity = f"e{index}"
            for _ in range(rng.randint(1, 8)):
                dataset.add_record(
                    entity, rng.choice(bases), rng.randrange(22), duration=rng.randint(1, 2)
                )
            if rng.random() < 0.4:  # a twin with an identical trace
                for presence in dataset.trace(entity):
                    dataset.add_record(
                        f"{entity}-twin", presence.unit, presence.start, presence.duration
                    )
        knobs = dict(num_hashes=32, seed=fuzz_seed, bound_mode="per_level")
        single = TraceQueryEngine(clone_dataset(dataset), **knobs).build()
        for num_shards in SHARD_COUNTS:
            sharded = ShardedEngine(
                clone_dataset(dataset), num_shards=num_shards, **knobs
            ).build()
            for query in dataset.entities:
                assert sharded.top_k(query, k=5).items == single.top_k(query, k=5).items

    def test_query_entity_in_another_shard(self, small_dataset, small_measure):
        """Every entity is queryable regardless of which shard owns it."""
        single = TraceQueryEngine(
            clone_dataset(small_dataset), measure=small_measure, num_hashes=32, seed=5
        ).build()
        sharded = ShardedEngine(
            clone_dataset(small_dataset),
            measure=small_measure,
            num_shards=3,
            num_hashes=32,
            seed=5,
        ).build()
        for query in small_dataset.entities:
            assert_same_results(sharded.top_k(query, k=3), single.top_k(query, k=3))

    def test_tied_scores_resolve_identically(self, small_hierarchy):
        """Exact score ties at the k boundary pick the same entities.

        Entities with identical traces score identically; both the single
        engine and the sharded merge must retain the lexicographically
        smallest tied entities, whatever the leaf traversal or shard layout.
        """
        dataset = TraceDataset(small_hierarchy, horizon=24)
        base = small_hierarchy.base_units
        for entity in ("q", "zz", "aa", "mm"):
            for t in range(0, 10, 2):
                dataset.add_record(entity, base[0], t, duration=2)
        for k in (1, 2, 3):
            single = TraceQueryEngine(clone_dataset(dataset), num_hashes=16, seed=3).build()
            expected = single.top_k("q", k=k)
            assert expected.entities == ["aa", "mm", "zz"][:k]
            for num_shards in (2, 4):
                sharded = ShardedEngine(
                    clone_dataset(dataset), num_shards=num_shards, num_hashes=16, seed=3
                ).build()
                assert sharded.top_k("q", k=k).items == expected.items

    def test_more_shards_than_entities(self, small_dataset, small_measure):
        """Empty shards are legal and contribute nothing."""
        sharded = ShardedEngine(
            clone_dataset(small_dataset),
            measure=small_measure,
            num_shards=16,
            num_hashes=32,
            seed=5,
        ).build()
        single = TraceQueryEngine(
            clone_dataset(small_dataset), measure=small_measure, num_hashes=32, seed=5
        ).build()
        assert_same_results(sharded.top_k("a", k=3), single.top_k("a", k=3))


class TestRoutingAndLifecycle:
    def test_requires_build(self, small_dataset):
        sharded = ShardedEngine(clone_dataset(small_dataset), num_shards=2, num_hashes=16)
        with pytest.raises(RuntimeError, match="build"):
            sharded.top_k("a", k=1)
        with pytest.raises(RuntimeError, match="build"):
            sharded.add_records([])

    def test_updates_route_to_owning_shard(self, small_dataset, small_hierarchy):
        sharded = ShardedEngine(clone_dataset(small_dataset), num_shards=2, num_hashes=16).build()
        base = small_hierarchy.base_units
        affected = sharded.add_records([PresenceInstance("fresh", base[0], 0, 2)])
        assert affected == ["fresh"]
        owner = sharded.shard_of("fresh")
        assert "fresh" in sharded.shards[owner].dataset
        other = sharded.shards[1 - owner]
        assert "fresh" not in other.dataset

    def test_remove_unknown_entity_raises(self, small_dataset):
        sharded = ShardedEngine(clone_dataset(small_dataset), num_shards=2, num_hashes=16).build()
        with pytest.raises(KeyError, match="nobody"):
            sharded.remove_entity("nobody")

    def test_refresh_entities_syncs_shard_copy(self, small_dataset, small_hierarchy):
        sharded = ShardedEngine(clone_dataset(small_dataset), num_shards=2, num_hashes=16).build()
        single = TraceQueryEngine(clone_dataset(small_dataset), num_hashes=16).build()
        base = small_hierarchy.base_units
        # Mutate the trace out of band on both substrates, then refresh.
        replacement = [PresenceInstance("a", base[3], 5, 9)]
        sharded.dataset.replace_trace("a", replacement)
        single.dataset.replace_trace("a", replacement)
        sharded.refresh_entities(["a"])
        single.refresh_entities(["a"])
        owner = sharded.shard_of("a")
        assert sharded.shards[owner].dataset.trace("a") == tuple(replacement)
        assert_same_results(sharded.top_k("b", k=3), single.top_k("b", k=3))

    def test_invalid_shard_count(self, small_dataset):
        with pytest.raises(ValueError, match="num_shards"):
            ShardedEngine(small_dataset, num_shards=0)


class TestPartitioners:
    def test_hash_partitioner_is_stable(self):
        partitioner = HashPartitioner(4)
        assignments = {f"entity-{i}": partitioner.assign(f"entity-{i}") for i in range(50)}
        again = HashPartitioner(4)
        assert all(again.assign(entity) == shard for entity, shard in assignments.items())
        assert set(assignments.values()) == {0, 1, 2, 3}

    def test_round_robin_balances_exactly(self):
        partitioner = RoundRobinPartitioner(3)
        shards = [partitioner.assign(f"e{i}") for i in range(9)]
        assert shards == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_make_partitioner_validates(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            make_partitioner("alphabetical", 2)
        with pytest.raises(ValueError, match="covers 2 shards"):
            make_partitioner(HashPartitioner(2), 3)


class TestShardedSnapshot:
    def test_save_load_round_trip(self, syn, tmp_path):
        sharded = ShardedEngine(
            clone_dataset(syn),
            num_shards=3,
            partitioner="round_robin",
            num_hashes=64,
            seed=11,
        ).build()
        sharded.save(tmp_path / "snap")
        restored = ShardedEngine.load(tmp_path / "snap")
        assert restored.num_shards == 3
        assert restored.partitioner.kind == "round_robin"
        assert restored.num_entities == sharded.num_entities
        for query in list(syn.entities)[:5]:
            assert restored.top_k(query, k=10).items == sharded.top_k(query, k=10).items

    def test_loaded_deployment_supports_updates(self, syn, tmp_path):
        sharded = ShardedEngine(clone_dataset(syn), num_shards=2, num_hashes=64, seed=11).build()
        sharded.save(tmp_path / "snap")
        restored = ShardedEngine.load(tmp_path / "snap")
        base_units = syn.hierarchy.base_units
        records = [PresenceInstance("post-restore", base_units[0], 0, 3)]
        assert sharded.add_records(records) == restored.add_records(records)
        query = list(syn.entities)[0]
        assert restored.top_k(query, k=10).items == sharded.top_k(query, k=10).items

    def test_resave_with_fewer_shards_drops_stale_directories(self, small_dataset, tmp_path):
        target = tmp_path / "snap"
        ShardedEngine(clone_dataset(small_dataset), num_shards=4, num_hashes=16).build().save(
            target
        )
        assert (target / "shard-03").is_dir()
        ShardedEngine(clone_dataset(small_dataset), num_shards=2, num_hashes=16).build().save(
            target
        )
        assert not (target / "shard-02").exists()
        assert not (target / "shard-03").exists()
        restored = ShardedEngine.load(target)
        assert restored.num_shards == 2
        assert restored.num_entities == small_dataset.num_entities

    def test_out_of_range_round_robin_cursor_fails_at_load(self, small_dataset, tmp_path):
        import json

        from repro.storage.snapshot import SnapshotError

        target = tmp_path / "snap"
        ShardedEngine(
            clone_dataset(small_dataset), num_shards=2, partitioner="round_robin", num_hashes=16
        ).build().save(target)
        manifest_path = target / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["partitioner"]["next_shard"] = 7
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="invalid sharded snapshot manifest"):
            ShardedEngine.load(target)

    def test_swapped_shard_from_other_deployment_fails_loudly(self, syn, tmp_path):
        from repro.storage.snapshot import SnapshotError

        import shutil

        ShardedEngine(clone_dataset(syn), num_shards=2, num_hashes=64, seed=11).build().save(
            tmp_path / "ours"
        )
        ShardedEngine(clone_dataset(syn), num_shards=2, num_hashes=32, seed=4).build().save(
            tmp_path / "theirs"
        )
        shutil.rmtree(tmp_path / "ours" / "shard-01")
        shutil.copytree(tmp_path / "theirs" / "shard-01", tmp_path / "ours" / "shard-01")
        with pytest.raises(SnapshotError, match="different engine config"):
            ShardedEngine.load(tmp_path / "ours")

    def test_single_snapshot_rejected_by_sharded_load(self, small_engine, tmp_path):
        from repro.storage.snapshot import SnapshotError

        small_engine.save(tmp_path / "snap")
        with pytest.raises(SnapshotError, match="TraceQueryEngine.load"):
            ShardedEngine.load(tmp_path / "snap")

    def test_sharded_snapshot_rejected_by_engine_load(self, small_dataset, tmp_path):
        from repro.storage.snapshot import SnapshotError

        sharded = ShardedEngine(clone_dataset(small_dataset), num_shards=2, num_hashes=16).build()
        sharded.save(tmp_path / "snap")
        with pytest.raises(SnapshotError, match="ShardedEngine.load"):
            TraceQueryEngine.load(tmp_path / "snap")
