"""Equivalence suite: the bulk pipeline vs the per-entity path.

The vectorised bulk-signature pipeline and the batch query executor are pure
performance features: they must be *bitwise-identical* (signatures) and
*result-identical including tie-breaks* (top-k) to the per-entity/serial
paths.  This suite pins that guarantee with property-style checks over
seeded-random datasets across hierarchy shapes, plus the edge cases that
historically break vectorised rewrites: empty traces, a single entity,
horizon = 1, and irregular (mixed fan-out) hierarchies.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import (
    BatchTopKExecutor,
    PresenceInstance,
    SpatialHierarchy,
    TraceDataset,
    TraceQueryEngine,
)
from repro.core.hashing import HierarchicalHashFamily
from repro.core.signatures import SignatureComputer
from repro.traces.events import STCell


# ----------------------------------------------------------------------
# Random dataset generation
# ----------------------------------------------------------------------
def irregular_hierarchy() -> SpatialHierarchy:
    """A 3-level sp-index with mixed fan-outs (exercises the grouped plan)."""
    parents = {
        "r0": None,
        "r1": None,
        "r0a": "r0",
        "r0b": "r0",
        "r0c": "r0",
        "r1a": "r1",
        # r0a has 1 base child, r0b has 3, r0c has 2, r1a has 4.
        "v0": "r0a",
        "v1": "r0b",
        "v2": "r0b",
        "v3": "r0b",
        "v4": "r0c",
        "v5": "r0c",
        "v6": "r1a",
        "v7": "r1a",
        "v8": "r1a",
        "v9": "r1a",
    }
    return SpatialHierarchy.from_parent_map(parents)


HIERARCHIES = {
    "regular-3level": lambda: SpatialHierarchy.regular([2, 2, 2], prefix="h"),
    "regular-2level": lambda: SpatialHierarchy.regular([3, 4], prefix="g"),
    "flat-1level": lambda: SpatialHierarchy.regular([6], prefix="f"),
    "deep-4level": lambda: SpatialHierarchy.regular([2, 2, 2, 2], prefix="d"),
    "irregular": irregular_hierarchy,
}


def random_dataset(
    hierarchy: SpatialHierarchy,
    horizon: int,
    num_entities: int,
    seed: int,
    include_empty: bool = False,
) -> TraceDataset:
    """A seeded-random dataset over ``hierarchy``."""
    rng = random.Random(seed)
    dataset = TraceDataset(hierarchy, horizon=horizon)
    base_units = hierarchy.base_units
    for index in range(num_entities):
        entity = f"e{index}"
        for _ in range(rng.randint(1, 8)):
            start = rng.randrange(horizon)
            duration = rng.randint(1, min(3, horizon - start) or 1)
            dataset.add_record(entity, rng.choice(base_units), start, duration=duration)
    if include_empty:
        dataset.replace_trace("ghost", [])
    return dataset


def both_signature_sets(dataset: TraceDataset, num_hashes: int, seed: int):
    """Signatures from a cold per-entity path and a cold bulk path."""
    horizon = max(dataset.horizon, 1)
    per_family = HierarchicalHashFamily(
        dataset.hierarchy, horizon=horizon, num_hashes=num_hashes, seed=seed
    )
    per = SignatureComputer(per_family).signatures_for_dataset(dataset, method="per_entity")
    bulk_family = HierarchicalHashFamily(
        dataset.hierarchy, horizon=horizon, num_hashes=num_hashes, seed=seed
    )
    bulk = SignatureComputer(bulk_family).bulk_signature_matrices(dataset)
    return per, bulk


# ----------------------------------------------------------------------
# Signature equivalence
# ----------------------------------------------------------------------
class TestBulkSignatureEquivalence:
    @pytest.mark.parametrize("shape", sorted(HIERARCHIES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_datasets_bitwise_equal(self, shape, seed):
        hierarchy = HIERARCHIES[shape]()
        dataset = random_dataset(hierarchy, horizon=24, num_entities=25, seed=seed)
        per, bulk = both_signature_sets(dataset, num_hashes=17, seed=seed)
        assert set(per) == set(bulk)
        for entity in per:
            assert np.array_equal(per[entity], bulk[entity]), entity

    def test_empty_trace_entity(self, small_hierarchy):
        dataset = random_dataset(
            small_hierarchy, horizon=12, num_entities=5, seed=3, include_empty=True
        )
        per, bulk = both_signature_sets(dataset, num_hashes=8, seed=3)
        assert np.array_equal(per["ghost"], bulk["ghost"])
        sentinel = small_hierarchy.num_base_units * 12
        assert (bulk["ghost"] == sentinel).all()
        for entity in per:
            assert np.array_equal(per[entity], bulk[entity]), entity

    def test_single_entity(self, small_hierarchy):
        dataset = TraceDataset(small_hierarchy, horizon=10)
        dataset.add_record("only", small_hierarchy.base_units[0], 2, duration=3)
        per, bulk = both_signature_sets(dataset, num_hashes=5, seed=9)
        assert np.array_equal(per["only"], bulk["only"])

    def test_horizon_one(self, small_hierarchy):
        dataset = TraceDataset(small_hierarchy, horizon=1)
        for index, unit in enumerate(small_hierarchy.base_units):
            dataset.add_record(f"e{index}", unit, 0)
        per, bulk = both_signature_sets(dataset, num_hashes=7, seed=4)
        for entity in per:
            assert np.array_equal(per[entity], bulk[entity]), entity

    def test_entity_subset_selection(self, small_dataset):
        horizon = max(small_dataset.horizon, 1)
        family = HierarchicalHashFamily(
            small_dataset.hierarchy, horizon=horizon, num_hashes=6, seed=1
        )
        computer = SignatureComputer(family)
        subset = ("a", "d")
        bulk = computer.bulk_signature_matrices(small_dataset, subset)
        assert tuple(bulk) == subset
        for entity in subset:
            expected = computer.signature_matrix(small_dataset.cell_sequence(entity))
            assert np.array_equal(bulk[entity], expected)

    def test_signatures_for_dataset_rejects_unknown_method(self, small_dataset):
        family = HierarchicalHashFamily(
            small_dataset.hierarchy, horizon=48, num_hashes=4, seed=0
        )
        with pytest.raises(ValueError, match="unknown signature method"):
            SignatureComputer(family).signatures_for_dataset(small_dataset, method="magic")


class TestBulkHashKernel:
    def test_hash_cells_bulk_matches_hash_matrix(self):
        hierarchy = irregular_hierarchy()
        dataset = random_dataset(hierarchy, horizon=16, num_entities=10, seed=7)
        family = HierarchicalHashFamily(hierarchy, horizon=16, num_hashes=11, seed=2)
        cells = []
        for entity in dataset.entities:
            for level_cells in dataset.cell_sequence(entity).levels:
                cells.extend(level_cells)
        cells = list(dict.fromkeys(cells))
        reference = family.hash_matrix(cells)
        cold = HierarchicalHashFamily(hierarchy, horizon=16, num_hashes=11, seed=2)
        assert np.array_equal(cold.hash_cells_bulk(cells), reference)
        # int32 output carries the same values.
        cold2 = HierarchicalHashFamily(hierarchy, horizon=16, num_hashes=11, seed=2)
        assert np.array_equal(cold2.hash_cells_bulk(cells, out_dtype=np.int32), reference)

    def test_warm_cache_rows_match_per_cell_path(self, small_hierarchy):
        family = HierarchicalHashFamily(small_hierarchy, horizon=8, num_hashes=9, seed=5)
        cells = [STCell(1, small_hierarchy.base_units[0]), STCell(1, "h1_0"), STCell(3, "h2_1_1")]
        warmed = family.warm_cache(cells)
        assert warmed == len(cells)
        reference = HierarchicalHashFamily(small_hierarchy, horizon=8, num_hashes=9, seed=5)
        for cell in cells:
            assert np.array_equal(family.hash_cell(cell), reference.hash_cell(cell))
        # Already-cached cells are not re-hashed.
        assert family.warm_cache(cells) == 0

    def test_empty_batch(self, small_hierarchy):
        family = HierarchicalHashFamily(small_hierarchy, horizon=8, num_hashes=3, seed=0)
        assert family.hash_cells_bulk([]).shape == (0, 3)
        assert family.warm_cache([]) == 0


# ----------------------------------------------------------------------
# Engine determinism: bulk vs per-entity builds
# ----------------------------------------------------------------------
class TestBuildDeterminism:
    @pytest.mark.parametrize("shape", ["regular-3level", "irregular"])
    def test_same_index_regardless_of_path(self, shape):
        hierarchy = HIERARCHIES[shape]()
        dataset = random_dataset(hierarchy, horizon=20, num_entities=30, seed=11)
        bulk_engine = TraceQueryEngine(dataset, num_hashes=16, seed=7).build()
        per_engine = TraceQueryEngine(
            dataset, num_hashes=16, seed=7, bulk_signatures=False
        ).build()
        assert bulk_engine.index_size_bytes() == per_engine.index_size_bytes()
        for entity in dataset.entities:
            assert np.array_equal(
                bulk_engine.tree.signature_of(entity), per_engine.tree.signature_of(entity)
            )
        # Identical leaf partitions: same entities grouped in the same order.
        bulk_leaves = [tuple(leaf.entities) for leaf in bulk_engine.tree.leaves()]
        per_leaves = [tuple(leaf.entities) for leaf in per_engine.tree.leaves()]
        assert bulk_leaves == per_leaves
        assert bulk_engine.tree.leaf_order() == per_engine.tree.leaf_order()


# ----------------------------------------------------------------------
# Batch executor equivalence
# ----------------------------------------------------------------------
class TestBatchExecutorEquivalence:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_matches_serial_top_k_for_every_entity(self, workers):
        hierarchy = SpatialHierarchy.regular([2, 2, 2], prefix="h")
        dataset = random_dataset(hierarchy, horizon=24, num_entities=20, seed=21)
        engine = TraceQueryEngine(dataset, num_hashes=24, seed=3).build()
        queries = list(dataset.entities)
        serial = [engine.top_k(entity, k=5) for entity in queries]
        batch = engine.top_k_batch(queries, k=5, workers=workers)
        assert batch.num_queries == len(queries)
        assert batch.workers == workers
        for serial_result, batch_result in zip(serial, batch.results):
            assert serial_result.query_entity == batch_result.query_entity
            # Identical ranked (entity, score) pairs -- ties included.
            assert serial_result.items == batch_result.items

    def test_executor_aggregates(self, small_engine):
        executor = BatchTopKExecutor(small_engine.searcher, workers=0)
        report = executor.run(list(small_engine.dataset.entities), k=2)
        assert report.num_queries == small_engine.dataset.num_entities
        assert len(report) == report.num_queries
        assert report.wall_seconds > 0.0
        assert report.total_entities_scored == sum(
            r.stats.entities_scored for r in report.results
        )
        assert 0.0 <= report.mean_pruning_effectiveness <= 1.0
        assert report.queries_per_second > 0.0
        # The second batch finds everything already cached.
        assert executor.run(list(small_engine.dataset.entities), k=2).warmed_cells == 0

    def test_rejects_negative_workers(self, small_engine):
        with pytest.raises(ValueError, match="workers"):
            BatchTopKExecutor(small_engine.searcher, workers=-1)
        with pytest.raises(ValueError, match="workers"):
            small_engine.batch_executor().run(["a"], 1, workers=-2)

    def test_engine_top_k_many_routes_through_executor(self, small_engine):
        results = small_engine.top_k_many(["a", "d"], k=2, workers=2)
        assert [r.query_entity for r in results] == ["a", "d"]
        serial = [small_engine.top_k("a", k=2), small_engine.top_k("d", k=2)]
        for got, expected in zip(results, serial):
            assert got.items == expected.items


# ----------------------------------------------------------------------
# Incremental updates through the bulk path (Figure 7.9)
# ----------------------------------------------------------------------
class TestBulkUpdates:
    def _update_batch(self, dataset, count=8):
        base_units = dataset.hierarchy.base_units
        horizon = max(dataset.horizon, 2)
        existing = list(dataset.entities[: count // 2])
        fresh = [f"new-{index}" for index in range(count - len(existing))]
        records = []
        for index, entity in enumerate(existing + fresh):
            unit = base_units[(index * 3) % len(base_units)]
            start = (index * 5) % (horizon - 1)
            records.append(PresenceInstance(entity, unit, start, start + 1))
        return records

    @pytest.mark.parametrize("bulk", [True, False])
    def test_add_records_matches_full_rebuild(self, bulk):
        hierarchy = SpatialHierarchy.regular([2, 3, 2], prefix="u")
        dataset = random_dataset(hierarchy, horizon=20, num_entities=15, seed=33)
        engine = TraceQueryEngine(
            dataset, num_hashes=12, seed=5, bulk_signatures=bulk
        ).build()
        affected = engine.add_records(self._update_batch(dataset))
        assert len(affected) == 8
        rebuilt = TraceQueryEngine(dataset, num_hashes=12, seed=5).build()
        for entity in dataset.entities:
            assert np.array_equal(
                engine.tree.signature_of(entity), rebuilt.tree.signature_of(entity)
            ), entity
        assert engine.index_size_bytes() == rebuilt.index_size_bytes()

    def test_bulk_and_per_entity_updates_agree(self):
        hierarchy = SpatialHierarchy.regular([2, 2, 2], prefix="h")
        seed_data = random_dataset(hierarchy, horizon=16, num_entities=12, seed=44)
        copies = []
        for bulk in (True, False):
            dataset = TraceDataset(hierarchy, horizon=16)
            for entity in seed_data.entities:
                for presence in seed_data.trace(entity):
                    dataset.add_presence(presence)
            engine = TraceQueryEngine(
                dataset, num_hashes=10, seed=2, bulk_signatures=bulk
            ).build()
            engine.add_records(self._update_batch(dataset))
            copies.append(engine)
        bulk_engine, per_engine = copies
        for entity in bulk_engine.dataset.entities:
            assert np.array_equal(
                bulk_engine.tree.signature_of(entity), per_engine.tree.signature_of(entity)
            )
        assert [tuple(l.entities) for l in bulk_engine.tree.leaves()] == [
            tuple(l.entities) for l in per_engine.tree.leaves()
        ]

    def test_refresh_entities_uses_batch_resign(self, small_dataset):
        engine = TraceQueryEngine(small_dataset, num_hashes=16, seed=1).build()
        base = small_dataset.hierarchy.base_units[5]
        small_dataset.add_record("d", base, 40)
        small_dataset.add_record("e", base, 41)
        engine.refresh_entities(["d", "e"])
        rebuilt = TraceQueryEngine(small_dataset, num_hashes=16, seed=1).build()
        for entity in ("d", "e"):
            assert np.array_equal(
                engine.tree.signature_of(entity), rebuilt.tree.signature_of(entity)
            )
