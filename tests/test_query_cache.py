"""The LRU query-result cache and its engine/sharded-engine wiring.

Correctness contract: a cache hit returns the very result a fresh search
would produce, because (a) keys include the config fingerprint and (b)
every mutation path clears the cache.
"""

import pytest

from repro import (
    EngineConfig,
    PresenceInstance,
    QueryResultCache,
    ShardedEngine,
    TraceQueryEngine,
)


class TestQueryResultCache:
    def test_bounded_lru_eviction(self):
        cache = QueryResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a", the least recently used
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert len(cache) == 2
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = QueryResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # "b" becomes the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_direct_get_returns_a_copy(self):
        # The copy-on-hit contract must hold for *direct* get() callers, not
        # only fetch_or_compute (regression: get() used to hand out the live
        # stored object, so any caller mutating its hit poisoned later hits).
        cache = QueryResultCache(4)
        cache.put("a", [1, 2, 3])
        hit = cache.get("a")
        hit.append(99)
        assert cache.get("a") == [1, 2, 3]
        # A fetch_or_compute hit stays independent too (single copy, in get).
        fetched = cache.fetch_or_compute("a", list)
        fetched.clear()
        assert cache.get("a") == [1, 2, 3]

    def test_put_refreshes_existing_key(self):
        cache = QueryResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: "b" is now LRU
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_clear_and_stats(self):
        cache = QueryResultCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.invalidations == 1
        assert cache.stats.hit_rate == 0.5

    def test_size_validation(self):
        with pytest.raises(ValueError, match="max_entries"):
            QueryResultCache(0)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="query_cache_size"):
            EngineConfig(query_cache_size=-1)


class TestEngineIntegration:
    @pytest.fixture
    def cached_engine(self, small_dataset, small_measure):
        return TraceQueryEngine(
            small_dataset,
            measure=small_measure,
            num_hashes=32,
            seed=5,
            query_cache_size=8,
        ).build()

    def test_repeat_query_served_from_cache(self, cached_engine):
        first = cached_engine.top_k("a", k=3)
        second = cached_engine.top_k("a", k=3)
        assert second.items == first.items
        assert second.stats.__dict__ == first.stats.__dict__
        assert cached_engine.query_cache.stats.hits == 1

    def test_mutating_a_result_does_not_poison_the_cache(self, cached_engine):
        first = cached_engine.top_k("a", k=3)
        pristine = list(first.items)
        first.items.reverse()
        second = cached_engine.top_k("a", k=3)
        assert second.items == pristine
        # And mutating a *hit* leaves later hits untouched too.
        second.items.clear()
        assert cached_engine.top_k("a", k=3).items == pristine

    def test_batch_path_shares_the_cache(self, cached_engine):
        single = cached_engine.top_k("a", k=3)
        batch = cached_engine.top_k_batch(["a", "b"], k=3)
        # "a" was a hit, only "b" was computed.
        assert cached_engine.query_cache.stats.hits == 1
        assert len(cached_engine.query_cache) == 2
        assert batch.results[0].items == single.items
        assert [r.query_entity for r in batch.results] == ["a", "b"]
        # A repeat batch is served entirely from the cache.
        again = cached_engine.top_k_batch(["a", "b"], k=3)
        assert [r.items for r in again.results] == [r.items for r in batch.results]
        assert cached_engine.query_cache.stats.hits == 3

    def test_batch_results_match_uncached_engine(self, cached_engine, small_dataset, small_measure):
        uncached = TraceQueryEngine(
            small_dataset, measure=small_measure, num_hashes=32, seed=5
        ).build()
        queries = ["a", "b", "a", "d"]
        cached_batch = cached_engine.top_k_batch(queries, k=3)
        plain_batch = uncached.top_k_batch(queries, k=3)
        assert [r.items for r in cached_batch.results] == [r.items for r in plain_batch.results]
        assert [r.query_entity for r in cached_batch.results] == queries

    def test_distinct_parameters_get_distinct_entries(self, cached_engine):
        cached_engine.top_k("a", k=3)
        cached_engine.top_k("a", k=2)
        cached_engine.top_k("a", k=3, approximation=0.1)
        assert len(cached_engine.query_cache) == 3
        assert cached_engine.query_cache.stats.hits == 0

    def test_cache_disabled_by_default(self, small_engine):
        assert small_engine.query_cache is None
        first = small_engine.top_k("a", k=3)
        second = small_engine.top_k("a", k=3)
        assert first is not second
        assert first.items == second.items

    def test_custom_fetcher_bypasses_cache(self, cached_engine, small_dataset):
        fetches = []

        def fetcher(entity):
            fetches.append(entity)
            return small_dataset.cell_sequence(entity)

        cached_engine.top_k("a", k=3)
        result = cached_engine.top_k("a", k=3, sequence_fetcher=fetcher)
        assert fetches  # the fetcher really ran: no cache short-circuit
        assert len(cached_engine.query_cache) == 1
        assert result.items == cached_engine.top_k("a", k=3).items

    @pytest.mark.parametrize("mutate", ["add_records", "remove_entity", "refresh_entities"])
    def test_mutations_invalidate(self, cached_engine, small_hierarchy, mutate):
        cached_engine.top_k("a", k=3)
        assert len(cached_engine.query_cache) == 1
        base = small_hierarchy.base_units
        if mutate == "add_records":
            cached_engine.add_records([PresenceInstance("z", base[0], 0, 2)])
        elif mutate == "remove_entity":
            cached_engine.remove_entity("e")
        else:
            cached_engine.refresh_entities(["a"])
        assert len(cached_engine.query_cache) == 0
        # The next query reflects the mutation, not the stale entry.
        fresh = cached_engine.top_k("a", k=3)
        assert fresh.items == cached_engine.top_k("a", k=3).items
        assert cached_engine.query_cache.stats.hits == 1

    def test_cached_result_matches_fresh_search_after_invalidation(
        self, cached_engine, small_hierarchy
    ):
        before = cached_engine.top_k("a", k=3)
        base = small_hierarchy.base_units
        # Give "c" heavy co-presence with "a": the cached ranking is stale.
        cached_engine.add_records(
            [PresenceInstance("c", base[0], t, t + 2) for t in range(0, 20, 2)]
        )
        after = cached_engine.top_k("a", k=3)
        assert after.items != before.items
        assert after.entities[0] in ("b", "c")


class TestShardedIntegration:
    """The sharded engine caches *per-shard partial* results.

    One ``top_k`` over N shards costs N cache entries/lookups, and an update
    routed to one shard invalidates only that shard's entries (plus entries
    whose query entity was updated) -- the other shards' partials survive.
    """

    @pytest.fixture
    def cached_sharded(self, small_dataset, small_measure):
        return ShardedEngine(
            small_dataset,
            measure=small_measure,
            num_shards=2,
            num_hashes=32,
            seed=5,
            query_cache_size=8,
        ).build()

    def test_sharded_cache_hits_and_invalidation(self, cached_sharded, small_dataset):
        sharded = cached_sharded
        first = sharded.top_k("a", k=3)
        assert sharded.top_k("a", k=3).items == first.items
        # One hit per shard partial: two shards, so two hits.
        assert sharded.query_cache.stats.hits == 2
        assert len(sharded.query_cache) == 2
        # Shards never cache on their own: the sharded layer owns the cache.
        assert all(shard.query_cache is None for shard in sharded.shards)
        sharded.add_records(
            [PresenceInstance("a", small_dataset.hierarchy.base_units[1], 40, 42)]
        )
        # "a" was updated, so every partial about "a" is dropped.
        assert len(sharded.query_cache) == 0
        after = sharded.top_k("a", k=3)
        assert sharded.query_cache.stats.hits == 2  # recomputed, not served stale
        fresh = ShardedEngine(
            small_dataset, measure=sharded.measure, num_shards=2, num_hashes=32, seed=5
        ).build()
        assert after.items == fresh.top_k("a", k=3).items

    def test_update_preserves_unaffected_shard_partials(self, cached_sharded, small_dataset):
        sharded = cached_sharded
        sharded.top_k("a", k=3)
        sharded.top_k("d", k=3)
        assert len(sharded.query_cache) == 4  # two queries x two shard partials
        # Update an entity that is neither "a" nor "d": only its owning
        # shard's partials drop; the other shard's stay warm.
        victim = "e"
        assert victim not in ("a", "d")
        shard_of_victim = sharded.shard_of(victim)
        sharded.add_records(
            [PresenceInstance(victim, small_dataset.hierarchy.base_units[2], 40, 41)]
        )
        surviving = sharded.query_cache.keys()
        assert len(surviving) == 2
        assert all(key[0] != shard_of_victim for key in surviving)
        # Served answers after partial invalidation still match from-scratch.
        fresh = ShardedEngine(
            small_dataset, measure=sharded.measure, num_shards=2, num_hashes=32, seed=5
        ).build()
        for query in ("a", "d"):
            assert sharded.top_k(query, k=3).items == fresh.top_k(query, k=3).items

    def test_query_entity_update_drops_its_partials_on_every_shard(
        self, cached_sharded, small_dataset
    ):
        sharded = cached_sharded
        sharded.top_k("a", k=3)
        sharded.top_k("b", k=3)
        own_shard = sharded.shard_of("a")
        sharded.add_records(
            [PresenceInstance("a", small_dataset.hierarchy.base_units[3], 44, 45)]
        )
        # "a" partials vanish on *both* shards (its query sequence changed);
        # "b" partials survive only on the shard "a" does not live on.
        for key in sharded.query_cache.keys():
            assert key[1] == "b" and key[0] != own_shard
