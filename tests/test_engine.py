"""Tests for the TraceQueryEngine facade (repro.core.engine)."""

import pytest

from repro import EngineConfig, HierarchicalADM, PresenceInstance, TraceQueryEngine
from repro.baselines import BruteForceTopK


class TestConfiguration:
    def test_defaults(self):
        config = EngineConfig()
        assert config.num_hashes == 256
        assert config.bound_mode == "lift"

    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            EngineConfig(num_hashes=0)

    def test_use_full_requires_store_full(self):
        with pytest.raises(ValueError):
            EngineConfig(use_full_signatures=True, store_full_signatures=False)

    def test_invalid_bound_mode(self):
        with pytest.raises(ValueError):
            EngineConfig(bound_mode="sometimes")

    def test_keyword_overrides(self, small_dataset):
        engine = TraceQueryEngine(small_dataset, num_hashes=16, seed=9, bound_mode="per_level")
        assert engine.config.num_hashes == 16
        assert engine.config.seed == 9
        assert engine.config.bound_mode == "per_level"

    def test_unknown_keyword_rejected(self, small_dataset):
        with pytest.raises(TypeError, match="unknown engine options"):
            TraceQueryEngine(small_dataset, turbo=True)

    def test_explicit_config_without_overrides_is_used_verbatim(self, small_dataset):
        config = EngineConfig(num_hashes=24, seed=4, bound_mode="per_level")
        engine = TraceQueryEngine(small_dataset, config=config)
        assert engine.config is config

    def test_overrides_win_but_explicit_config_fields_survive(self, small_dataset):
        # Regression: overrides used to rebuild the config from scratch,
        # silently resetting any field not mentioned in the kwargs.
        config = EngineConfig(
            num_hashes=24,
            seed=4,
            bound_mode="per_level",
            store_full_signatures=True,
            bulk_signatures=False,
            batch_workers=3,
        )
        engine = TraceQueryEngine(small_dataset, config=config, num_hashes=48)
        assert engine.config.num_hashes == 48  # the override wins
        assert engine.config.seed == 4  # everything else survives
        assert engine.config.bound_mode == "per_level"
        assert engine.config.store_full_signatures is True
        assert engine.config.bulk_signatures is False
        assert engine.config.batch_workers == 3
        # The caller's config object is never mutated.
        assert config.num_hashes == 24

    def test_unknown_keyword_rejected_with_explicit_config(self, small_dataset):
        with pytest.raises(TypeError, match="unknown engine options.*turbo"):
            TraceQueryEngine(small_dataset, config=EngineConfig(), turbo=True)

    def test_override_values_are_still_validated(self, small_dataset):
        with pytest.raises(ValueError):
            TraceQueryEngine(small_dataset, config=EngineConfig(), num_hashes=0)

    def test_batch_knob_defaults_and_overrides(self, small_dataset):
        assert EngineConfig().bulk_signatures is True
        assert EngineConfig().batch_workers == 0
        engine = TraceQueryEngine(small_dataset, bulk_signatures=False, batch_workers=2)
        assert engine.config.bulk_signatures is False
        assert engine.config.batch_workers == 2

    def test_negative_batch_workers_rejected(self, small_dataset):
        with pytest.raises(ValueError, match="batch_workers"):
            EngineConfig(batch_workers=-1)
        with pytest.raises(ValueError, match="batch_workers"):
            TraceQueryEngine(small_dataset, batch_workers=-1)

    def test_with_overrides_returns_new_config(self):
        config = EngineConfig(seed=7)
        replaced = config.with_overrides(num_hashes=12)
        assert replaced is not config
        assert replaced.num_hashes == 12
        assert replaced.seed == 7
        with pytest.raises(TypeError, match="unknown engine options"):
            config.with_overrides(nope=1)

    def test_default_measure_matches_hierarchy_depth(self, small_dataset):
        engine = TraceQueryEngine(small_dataset, num_hashes=8)
        assert isinstance(engine.measure, HierarchicalADM)
        assert engine.measure.num_levels == small_dataset.num_levels


class TestLifecycle:
    def test_not_built_errors(self, small_dataset):
        engine = TraceQueryEngine(small_dataset, num_hashes=8)
        assert not engine.is_built
        with pytest.raises(RuntimeError, match="build"):
            engine.top_k("a", k=1)
        with pytest.raises(RuntimeError):
            _ = engine.tree

    def test_build_returns_self_and_sets_flags(self, small_dataset):
        engine = TraceQueryEngine(small_dataset, num_hashes=8)
        assert engine.build() is engine
        assert engine.is_built
        assert engine.last_build_seconds >= 0.0
        assert engine.tree.num_entities == small_dataset.num_entities

    def test_build_is_deterministic_given_seed(self, small_dataset):
        first = TraceQueryEngine(small_dataset, num_hashes=16, seed=5).build()
        second = TraceQueryEngine(small_dataset, num_hashes=16, seed=5).build()
        for entity in small_dataset.entities:
            assert (first.tree.signature_of(entity) == second.tree.signature_of(entity)).all()

    def test_index_size_positive(self, small_engine):
        assert small_engine.index_size_bytes() > 0

    def test_repr_mentions_state(self, small_dataset):
        engine = TraceQueryEngine(small_dataset, num_hashes=8)
        assert "not built" in repr(engine)
        engine.build()
        assert "not built" not in repr(engine)


class TestQueries:
    def test_top_k_many(self, small_engine):
        results = small_engine.top_k_many(["a", "d"], k=2)
        assert len(results) == 2
        assert results[0].query_entity == "a"

    def test_results_match_brute_force_on_fixture(self, small_engine):
        oracle = BruteForceTopK(small_engine.dataset, small_engine.measure)
        for query in small_engine.dataset.entities:
            indexed = small_engine.top_k(query, k=3)
            exact = oracle.search(query, k=3)
            assert indexed.entities == exact.entities


class TestIncrementalMaintenance:
    def test_add_records_new_entity_queryable(self, small_dataset):
        engine = TraceQueryEngine(small_dataset, num_hashes=16, seed=1).build()
        base = small_dataset.hierarchy.base_units[0]
        # A newcomer shadowing a's favourite venue in the same hours.
        records = [PresenceInstance("newcomer", base, t, t + 2) for t in range(0, 20, 2)]
        affected = engine.add_records(records)
        assert affected == ["newcomer"]
        assert "newcomer" in engine.tree
        result = engine.top_k("a", k=2)
        assert "newcomer" in result.entities

    def test_add_records_existing_entity_rescored(self, small_dataset):
        engine = TraceQueryEngine(small_dataset, num_hashes=16, seed=1).build()
        base = small_dataset.hierarchy.base_units[0]
        before = engine.top_k("c", k=3)
        records = [PresenceInstance("c", base, t, t + 2) for t in range(0, 20, 2)]
        engine.add_records(records)
        after = engine.top_k("c", k=3)
        assert "b" in after.entities or "a" in after.entities
        assert after.scores[0] >= (before.scores[0] if before.scores else 0.0)

    def test_add_records_keeps_index_consistent_with_rebuild(self, small_dataset):
        engine = TraceQueryEngine(small_dataset, num_hashes=16, seed=1).build()
        base = small_dataset.hierarchy.base_units[3]
        engine.add_records([PresenceInstance("a", base, 44, 46)])
        rebuilt = TraceQueryEngine(small_dataset, num_hashes=16, seed=1).build()
        assert (engine.tree.signature_of("a") == rebuilt.tree.signature_of("a")).all()

    def test_refresh_entities(self, small_dataset):
        engine = TraceQueryEngine(small_dataset, num_hashes=16, seed=1).build()
        base = small_dataset.hierarchy.base_units[6]
        small_dataset.add_record("e", base, 45)
        engine.refresh_entities(["e"])
        rebuilt = TraceQueryEngine(small_dataset, num_hashes=16, seed=1).build()
        assert (engine.tree.signature_of("e") == rebuilt.tree.signature_of("e")).all()

    def test_remove_entity(self, small_dataset):
        engine = TraceQueryEngine(small_dataset, num_hashes=16, seed=1).build()
        engine.remove_entity("b")
        assert "b" not in small_dataset
        assert "b" not in engine.tree
        result = engine.top_k("a", k=3)
        assert "b" not in result.entities

    def test_add_records_before_build_fails(self, small_dataset):
        engine = TraceQueryEngine(small_dataset, num_hashes=16)
        base = small_dataset.hierarchy.base_units[0]
        with pytest.raises(RuntimeError):
            engine.add_records([PresenceInstance("x", base, 0, 1)])
