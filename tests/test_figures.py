"""Smoke and shape tests for the per-figure experiment generators.

Each figure generator is run at the tiny scale and checked for the structural
properties its benchmark and EXPERIMENTS.md rely on (columns present, sweeps
covered, values in range).  Quantitative trends are asserted only where they
are robust at tiny scale.
"""

import pytest

from repro.experiments import figures
from repro.experiments.harness import SCALES

TINY = SCALES["tiny"]


@pytest.fixture(scope="module", autouse=True)
def _warm_workload_cache():
    """Generate the two tiny datasets once for the whole module."""
    from repro.experiments.workloads import syn_workload, wifi_workload

    syn_workload(TINY)
    wifi_workload(TINY)
    yield


class TestFigure71:
    def test_structure(self):
        result = figures.figure_7_1(scale=TINY)
        assert {"series", "dataset", "level", "entities"} <= set(result.columns())
        assert {row["dataset"] for row in result.rows} == {"SYN", "REAL(wifi)"}

    def test_ajpi_counts_monotone_over_levels(self):
        result = figures.figure_7_1(scale=TINY)
        for dataset in ("SYN", "REAL(wifi)"):
            series = result.filter(series="ajpi_counts", dataset=dataset)
            values = [row["entities"] for row in sorted(series.rows, key=lambda r: r["level"])]
            assert values == sorted(values, reverse=True)


class TestFigure72:
    def test_structure(self):
        result = figures.figure_7_2(scale=TINY, parameter_pairs=((2, 2), (5, 5)))
        assert {"dataset", "u", "v", "degree_from", "entities"} <= set(result.columns())
        assert {(row["u"], row["v"]) for row in result.rows} == {(2, 2), (5, 5)}

    def test_counts_non_negative(self):
        result = figures.figure_7_2(scale=TINY, parameter_pairs=((2, 2),))
        assert all(row["entities"] >= 0 for row in result.rows)


class TestFigure73:
    def test_structure_and_ranges(self):
        result = figures.figure_7_3(scale=TINY)
        assert {row["num_hashes"] for row in result.rows} == set(TINY.hash_sweep)
        for row in result.rows:
            assert 0.0 <= row["measured_pe"] <= 1.0
            assert 0.0 <= row["predicted_pe"] <= 1.0

    def test_predicted_pe_non_decreasing_in_hashes(self):
        result = figures.figure_7_3(scale=TINY)
        for dataset in ("SYN", "REAL(wifi)"):
            series = sorted(
                result.filter(dataset=dataset).rows, key=lambda row: row["num_hashes"]
            )
            predicted = [row["predicted_pe"] for row in series]
            assert all(b >= a - 1e-9 for a, b in zip(predicted, predicted[1:]))


class TestFigure74:
    def test_subset_of_parameters(self):
        result = figures.figure_7_4(scale=TINY, parameters=["alpha"], sweeps={"alpha": (0.4, 1.2)})
        assert {row["value"] for row in result.rows} == {0.4, 1.2}
        assert {row["k"] for row in result.rows} == set(TINY.k_values)
        for row in result.rows:
            assert 0.0 <= row["checked_fraction"] <= 1.0

    def test_unknown_parameter_rejected(self):
        with pytest.raises(KeyError):
            figures.figure_7_4(scale=TINY, parameters=["not-a-parameter"])


class TestFigure75:
    def test_structure(self):
        result = figures.figure_7_5(scale=TINY, u_values=(2, 5), v_values=(2, 5))
        assert len(result.rows) == 2 * 2 * 2  # datasets x u x v
        for row in result.rows:
            assert 0.0 <= row["pe"] <= 1.0


class TestFigure76:
    def test_structure_and_monotone_cost(self):
        result = figures.figure_7_6(scale=TINY, memory_fractions=(0.1, 1.0))
        assert {row["memory_fraction"] for row in result.rows} == {0.1, 1.0}
        for dataset in ("SYN", "REAL(wifi)"):
            for k in TINY.k_values:
                series = result.filter(dataset=dataset, k=k).rows
                by_fraction = {row["memory_fraction"]: row["simulated_ms"] for row in series}
                assert by_fraction[1.0] <= by_fraction[0.1]


class TestFigure77:
    def test_structure(self):
        result = figures.figure_7_7(scale=TINY, k_values=(1, 10))
        methods = {row["method"] for row in result.rows}
        assert "cluster-bitmap" in methods
        assert any(method.startswith("minsigtree") for method in methods)
        for row in result.rows:
            assert 0.0 <= row["pe"] <= 1.0


class TestFigure78:
    def test_indexing_cost_grows_with_hashes(self):
        result = figures.figure_7_8(scale=TINY)
        for dataset in ("SYN", "REAL(wifi)"):
            series = sorted(result.filter(dataset=dataset).rows, key=lambda r: r["num_hashes"])
            sizes = [row["index_bytes"] for row in series]
            times = [row["indexing_seconds"] for row in series]
            assert all(size > 0 for size in sizes)
            assert times[-1] > times[0] * 0.5  # time roughly grows (noisy at tiny scale)


class TestFigure79:
    def test_structure(self):
        result = figures.figure_7_9(scale=TINY, existing_fractions=(1.0, 0.4))
        assert {row["existing_fraction"] for row in result.rows} == {1.0, 0.4}
        assert all(row["update_seconds"] >= 0 for row in result.rows)
        assert all(row["batch_size"] > 0 for row in result.rows)


class TestAblations:
    def test_pruned_sets(self):
        result = figures.ablation_pruned_sets(scale=TINY)
        modes = {row["mode"]: row for row in result.rows}
        assert set(modes) == {"partial", "full"}
        assert modes["full"]["pe"] >= modes["partial"]["pe"] - 1e-9

    def test_grouping(self):
        result = figures.ablation_grouping(scale=TINY)
        assert {row["routing"] for row in result.rows} == {"argmax", "random"}

    def test_bound_mode(self):
        result = figures.ablation_bound_mode(scale=TINY)
        rows = {row["bound_mode"]: row for row in result.rows}
        assert rows["per_level"]["mean_recall"] == pytest.approx(1.0)
        assert rows["lift"]["mean_recall"] >= 0.8
        assert rows["lift"]["pe"] >= rows["per_level"]["pe"] - 1e-9
