"""Prometheus text exposition (format 0.0.4): render and validate.

The renderer turns a list of :class:`MetricFamily` into the plain-text
format Prometheus scrapes (``# HELP``/``# TYPE`` comments, one sample per
line, label values escaped).  The parser is the inverse used by tests and
the CI serve-smoke job to validate what ``GET /metrics`` actually serves
-- it is deliberately strict: malformed names, values, escapes, duplicate
``TYPE`` lines, or broken histogram invariants (non-cumulative buckets,
missing ``+Inf``, ``_count`` != the ``+Inf`` bucket) raise
:class:`ExpositionError`.

>>> family = MetricFamily(
...     name="repro_requests_total",
...     kind="counter",
...     help="Requests by endpoint.",
...     samples=[("", {"endpoint": "/v1/topk"}, 3.0)],
... )
>>> print(render_exposition([family]))
# HELP repro_requests_total Requests by endpoint.
# TYPE repro_requests_total counter
repro_requests_total{endpoint="/v1/topk"} 3
<BLANKLINE>
>>> parsed = parse_exposition(render_exposition([family]))
>>> parsed["repro_requests_total"]["type"]
'counter'
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "ExpositionError",
    "MetricFamily",
    "histogram_samples",
    "parse_exposition",
    "render_exposition",
]

#: A sample is ``(suffix, labels, value)``; suffix is "" for plain
#: counters/gauges or "_bucket"/"_sum"/"_count" for histogram series.
Sample = Tuple[str, Dict[str, str], float]

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_PATTERN = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_VALID_KINDS = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})


class ExpositionError(ValueError):
    """Raised when text fails to parse as valid Prometheus exposition."""


@dataclass
class MetricFamily:
    """One metric family: name, kind, help text, and its samples."""

    name: str
    kind: str
    help: str
    samples: List[Sample] = field(default_factory=list)


def _escape_help(text: str) -> str:
    """Escape a HELP string (backslash and newline only, per the spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    """Escape a label value (backslash, double-quote, newline)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Format a sample value: integral floats without the trailing ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_exposition(families: Sequence[MetricFamily]) -> str:
    """Render metric families as Prometheus text exposition 0.0.4."""
    lines: List[str] = []
    for family in families:
        if not _NAME_PATTERN.match(family.name):
            raise ValueError(f"invalid metric name {family.name!r}")
        if family.kind not in _VALID_KINDS:
            raise ValueError(f"invalid metric kind {family.kind!r}")
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for suffix, labels, value in family.samples:
            rendered_labels = ""
            if labels:
                pairs = ",".join(
                    f'{key}="{_escape_label_value(str(labels[key]))}"' for key in labels
                )
                rendered_labels = "{" + pairs + "}"
            lines.append(f"{family.name}{suffix}{rendered_labels} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def histogram_samples(
    labels: Dict[str, str],
    bucket_counts: Sequence[int],
    edges: Sequence[float],
    total: float,
    count: int,
) -> List[Sample]:
    """Build the ``_bucket``/``_sum``/``_count`` series of one histogram.

    ``bucket_counts`` are *per-bucket* (as kept by the in-process
    histograms, one slot per edge plus overflow); Prometheus buckets are
    cumulative, so the running sum is emitted with ``le`` labels ending at
    ``+Inf``.
    """
    if len(bucket_counts) != len(edges) + 1:
        raise ValueError("bucket_counts must have one slot per edge plus overflow")
    samples: List[Sample] = []
    cumulative = 0
    for edge, bucket in zip(edges, bucket_counts[:-1]):
        cumulative += bucket
        samples.append(("_bucket", {**labels, "le": f"{edge:g}"}, float(cumulative)))
    cumulative += bucket_counts[-1]
    samples.append(("_bucket", {**labels, "le": "+Inf"}, float(cumulative)))
    samples.append(("_sum", dict(labels), float(total)))
    samples.append(("_count", dict(labels), float(count)))
    return samples


# ----------------------------------------------------------------------
# Parsing / validation
# ----------------------------------------------------------------------

_SAMPLE_PATTERN = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)


def _parse_labels(text: str, line_number: int) -> Dict[str, str]:
    """Parse the inside of a ``{...}`` label block, honouring escapes."""
    labels: Dict[str, str] = {}
    position = 0
    length = len(text)
    while position < length:
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', text[position:])
        if not match:
            raise ExpositionError(f"line {line_number}: malformed label block {text!r}")
        name = match.group(1)
        position += match.end()
        value_chars: List[str] = []
        while True:
            if position >= length:
                raise ExpositionError(f"line {line_number}: unterminated label value")
            character = text[position]
            if character == "\\":
                if position + 1 >= length:
                    raise ExpositionError(f"line {line_number}: dangling escape")
                escape = text[position + 1]
                if escape == "n":
                    value_chars.append("\n")
                elif escape in ('"', "\\"):
                    value_chars.append(escape)
                else:
                    raise ExpositionError(f"line {line_number}: bad escape \\{escape}")
                position += 2
            elif character == '"':
                position += 1
                break
            else:
                value_chars.append(character)
                position += 1
        if name in labels:
            raise ExpositionError(f"line {line_number}: duplicate label {name!r}")
        labels[name] = "".join(value_chars)
        if position < length:
            if text[position] != ",":
                raise ExpositionError(f"line {line_number}: expected ',' between labels")
            position += 1
    return labels


def _parse_value(text: str, line_number: int) -> float:
    """Parse a sample value (decimal, scientific, +Inf/-Inf/NaN)."""
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError:
        raise ExpositionError(f"line {line_number}: bad sample value {text!r}") from None


def _base_family(name: str, types: Dict[str, str]) -> str:
    """Map a sample name to its family, stripping histogram suffixes."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return name


def parse_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Parse and validate exposition text; return families by name.

    Each entry maps a family name to ``{"type", "help", "samples"}`` with
    samples as ``(sample_name, labels, value)`` tuples.  Raises
    :class:`ExpositionError` on any spec violation, including histogram
    bucket invariants.
    """
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    samples: Dict[str, List[Tuple[str, Dict[str, str], float]]] = {}

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                keyword, name = parts[1], parts[2]
                if not _NAME_PATTERN.match(name):
                    raise ExpositionError(f"line {line_number}: bad metric name {name!r}")
                if keyword == "TYPE":
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in _VALID_KINDS:
                        raise ExpositionError(f"line {line_number}: bad TYPE {kind!r}")
                    if name in types:
                        raise ExpositionError(f"line {line_number}: duplicate TYPE for {name}")
                    if name in samples:
                        raise ExpositionError(
                            f"line {line_number}: TYPE for {name} after its samples"
                        )
                    types[name] = kind
                else:
                    helps[name] = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_PATTERN.match(line)
        if not match:
            raise ExpositionError(f"line {line_number}: malformed sample line {line!r}")
        name = match.group("name")
        labels_text = match.group("labels")
        labels = _parse_labels(labels_text, line_number) if labels_text else {}
        value = _parse_value(match.group("value"), line_number)
        family = _base_family(name, types)
        samples.setdefault(family, []).append((name, labels, value))

    for family, kind in types.items():
        if kind == "histogram":
            _check_histogram(family, samples.get(family, []))

    result: Dict[str, Dict[str, object]] = {}
    for family in set(types) | set(samples) | set(helps):
        result[family] = {
            "type": types.get(family, "untyped"),
            "help": helps.get(family, ""),
            "samples": samples.get(family, []),
        }
    return result


def _check_histogram(family: str, family_samples: List[Tuple[str, Dict[str, str], float]]) -> None:
    """Enforce histogram invariants on one family's samples.

    Per distinct non-``le`` label set: buckets must be cumulative
    (non-decreasing in ``le`` order), end at ``+Inf``, and the ``_count``
    series must equal the ``+Inf`` bucket; ``_sum`` must exist.
    """
    groups: Dict[Tuple[Tuple[str, str], ...], Dict[str, object]] = {}
    for name, labels, value in family_samples:
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        group = groups.setdefault(key, {"buckets": [], "sum": None, "count": None})
        if name == family + "_bucket":
            if "le" not in labels:
                raise ExpositionError(f"{family}: _bucket sample missing le label")
            le = labels["le"]
            edge = float("inf") if le == "+Inf" else _parse_value(le, 0)
            group["buckets"].append((edge, value))
        elif name == family + "_sum":
            group["sum"] = value
        elif name == family + "_count":
            group["count"] = value
        else:
            raise ExpositionError(f"{family}: unexpected histogram sample {name!r}")
    for key, group in groups.items():
        buckets = sorted(group["buckets"])
        if not buckets or not math.isinf(buckets[-1][0]):
            raise ExpositionError(f"{family}{dict(key)}: histogram missing +Inf bucket")
        previous = -1.0
        for edge, cumulative in buckets:
            if cumulative < previous:
                raise ExpositionError(
                    f"{family}{dict(key)}: bucket counts not cumulative at le={edge}"
                )
            previous = cumulative
        if group["count"] is None or group["count"] != buckets[-1][1]:
            raise ExpositionError(f"{family}{dict(key)}: _count != +Inf bucket")
        if group["sum"] is None:
            raise ExpositionError(f"{family}{dict(key)}: histogram missing _sum")
