"""Per-node health tracking for the distributed serving tier.

Every replica the coordinator talks to carries a :class:`NodeHealth`: a
small explicit state machine (``live`` / ``suspect`` / ``down`` /
``catching_up``) plus monotonically-increasing failure/recovery counters,
so node state shows up in ``/metrics`` as facts rather than being
reconstructed from log lines.

Transitions are driven by the replica client, not by a prober:

- a successful exchange marks the node ``live`` and clears the streak;
- a failed exchange (timeout, refused connect, reset) moves ``live`` to
  ``suspect``; :data:`SUSPECT_THRESHOLD` consecutive failures move
  ``suspect`` to ``down``;
- a restarted process enters ``catching_up`` and may only return to
  ``live`` through :meth:`NodeHealth.mark_live` once catch-up is
  *verified* (its snapshot generation has reached the coordinator's) --
  the rejoin gate the chaos battery leans on.

The class is intentionally not thread-safe on its own; the owning replica
group serialises transitions under its lock.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["CATCHING_UP", "DOWN", "LIVE", "NodeHealth", "SUSPECT", "SUSPECT_THRESHOLD"]

#: Healthy and serving queries.
LIVE = "live"
#: Failed at least one recent exchange; still tried, no longer preferred.
SUSPECT = "suspect"
#: Enough consecutive failures that the group skips it until it recovers.
DOWN = "down"
#: Process is back but its snapshot generation has not yet been verified.
CATCHING_UP = "catching_up"

#: Consecutive failures that escalate ``suspect`` to ``down``.
SUSPECT_THRESHOLD = 3


class NodeHealth:
    """Health state and counters for one replica process."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.state = LIVE
        self.consecutive_failures = 0
        self.failures_total = 0
        self.recoveries_total = 0

    @property
    def is_live(self) -> bool:
        """Whether the node should be offered queries as a primary."""
        return self.state == LIVE

    @property
    def is_usable(self) -> bool:
        """Whether the node may be tried at all (live or merely suspect)."""
        return self.state in (LIVE, SUSPECT)

    def record_success(self) -> None:
        """One successful exchange: back to ``live``, streak cleared.

        A node in ``catching_up`` stays there -- answering a probe is not
        proof of having caught up; only :meth:`mark_live` (called after
        generation verification) completes a rejoin.
        """
        self.consecutive_failures = 0
        if self.state in (LIVE, SUSPECT):
            if self.state == SUSPECT:
                self.recoveries_total += 1
            self.state = LIVE

    def record_failure(self) -> None:
        """One failed exchange: escalate toward ``down``."""
        self.consecutive_failures += 1
        self.failures_total += 1
        if self.state in (LIVE, SUSPECT):
            self.state = (
                DOWN if self.consecutive_failures >= SUSPECT_THRESHOLD else SUSPECT
            )

    def mark_catching_up(self) -> None:
        """The process restarted; hold it out of rotation until verified."""
        self.state = CATCHING_UP
        self.consecutive_failures = 0

    def mark_down(self) -> None:
        """The process is known dead (kill observed, not inferred)."""
        self.state = DOWN

    def mark_live(self) -> None:
        """Catch-up verified: the node rejoins the serving rotation."""
        if self.state != LIVE:
            self.recoveries_total += 1
        self.state = LIVE
        self.consecutive_failures = 0

    def snapshot(self) -> Dict[str, object]:
        """Counters and state for ``/v1/stats`` and ``/metrics``."""
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failures_total": self.failures_total,
            "recoveries_total": self.recoveries_total,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeHealth({self.name!r}, state={self.state!r})"
