"""Lightweight spans and traces for the query path.

Design constraints (see ``docs/OBSERVABILITY.md``):

- **Explicit context, no globals.**  A sampled request owns an
  :class:`ActiveTrace`; instrumented code receives a :class:`SpanContext`
  (trace + parent span) as an ordinary ``trace=None`` keyword argument and
  does nothing when it is ``None``.  Nothing is stashed in thread-locals,
  so coalesced batches -- where one dispatcher thread works on behalf of
  many request threads -- attribute every span to the right trace.
- **Zero cost when disabled.**  :meth:`Tracer.start_trace` returns
  ``None`` without taking a lock when the sample rate is ``0.0``; every
  instrumentation point downstream is a single ``is None`` check.
- **Monotonic clock.**  Span timings use :func:`time.perf_counter`.
  Worker processes have their *own* monotonic clock, so worker spans
  travel over the wire as offsets relative to the worker's root span and
  are re-based onto the frontend span that issued the request
  (:meth:`ActiveTrace.attach_remote`).
- **Bounded memory.**  Finished traces land in a ``deque(maxlen=...)``
  ring, a fixed-size slowest-N heap, and a bounded errored-trace ring --
  the slow-query log.  Nothing grows with traffic.

>>> tracer = Tracer(sample_rate=1.0, seed=7)
>>> trace = tracer.start_trace("request.topk")
>>> span = trace.begin("kernel.traverse")
>>> _ = span.end(nodes_visited=12)
>>> record = tracer.finish(trace, status=200)
>>> [s["name"] for s in record["spans"][0]["children"]]
['kernel.traverse']
"""

from __future__ import annotations

import heapq
import itertools
import os
import random
import threading
import time
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "LATENCY_BUCKETS",
    "ActiveTrace",
    "Span",
    "SpanContext",
    "Tracer",
    "format_trace",
    "histogram_percentile",
]

#: Shared histogram bucket upper edges, in **seconds**.  Used both by the
#: per-endpoint histograms in :mod:`repro.server.metrics` and by the
#: per-stage histograms the tracer aggregates -- one unit end to end.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.002,
    0.005,
    0.01,
    0.02,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    5.0,
)

#: JSON-safe attribute value types; anything else is stored as ``repr()``.
_SCALARS = (str, int, float, bool, type(None))


def _new_id() -> str:
    """Return a random 12-hex-digit span/trace id."""
    return os.urandom(6).hex()


class Span:
    """One timed operation inside a trace.

    Spans are mutable, slot-based, and cheap: creation records a
    :func:`time.perf_counter` start; :meth:`end` records the duration and
    merges final attributes.  Spans never reference their children -- the
    tree is reassembled from ``parent_id`` links when the trace finishes.
    """

    __slots__ = ("name", "span_id", "parent_id", "process", "start", "duration", "attributes")

    def __init__(
        self,
        name: str,
        parent_id: Optional[str] = None,
        process: str = "server",
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.process = process
        self.start = time.perf_counter()
        self.duration: Optional[float] = None
        self.attributes: Dict[str, object] = dict(attributes) if attributes else {}

    def end(self, **attributes: object) -> "Span":
        """Close the span (idempotent) and merge ``attributes``; returns self."""
        if self.duration is None:
            self.duration = time.perf_counter() - self.start
        if attributes:
            self.attributes.update(attributes)
        return self


class SpanContext:
    """A (trace, parent span) pair threaded through instrumented code.

    This is the object engine/kernel code receives as ``trace=``.  It
    pins which span new child spans hang under, so one trace can be in
    several stages at once (e.g. a scattered batch).
    """

    __slots__ = ("trace", "parent")

    def __init__(self, trace: "ActiveTrace", parent: Span) -> None:
        self.trace = trace
        self.parent = parent

    def begin(self, name: str, **attributes: object) -> Span:
        """Open a child span under this context's parent."""
        return self.trace.begin(name, parent=self.parent, **attributes)

    def under(self, span: Span) -> "SpanContext":
        """Return a new context parented at ``span`` (same trace)."""
        return SpanContext(self.trace, span)


class ActiveTrace:
    """An in-flight trace: a root span plus a flat list of spans.

    Appending to the span list is GIL-atomic, so concurrent worker threads
    of one scattered request may :meth:`begin`/:meth:`~Span.end` spans
    without extra locking.  Worker processes build *standalone* traces
    (no tracer) with ``trace_id``/``parent_id`` received over the wire and
    ship their spans back via :meth:`export_spans`.
    """

    __slots__ = ("trace_id", "process", "root", "spans")

    def __init__(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        process: str = "server",
    ) -> None:
        self.trace_id = trace_id if trace_id else _new_id()
        self.process = process
        self.root = Span(name, parent_id=parent_id, process=process)
        self.spans: List[Span] = [self.root]

    def begin(self, name: str, parent: Optional[Span] = None, **attributes: object) -> Span:
        """Open a span under ``parent`` (the root when omitted)."""
        anchor = parent if parent is not None else self.root
        span = Span(name, parent_id=anchor.span_id, process=self.process, attributes=attributes)
        self.spans.append(span)
        return span

    def context(self, parent: Optional[Span] = None) -> SpanContext:
        """Return a :class:`SpanContext` parented at ``parent`` (default root)."""
        return SpanContext(self, parent if parent is not None else self.root)

    # ------------------------------------------------------------------
    # Cross-process stitching
    # ------------------------------------------------------------------
    def export_spans(self) -> List[Dict[str, object]]:
        """Serialize all spans with starts as offsets from the root span.

        Monotonic clocks are per-process, so absolute ``perf_counter``
        values are meaningless to the peer; offsets relative to this
        trace's root are re-based by :meth:`attach_remote` on the other
        side.  Ends the root first so every offset is final.
        """
        self.root.end()
        base = self.root.start
        exported = []
        for span in self.spans:
            if span.duration is None:
                span.end()
            exported.append(
                {
                    "name": span.name,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "process": span.process,
                    "offset": span.start - base,
                    "duration": span.duration,
                    "attributes": _safe_attributes(span.attributes),
                }
            )
        return exported

    def attach_remote(self, exported: Iterable[Dict[str, object]], anchor: Span) -> None:
        """Stitch spans exported by a peer process into this trace.

        Each remote span's offset is re-based onto ``anchor``'s start (the
        local span that covers the remote round-trip), so remote durations
        nest correctly inside local wall-clock time.  Remote parent links
        are preserved: the peer's root span already carries the local
        anchor span's id as its ``parent_id``.
        """
        for entry in exported:
            if not isinstance(entry, dict):
                continue
            span = Span.__new__(Span)
            span.name = str(entry.get("name", "remote"))
            span.span_id = str(entry.get("span_id") or _new_id())
            parent = entry.get("parent_id")
            span.parent_id = str(parent) if parent is not None else anchor.span_id
            span.process = str(entry.get("process", "worker"))
            span.start = anchor.start + float(entry.get("offset", 0.0))
            span.duration = float(entry.get("duration", 0.0))
            attributes = entry.get("attributes")
            span.attributes = dict(attributes) if isinstance(attributes, dict) else {}
            self.spans.append(span)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def finish(self, status: Optional[int] = None, error: bool = False) -> Dict[str, object]:
        """End the root span and return the immutable trace record.

        The record is a plain JSON-safe dict -- ``{"trace_id", "name",
        "process", "unix_time", "duration_seconds", "status", "error",
        "spans"}`` with ``spans`` a nested tree -- suitable for the slow
        log, ``/v1/debug/slow``, and ``repro trace``.
        """
        self.root.end()
        if status is not None:
            self.root.attributes.setdefault("status", status)
        return {
            "trace_id": self.trace_id,
            "name": self.root.name,
            "process": self.process,
            "unix_time": time.time(),
            "duration_seconds": self.root.duration,
            "status": status,
            "error": bool(error),
            "spans": _build_tree(self.spans, self.root),
        }


def _safe_attributes(attributes: Dict[str, object]) -> Dict[str, object]:
    """Coerce attribute values to JSON-safe scalars (repr of anything else)."""
    return {
        key: value if isinstance(value, _SCALARS) else repr(value)
        for key, value in attributes.items()
    }


def _build_tree(spans: Sequence[Span], root: Span) -> List[Dict[str, object]]:
    """Assemble the nested span tree from flat parent links.

    Spans whose parent is unknown (e.g. their parent was evicted, which
    cannot happen today but keeps the function total) hang off the root.
    Children keep creation order, which is start order within one process.
    """
    base = root.start
    nodes: Dict[str, Dict[str, object]] = {}
    for span in spans:
        nodes[span.span_id] = {
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "process": span.process,
            "start_offset_seconds": span.start - base,
            "duration_seconds": span.duration if span.duration is not None else 0.0,
            "attributes": _safe_attributes(span.attributes),
            "children": [],
        }
    roots: List[Dict[str, object]] = []
    for span in spans:
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id is not None else None
        if parent is not None and parent is not node:
            parent["children"].append(node)
        elif span is root:
            roots.append(node)
        else:
            nodes[root.span_id]["children"].append(node)
    return roots


def histogram_percentile(bucket_counts: Sequence[int], quantile: float) -> Optional[float]:
    """Interpolate a percentile (in seconds) from histogram bucket counts.

    ``bucket_counts`` is aligned with :data:`LATENCY_BUCKETS` plus the final
    unbounded bucket -- the shape every histogram in this repository shares
    (:class:`~repro.server.metrics.LatencyHistogram`, the tracer's per-stage
    histograms, and the scenario harness's client-side recorder).  Counts
    may be lifetime totals or deltas between two snapshots.

    Returns ``None`` when no observations landed, and ``inf`` when the
    percentile falls in the unbounded bucket (callers render it as
    "> last edge").  Linear interpolation inside the bucket -- the standard
    Prometheus ``histogram_quantile`` estimate.

    >>> counts = [0] * (len(LATENCY_BUCKETS) + 1)
    >>> histogram_percentile(counts, 0.5) is None
    True
    >>> counts[3] = 10                      # ten observations in (2, 5] ms
    >>> round(histogram_percentile(counts, 0.5) * 1000.0, 2)
    3.5
    """
    total = sum(bucket_counts)
    if total <= 0:
        return None
    rank = quantile * total
    cumulative = 0.0
    for index, count in enumerate(bucket_counts):
        if not count:
            continue
        if cumulative + count >= rank:
            if index >= len(LATENCY_BUCKETS):
                return float("inf")
            lower = LATENCY_BUCKETS[index - 1] if index else 0.0
            upper = LATENCY_BUCKETS[index]
            return lower + (upper - lower) * ((rank - cumulative) / count)
        cumulative += count
    return float("inf")  # pragma: no cover - unreachable (total > 0)


class _StageHistogram:
    """Per-span-name latency aggregate feeding ``/metrics`` stage gauges."""

    __slots__ = ("count", "total_seconds", "max_seconds", "bucket_counts")

    def __init__(self) -> None:
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self.bucket_counts = [0] * (len(LATENCY_BUCKETS) + 1)

    def observe(self, seconds: float) -> None:
        """Record one span duration (seconds)."""
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        index = 0
        for edge in LATENCY_BUCKETS:
            if seconds <= edge:
                break
            index += 1
        self.bucket_counts[index] += 1

    def snapshot(self) -> Dict[str, object]:
        """Return a JSON-safe copy: count/sum/max plus raw bucket counts."""
        return {
            "count": self.count,
            "sum_seconds": self.total_seconds,
            "max_seconds": self.max_seconds,
            "bucket_counts": list(self.bucket_counts),
        }


class Tracer:
    """Sampling decisions plus the bounded trace ring and slow-query log.

    One tracer per server.  ``sample_rate`` is the probability a request
    is traced; ``0.0`` (the default) makes :meth:`start_trace` a lock-free
    ``return None`` so the instrumented path costs one ``is None`` check.
    Finished traces are stored three ways, all bounded:

    - ``ring`` -- the most recent ``ring_capacity`` traces;
    - ``slow`` -- the ``slow_capacity`` slowest traces (a min-heap);
    - ``errored`` -- the most recent ``slow_capacity`` errored traces.

    >>> tracer = Tracer(sample_rate=0.0)
    >>> tracer.start_trace("request.topk") is None
    True
    """

    def __init__(
        self,
        sample_rate: float = 0.0,
        ring_capacity: int = 256,
        slow_capacity: int = 16,
        seed: Optional[int] = None,
    ) -> None:
        rate = float(sample_rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample_rate must be within [0, 1], got {sample_rate!r}")
        if ring_capacity < 1 or slow_capacity < 1:
            raise ValueError("ring_capacity and slow_capacity must be >= 1")
        self.sample_rate = rate
        self.slow_capacity = int(slow_capacity)
        self._random = random.Random(seed)
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=int(ring_capacity))
        self._slow: List[Tuple[float, int, Dict[str, object]]] = []
        self._errored: deque = deque(maxlen=int(slow_capacity))
        self._sequence = itertools.count()
        self._stages: Dict[str, _StageHistogram] = {}
        self._started = 0
        self._recorded = 0

    @property
    def enabled(self) -> bool:
        """True when the sample rate can ever admit a trace."""
        return self.sample_rate > 0.0

    def start_trace(self, name: str, process: str = "server") -> Optional[ActiveTrace]:
        """Make the sampling decision; return a trace or ``None``.

        The decision is made exactly once, here at the edge -- downstream
        layers (including worker processes) inherit it by receiving either
        a context or ``None``.
        """
        rate = self.sample_rate
        if rate <= 0.0:
            return None
        with self._lock:
            if rate < 1.0 and self._random.random() >= rate:
                return None
            self._started += 1
        return ActiveTrace(name, process=process)

    def finish(
        self,
        trace: ActiveTrace,
        status: Optional[int] = None,
        error: bool = False,
    ) -> Dict[str, object]:
        """Finalize ``trace``, aggregate its stages, store it; return the record."""
        record = trace.finish(status=status, error=error)
        duration = float(record["duration_seconds"] or 0.0)
        with self._lock:
            self._recorded += 1
            self._ring.append(record)
            for span in trace.spans:
                if span.duration is None:
                    continue
                histogram = self._stages.get(span.name)
                if histogram is None:
                    histogram = self._stages[span.name] = _StageHistogram()
                histogram.observe(span.duration)
            if error:
                self._errored.append(record)
            entry = (duration, next(self._sequence), record)
            if len(self._slow) < self.slow_capacity:
                heapq.heappush(self._slow, entry)
            elif duration > self._slow[0][0]:
                heapq.heapreplace(self._slow, entry)
        return record

    # ------------------------------------------------------------------
    # Snapshots (all return copies; records themselves are never mutated)
    # ------------------------------------------------------------------
    def recent_snapshot(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Most recent traces, newest first, at most ``limit``."""
        with self._lock:
            records = list(self._ring)
        records.reverse()
        return records[:limit] if limit is not None else records

    def slow_snapshot(self) -> List[Dict[str, object]]:
        """The slowest retained traces, slowest first."""
        with self._lock:
            entries = sorted(self._slow, reverse=True)
        return [record for _, _, record in entries]

    def errored_snapshot(self) -> List[Dict[str, object]]:
        """The most recent errored traces, newest first."""
        with self._lock:
            records = list(self._errored)
        records.reverse()
        return records

    def stage_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-span-name latency aggregates (count/sum/max/bucket counts)."""
        with self._lock:
            return {name: histogram.snapshot() for name, histogram in self._stages.items()}

    def counters_snapshot(self) -> Dict[str, object]:
        """Sampling/admission counters for ``/v1/stats``."""
        with self._lock:
            return {
                "sample_rate": self.sample_rate,
                "started": self._started,
                "recorded": self._recorded,
                "ring_size": len(self._ring),
                "slow_retained": len(self._slow),
                "errored_retained": len(self._errored),
            }


def format_trace(record: Dict[str, object]) -> str:
    """Render a trace record as an indented one-span-per-line tree.

    Used by ``repro query --trace`` and ``repro trace``.  Durations are
    printed in milliseconds; attributes as ``key=value`` pairs.

    >>> tracer = Tracer(sample_rate=1.0)
    >>> trace = tracer.start_trace("request.topk")
    >>> _ = trace.begin("kernel.traverse").end(nodes_visited=3)
    >>> text = format_trace(tracer.finish(trace, status=200))
    >>> "kernel.traverse" in text and "nodes_visited=3" in text
    True
    """
    header = "trace {trace_id} {name} {duration:.3f}ms".format(
        trace_id=record.get("trace_id", "?"),
        name=record.get("name", "?"),
        duration=float(record.get("duration_seconds") or 0.0) * 1000.0,
    )
    if record.get("status") is not None:
        header += f" status={record['status']}"
    if record.get("error"):
        header += " error=True"
    lines = [header]

    def render(node: Dict[str, object], depth: int) -> None:
        attributes = node.get("attributes") or {}
        suffix = "".join(
            f" {key}={value}" for key, value in attributes.items() if key != "status"
        )
        lines.append(
            "{indent}- [{process}] {name} {duration:.3f}ms{suffix}".format(
                indent="  " * depth,
                process=node.get("process", "?"),
                name=node.get("name", "?"),
                duration=float(node.get("duration_seconds") or 0.0) * 1000.0,
                suffix=suffix,
            )
        )
        for child in node.get("children") or []:
            render(child, depth + 1)

    for root in record.get("spans") or []:
        render(root, 1)
    return "\n".join(lines)
