"""Observability layer: spans/traces, Prometheus exposition, slow-query log.

The package is deliberately dependency-free (stdlib only) and owned by no
other subsystem: :mod:`repro.server`, :mod:`repro.core`, and the CLI all
import *from* it, never the other way around.  Two modules:

- :mod:`repro.obs.trace` -- a lightweight span/trace API built around
  explicit context objects (no globals, no thread-locals).  A sampled
  query carries a :class:`~repro.obs.trace.SpanContext` down the call
  stack; unsampled queries carry ``None`` and pay a single ``is None``
  check per instrumentation point.
- :mod:`repro.obs.exposition` -- Prometheus text exposition (format
  0.0.4) rendering plus a strict pure-python parser used by tests and CI
  to validate what ``GET /metrics`` serves.
- :mod:`repro.obs.health` -- the per-node health state machine
  (``live``/``suspect``/``down``/``catching_up``) the cluster tier's
  replica groups report through ``/metrics``.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric names.
"""

from repro.obs.exposition import (
    ExpositionError,
    MetricFamily,
    histogram_samples,
    parse_exposition,
    render_exposition,
)
from repro.obs.health import NodeHealth
from repro.obs.trace import (
    LATENCY_BUCKETS,
    ActiveTrace,
    Span,
    SpanContext,
    Tracer,
    format_trace,
    histogram_percentile,
)

__all__ = [
    "ActiveTrace",
    "ExpositionError",
    "LATENCY_BUCKETS",
    "MetricFamily",
    "NodeHealth",
    "Span",
    "SpanContext",
    "Tracer",
    "format_trace",
    "histogram_percentile",
    "histogram_samples",
    "parse_exposition",
    "render_exposition",
]
