"""Power-law sp-index generation over a grid (Section 6.2).

The area of interest is a square of side ``L`` divided into a grid of base
spatial units.  The sp-index above the grid follows two power laws:

* **width** -- the number of spatial units at level ``l`` is
  ``W_l = Q * l^a`` with ``Q = (L / L_bsu)^2 / m^a`` (Equation 6.7), so the
  tree widens towards the base level;
* **relative density** -- the sizes of the units at one level follow
  ``D_i ∝ i^b`` (Equation 6.8), so a few units (business districts) are much
  larger than the rest (rural areas).

The generator assigns grid cells to parents in Morton (Z-curve) order so that
spatially close base units share ancestors, which is what gives the
hierarchical IM model its locality at coarse levels.  The paper validates
``a, b ∈ [1, 2]`` against New York City point-of-interest data; those are the
defaults here.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.mobility.im_model import Grid
from repro.traces.spatial import SpatialHierarchy

__all__ = ["GridHierarchyBuilder"]


def _morton_key(x: int, y: int, bits: int = 16) -> int:
    """Interleave the bits of ``x`` and ``y`` (Z-order curve key)."""
    key = 0
    for bit in range(bits):
        key |= ((x >> bit) & 1) << (2 * bit)
        key |= ((y >> bit) & 1) << (2 * bit + 1)
    return key


def _power_law_partition(total: int, parts: int, exponent: float) -> List[int]:
    """Split ``total`` items into ``parts`` groups with sizes ∝ ``(i+1)^exponent``.

    Every group receives at least one item; rounding remainders are assigned
    to the largest groups first so the sum is exactly ``total``.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if total < parts:
        raise ValueError(f"cannot split {total} items into {parts} non-empty groups")
    weights = [(index + 1) ** exponent for index in range(parts)]
    weight_sum = sum(weights)
    sizes = [max(1, int(total * weight / weight_sum)) for weight in weights]
    # Fix the rounding drift.
    drift = total - sum(sizes)
    index = parts - 1
    while drift != 0:
        if drift > 0:
            sizes[index] += 1
            drift -= 1
        elif sizes[index] > 1:
            sizes[index] -= 1
            drift += 1
        index = (index - 1) % parts
    return sizes


class GridHierarchyBuilder:
    """Builds an sp-index over the cells of a :class:`~repro.mobility.im_model.Grid`.

    Parameters
    ----------
    grid:
        The square grid whose cells become the base spatial units.
    num_levels:
        Depth ``m`` of the sp-index (the paper uses 4 as the typical depth of
        a city hierarchy and sweeps 3–6 in Figure 7.4(h)).
    width_exponent:
        The ``a`` parameter of Equation 6.7.
    density_exponent:
        The ``b`` parameter of Equation 6.8.
    """

    def __init__(
        self,
        grid: Grid,
        num_levels: int = 4,
        width_exponent: float = 2.0,
        density_exponent: float = 2.0,
    ) -> None:
        if num_levels < 1:
            raise ValueError(f"num_levels must be >= 1, got {num_levels}")
        if grid.num_cells < num_levels:
            raise ValueError(
                f"grid of {grid.num_cells} cells is too small for {num_levels} levels"
            )
        self.grid = grid
        self.num_levels = num_levels
        self.width_exponent = width_exponent
        self.density_exponent = density_exponent

    # ------------------------------------------------------------------
    def level_widths(self) -> List[int]:
        """Number of spatial units per level (Equation 6.7), level 1 first."""
        base_count = self.grid.num_cells
        normaliser = base_count / (self.num_levels**self.width_exponent)
        widths: List[int] = []
        for level in range(1, self.num_levels + 1):
            width = int(round(normaliser * level**self.width_exponent))
            widths.append(max(1, width))
        widths[-1] = base_count
        # Enforce monotonicity so every parent has at least one child.
        for index in range(len(widths) - 2, -1, -1):
            widths[index] = min(widths[index], widths[index + 1])
        return widths

    def build(self) -> Tuple[SpatialHierarchy, Dict[int, str]]:
        """Generate the sp-index.

        Returns
        -------
        (hierarchy, cell_to_unit)
            The hierarchy, and the mapping from grid cell index to the
            identifier of the corresponding base spatial unit.
        """
        widths = self.level_widths()
        # Base units ordered along the Z-curve for spatial contiguity.
        cells = sorted(
            range(self.grid.num_cells),
            key=lambda cell: _morton_key(*self.grid.coordinates(cell)),
        )
        base_names = [f"L{self.num_levels}_{position}" for position in range(len(cells))]
        cell_to_unit = {cell: base_names[position] for position, cell in enumerate(cells)}

        # names_per_level[l-1] lists the unit names at level l in spatial order.
        names_per_level: List[List[str]] = [[] for _ in range(self.num_levels)]
        names_per_level[-1] = base_names
        parent_of: Dict[str, str] = {}

        for level in range(self.num_levels - 1, 0, -1):
            child_names = names_per_level[level]
            parts = min(widths[level - 1], len(child_names))
            sizes = _power_law_partition(len(child_names), parts, self.density_exponent)
            level_names: List[str] = []
            cursor = 0
            for index, size in enumerate(sizes):
                name = f"L{level}_{index}"
                level_names.append(name)
                for child in child_names[cursor : cursor + size]:
                    parent_of[child] = name
                cursor += size
            names_per_level[level - 1] = level_names

        hierarchy = SpatialHierarchy()
        for level, names in enumerate(names_per_level, start=1):
            for name in names:
                hierarchy.add_unit(name, parent_of.get(name))
        hierarchy.validate()
        return hierarchy, cell_to_unit

    def describe(self) -> str:
        """Summary of the generated shape (used by the examples)."""
        widths = self.level_widths()
        return (
            f"GridHierarchyBuilder(side={self.grid.side}, m={self.num_levels}, "
            f"a={self.width_exponent}, b={self.density_exponent}, widths={widths})"
        )
