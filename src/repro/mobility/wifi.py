"""Synthetic WiFi-handshake workload (the REAL-dataset substitute).

The paper's REAL dataset is a proprietary trace of 30 million mobile devices
detected by 76,739 WiFi hotspots organised into a 4-level sp-index.  We do
not have that data, so this module generates a workload with the same
*structural* properties, which is what the evaluation depends on:

* hotspots are clustered into venues, zones and a city root (4 levels);
* each device has a small set of "anchor" hotspots (home, work, favourite
  venues) concentrated in one zone plus a heavy-tailed number of one-off
  detections anywhere in the city -- producing the heavy-tailed per-device
  detection counts and the skewed AjPI-per-level distribution of Figure 7.1;
* dwell times are short and power-law distributed, as WiFi probe logs are;
* a fraction of devices travel in pairs/groups (households, colleagues),
  giving the query workload genuinely associated answers.

The generator's output is an ordinary :class:`~repro.traces.dataset.TraceDataset`,
so every code path exercised by the REAL experiments in the paper is
exercised here too (see the substitution table in DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.traces.dataset import TraceDataset
from repro.traces.events import PresenceInstance
from repro.traces.spatial import SpatialHierarchy

__all__ = ["WiFiConfig", "generate_wifi_dataset"]


@dataclass(frozen=True)
class WiFiConfig:
    """Configuration of the WiFi workload generator."""

    num_devices: int = 300
    num_hotspots: int = 240
    #: Hotspots per venue; venues per zone; zones form level 1 children of the city.
    hotspots_per_venue: int = 4
    venues_per_zone: int = 6
    #: Number of base temporal units (hours) covered by the log.
    horizon: int = 24 * 14
    #: Mean number of detections per device (heavy-tailed around this value).
    mean_detections: int = 60
    #: Number of anchor hotspots per device.
    anchors_per_device: int = 4
    #: Probability that a detection happens at an anchor hotspot.
    anchor_probability: float = 0.8
    #: Fraction of devices generated as companions of an earlier device.
    companion_fraction: float = 0.15
    #: Probability that a companion mirrors each detection of its reference.
    companion_copy_probability: float = 0.7
    #: Longest dwell (in hours) a single detection can represent.
    max_dwell: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_devices < 1 or self.num_hotspots < 1:
            raise ValueError("num_devices and num_hotspots must be >= 1")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if not 0.0 <= self.companion_fraction <= 1.0:
            raise ValueError("companion_fraction must be in [0, 1]")
        if not 0.0 <= self.anchor_probability <= 1.0:
            raise ValueError("anchor_probability must be in [0, 1]")

    def with_params(self, **changes: object) -> "WiFiConfig":
        """A copy of the config with some fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


def build_wifi_hierarchy(config: WiFiConfig) -> Tuple[SpatialHierarchy, List[str]]:
    """Build the 4-level city → zone → venue → hotspot sp-index.

    Returns the hierarchy and the list of hotspot unit identifiers.
    """
    hierarchy = SpatialHierarchy()
    hierarchy.add_unit("city")
    hotspots: List[str] = []
    num_venues = (config.num_hotspots + config.hotspots_per_venue - 1) // config.hotspots_per_venue
    num_zones = max(1, (num_venues + config.venues_per_zone - 1) // config.venues_per_zone)
    for zone in range(num_zones):
        zone_id = f"zone-{zone}"
        hierarchy.add_unit(zone_id, "city")
    for venue in range(num_venues):
        zone_id = f"zone-{venue % num_zones}"
        venue_id = f"venue-{venue}"
        hierarchy.add_unit(venue_id, zone_id)
    for hotspot in range(config.num_hotspots):
        venue_id = f"venue-{hotspot // config.hotspots_per_venue}"
        hotspot_id = f"ap-{hotspot}"
        hierarchy.add_unit(hotspot_id, venue_id)
        hotspots.append(hotspot_id)
    hierarchy.validate()
    return hierarchy, hotspots


def _heavy_tailed_count(rng: random.Random, mean: int) -> int:
    """A heavy-tailed positive count with the given approximate mean."""
    # Pareto with exponent 1.5, rescaled so the mean is roughly `mean`.
    value = rng.paretovariate(1.5)
    return max(1, int(value * mean / 3.0))


def _device_detections(
    rng: random.Random,
    hotspots: List[str],
    anchors: List[str],
    config: WiFiConfig,
) -> List[Tuple[str, int, int]]:
    """Detections of one device as ``(hotspot, start, end)`` triples."""
    detections: List[Tuple[str, int, int]] = []
    count = _heavy_tailed_count(rng, config.mean_detections)
    for _ in range(count):
        if anchors and rng.random() < config.anchor_probability:
            hotspot = rng.choice(anchors)
        else:
            hotspot = rng.choice(hotspots)
        start = rng.randrange(config.horizon)
        dwell = min(1 + int(rng.paretovariate(2.0)), config.max_dwell)
        end = min(start + dwell, config.horizon)
        if end > start:
            detections.append((hotspot, start, end))
    return detections


def generate_wifi_dataset(
    config: Optional[WiFiConfig] = None,
    **overrides: object,
) -> Tuple[TraceDataset, WiFiConfig]:
    """Generate the WiFi-handshake workload.

    Keyword overrides are applied on top of ``config`` (or the defaults).

    Returns
    -------
    (dataset, config)
        The generated dataset and the effective configuration.
    """
    if config is None:
        config = WiFiConfig()
    if overrides:
        config = config.with_params(**overrides)

    rng = random.Random(config.seed)
    hierarchy, hotspots = build_wifi_hierarchy(config)
    dataset = TraceDataset(hierarchy, horizon=config.horizon)

    num_companions = int(config.num_devices * config.companion_fraction)
    num_independent = config.num_devices - num_companions

    # Anchors are drawn from one "home zone" per device so detections cluster.
    venues_by_zone: Dict[str, List[str]] = {}
    for hotspot in hotspots:
        venue = hierarchy.parent_of(hotspot)
        zone = hierarchy.parent_of(venue) if venue else None
        if zone is not None:
            venues_by_zone.setdefault(zone, []).append(hotspot)
    zones = sorted(venues_by_zone)

    device_detections: List[List[Tuple[str, int, int]]] = []
    for index in range(num_independent):
        device = f"device-{index}"
        home_zone = zones[rng.randrange(len(zones))]
        zone_hotspots = venues_by_zone[home_zone]
        anchors = [rng.choice(zone_hotspots) for _ in range(config.anchors_per_device)]
        detections = _device_detections(rng, hotspots, anchors, config)
        device_detections.append(detections)
        for hotspot, start, end in detections:
            dataset.add_presence(PresenceInstance(device, hotspot, start, end))

    for index in range(num_companions):
        device = f"device-companion-{index}"
        if device_detections:
            reference = device_detections[rng.randrange(len(device_detections))]
        else:
            reference = []
        detections: List[Tuple[str, int, int]] = []
        for hotspot, start, end in reference:
            if rng.random() < config.companion_copy_probability:
                detections.append((hotspot, start, end))
        # A companion also has some independent detections of its own.
        anchors = [rng.choice(hotspots) for _ in range(config.anchors_per_device)]
        detections.extend(
            _device_detections(rng, hotspots, anchors, config.with_params(mean_detections=max(1, config.mean_detections // 4)))
        )
        for hotspot, start, end in detections:
            dataset.add_presence(PresenceInstance(device, hotspot, start, end))

    return dataset, config
