"""Mobility models and synthetic trace generators (Chapter 6 substrate).

* :mod:`~repro.mobility.im_model` -- the single-level individual mobility
  (IM) model of Song et al. (Equations 6.1–6.6): power-law waiting times,
  exploration vs. preferential return, power-law jump displacements.
* :mod:`~repro.mobility.hierarchy_gen` -- the power-law sp-index generator of
  Section 6.2 (Equations 6.7 and 6.8): level widths ``W_l = Q * l^a`` and
  relative node sizes ``D^i_l ∝ i^b`` over a square grid of base units.
* :mod:`~repro.mobility.hierarchical` -- the hierarchical IM model: grid +
  sp-index + per-entity IM walkers, producing a
  :class:`~repro.traces.dataset.TraceDataset` (the paper's SYN dataset).
* :mod:`~repro.mobility.wifi` -- the WiFi-handshake workload generator that
  substitutes for the proprietary REAL dataset (see DESIGN.md).
"""

from repro.mobility.hierarchical import HierarchicalMobilityConfig, generate_synthetic_dataset
from repro.mobility.hierarchy_gen import GridHierarchyBuilder
from repro.mobility.im_model import Grid, IMModelParams, IndividualMobilityModel
from repro.mobility.wifi import WiFiConfig, generate_wifi_dataset

__all__ = [
    "Grid",
    "GridHierarchyBuilder",
    "HierarchicalMobilityConfig",
    "IMModelParams",
    "IndividualMobilityModel",
    "WiFiConfig",
    "generate_synthetic_dataset",
    "generate_wifi_dataset",
]
