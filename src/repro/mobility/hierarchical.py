"""The hierarchical individual mobility model (Section 6.2) as a data generator.

This module produces the paper's SYN dataset: a square grid of base spatial
units, a power-law sp-index above it (:class:`GridHierarchyBuilder`), and one
IM-model walker per entity whose stays are recorded as presence instances.

Two properties of the paper's datasets that matter for the evaluation -- and
that a naive laptop-scale simulation would miss -- are modelled explicitly:

* **Heavy-tailed activity.**  Digital traces are *observations* of presence
  (check-ins, WiFi detections), not continuous coverage; most entities are
  observed rarely, a few very often (the REAL dataset averages 650 K
  detections per device but the distribution is extremely skewed).  Each
  entity therefore gets an observation rate drawn from a heavy-tailed
  distribution and only a corresponding fraction of its stays is recorded.
* **Social groups.**  Households, couples and colleagues move together, which
  is what produces the high-association tail of Figure 7.2 (and what top-k
  queries are meant to find).  Entities are generated in groups whose sizes
  follow a power law; group members copy a share of the group leader's stays
  and walk independently otherwise.

Both behaviours can be switched off (``observation_rate_range=(1.0, 1.0)``,
``max_group_size=1``) to recover the textbook hierarchical IM model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.mobility.hierarchy_gen import GridHierarchyBuilder
from repro.mobility.im_model import Grid, IMModelParams, IndividualMobilityModel, Stay
from repro.traces.dataset import TraceDataset
from repro.traces.events import PresenceInstance

__all__ = ["HierarchicalMobilityConfig", "generate_synthetic_dataset"]


@dataclass(frozen=True)
class HierarchicalMobilityConfig:
    """Configuration of the hierarchical IM generator.

    Paper defaults: ``alpha=0.6, beta=0.8, gamma=0.2, zeta=1.2, rho=0.6``,
    ``a = b = 2`` and ``m = 4``; the scale parameters (entities, grid side,
    horizon) are laptop-sized here and overridden per experiment.
    """

    num_entities: int = 200
    #: Number of base temporal units (hours) to simulate.
    horizon: int = 24 * 7
    #: Side of the square grid of base spatial units.
    grid_side: int = 16
    #: Depth of the generated sp-index.
    num_levels: int = 4
    #: IM model parameters (Equations 6.1–6.4).
    im_params: IMModelParams = field(default_factory=IMModelParams)
    #: Width exponent ``a`` of Equation 6.7.
    width_exponent: float = 2.0
    #: Density exponent ``b`` of Equation 6.8.
    density_exponent: float = 2.0
    #: Largest social group size; 1 disables groups entirely.
    max_group_size: int = 8
    #: Exponent of the power-law group size distribution (P(s) ∝ s^-exponent).
    group_size_exponent: float = 2.0
    #: Probability that a group member copies each recorded stay of its leader.
    group_copy_probability: float = 0.7
    #: Range of per-entity observation rates; the actual rate is drawn from a
    #: heavy-tailed distribution clipped to this range.
    observation_rate_range: Tuple[float, float] = (0.1, 1.0)
    #: Exponent of the Pareto distribution behind the observation rates.
    observation_rate_exponent: float = 1.5
    #: 0 = uniform home cells; larger values concentrate homes in fewer cells.
    home_concentration: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_entities < 1:
            raise ValueError("num_entities must be >= 1")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if self.max_group_size < 1:
            raise ValueError("max_group_size must be >= 1")
        if not 0.0 <= self.group_copy_probability <= 1.0:
            raise ValueError("group_copy_probability must be in [0, 1]")
        low, high = self.observation_rate_range
        if not 0.0 < low <= high <= 1.0:
            raise ValueError("observation_rate_range must satisfy 0 < low <= high <= 1")

    def with_params(self, **changes: object) -> "HierarchicalMobilityConfig":
        """A copy of the config with some fields replaced (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]


def _sample_home_cell(grid: Grid, rng: random.Random, concentration: float) -> int:
    """Sample a home cell, optionally biased towards low Morton positions."""
    if concentration <= 0.0:
        return rng.randrange(grid.num_cells)
    # Bias towards a contiguous "downtown" corner: raise a uniform draw to a
    # power > 1 so small indices are over-represented.
    biased = rng.random() ** (1.0 + concentration)
    return int(biased * (grid.num_cells - 1))


def _sample_group_size(rng: random.Random, config: HierarchicalMobilityConfig) -> int:
    """Sample a social group size from P(s) ∝ s^-group_size_exponent."""
    if config.max_group_size == 1:
        return 1
    sizes = list(range(1, config.max_group_size + 1))
    weights = [size ** (-config.group_size_exponent) for size in sizes]
    return rng.choices(sizes, weights=weights, k=1)[0]


def _sample_observation_rate(rng: random.Random, config: HierarchicalMobilityConfig) -> float:
    """Heavy-tailed per-entity observation rate clipped to the configured range."""
    low, high = config.observation_rate_range
    if low == high:
        return low
    draw = low * rng.paretovariate(config.observation_rate_exponent)
    return min(high, max(low, draw))


def _observe(stays: List[Stay], rate: float, rng: random.Random) -> List[Stay]:
    """Keep each stay with probability ``rate`` (at least one stay survives)."""
    observed = [stay for stay in stays if rng.random() < rate]
    if not observed and stays:
        observed = [stays[rng.randrange(len(stays))]]
    return observed


def _stays_to_presences(
    entity: str, stays: List[Stay], cell_to_unit: Dict[int, str]
) -> List[PresenceInstance]:
    return [
        PresenceInstance(entity=entity, unit=cell_to_unit[stay.cell], start=stay.start, end=stay.end)
        for stay in stays
        if stay.end > stay.start
    ]


def _member_stays(
    leader_observed: List[Stay],
    grid: Grid,
    config: HierarchicalMobilityConfig,
    rng: random.Random,
    home_cell: int,
) -> List[Stay]:
    """Stays of a group member: copy some leader stays, walk independently otherwise."""
    walker = IndividualMobilityModel(grid, config.im_params, rng, home_cell=home_cell)
    own = walker.walk(config.horizon)
    own_rate = _sample_observation_rate(rng, config)
    stays = _observe(own, own_rate, rng)
    for stay in leader_observed:
        if rng.random() < config.group_copy_probability:
            stays.append(stay)
    return stays


def generate_synthetic_dataset(
    config: Optional[HierarchicalMobilityConfig] = None,
    **overrides: object,
) -> Tuple[TraceDataset, HierarchicalMobilityConfig]:
    """Generate a SYN-style dataset from the hierarchical IM model.

    Keyword overrides are applied on top of ``config`` (or the defaults), so
    experiments can write ``generate_synthetic_dataset(num_entities=500,
    im_params=IMModelParams(alpha=1.2))``.

    Returns
    -------
    (dataset, config)
        The generated dataset and the effective configuration.
    """
    if config is None:
        config = HierarchicalMobilityConfig()
    if overrides:
        config = config.with_params(**overrides)

    rng = random.Random(config.seed)
    grid = Grid(config.grid_side)
    builder = GridHierarchyBuilder(
        grid,
        num_levels=config.num_levels,
        width_exponent=config.width_exponent,
        density_exponent=config.density_exponent,
    )
    hierarchy, cell_to_unit = builder.build()
    dataset = TraceDataset(hierarchy, horizon=config.horizon)

    generated = 0
    while generated < config.num_entities:
        group_size = min(_sample_group_size(rng, config), config.num_entities - generated)
        home = _sample_home_cell(grid, rng, config.home_concentration)

        # Group leader.
        leader = f"syn-{generated}"
        walker = IndividualMobilityModel(grid, config.im_params, rng, home_cell=home)
        leader_stays = walker.walk(config.horizon)
        leader_rate = _sample_observation_rate(rng, config)
        leader_observed = _observe(leader_stays, leader_rate, rng)
        dataset.extend(_stays_to_presences(leader, leader_observed, cell_to_unit))
        generated += 1

        # Remaining members copy part of the leader's observed stays.
        for _member in range(group_size - 1):
            entity = f"syn-{generated}"
            stays = _member_stays(leader_observed, grid, config, rng, home)
            dataset.extend(_stays_to_presences(entity, stays, cell_to_unit))
            generated += 1

    return dataset, config
