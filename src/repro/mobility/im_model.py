"""The individual mobility (IM) model of Song et al. (Section 6.1).

The model describes the movement of a single entity over a square grid of
base spatial units with five parameters:

* ``beta`` -- exponent of the power-law waiting time ``P(Δt) ∝ Δt^(−1−β)``
  (Equation 6.1);
* ``rho`` and ``gamma`` -- the exploration probability ``P_new = ρ S^(−γ)``
  where ``S`` is the number of distinct units visited so far (Equation 6.2);
* ``alpha`` -- exponent of the power-law jump displacement
  ``P(Δr) ∝ Δr^(−1−α)`` for exploratory jumps (Equation 6.3);
* ``zeta`` -- exponent of the preferential-return visit frequency
  ``f_y ∝ y^(−ζ)`` (Equation 6.4), realised by returning to a previously
  visited unit with probability proportional to its visit count.

Equations 6.5 and 6.6 (``S(t) ∝ t^μ`` and mean squared displacement
``∝ t^ν``) are emergent properties of the walk rather than inputs; the
module exposes helpers to measure them so the model can be validated against
its own predictions (see ``tests/test_im_model.py``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

__all__ = ["Grid", "IMModelParams", "IndividualMobilityModel", "Stay"]


@dataclass(frozen=True)
class IMModelParams:
    """Parameters of the individual mobility model.

    Defaults follow the paper's "normal mobility pattern" configuration
    (Section 7.1): ``alpha=0.6, beta=0.8, gamma=0.2, zeta=1.2, rho=0.6``.
    """

    alpha: float = 0.6
    beta: float = 0.8
    gamma: float = 0.2
    zeta: float = 1.2
    rho: float = 0.6
    #: Largest waiting time (in base temporal units) a single stay can take.
    max_stay: int = 12
    #: Largest jump distance (in grid cells) an exploratory jump can take.
    max_jump: int = 64

    def __post_init__(self) -> None:
        if not 0 < self.beta <= 1:
            raise ValueError(f"beta must be in (0, 1], got {self.beta}")
        if not 0 < self.alpha <= 2:
            raise ValueError(f"alpha must be in (0, 2], got {self.alpha}")
        if not 0 < self.rho <= 1:
            raise ValueError(f"rho must be in (0, 1], got {self.rho}")
        if self.gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {self.gamma}")
        if self.zeta < 0:
            raise ValueError(f"zeta must be >= 0, got {self.zeta}")
        if self.max_stay < 1 or self.max_jump < 1:
            raise ValueError("max_stay and max_jump must be >= 1")


@dataclass(frozen=True)
class Stay:
    """One stop of the walk: the entity stays at ``cell`` for ``[start, end)``."""

    cell: int
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


class Grid:
    """A square grid of base spatial units (side ``side`` cells).

    Cells are identified by their row-major index; helpers convert to and
    from ``(x, y)`` coordinates and compute toroidal-free Euclidean distance.
    """

    def __init__(self, side: int) -> None:
        if side < 1:
            raise ValueError(f"grid side must be >= 1, got {side}")
        self.side = side
        self.num_cells = side * side

    def coordinates(self, cell: int) -> Tuple[int, int]:
        """``(x, y)`` coordinates of a cell index."""
        if not 0 <= cell < self.num_cells:
            raise IndexError(f"cell {cell} out of range for grid of side {self.side}")
        return cell % self.side, cell // self.side

    def cell_at(self, x: int, y: int) -> int:
        """Cell index of coordinates, clamped to the grid boundary."""
        x = min(max(x, 0), self.side - 1)
        y = min(max(y, 0), self.side - 1)
        return y * self.side + x

    def distance(self, cell_a: int, cell_b: int) -> float:
        """Euclidean distance between two cell centres, in cell units."""
        ax, ay = self.coordinates(cell_a)
        bx, by = self.coordinates(cell_b)
        return math.hypot(ax - bx, ay - by)


def _truncated_power_law(rng: random.Random, exponent: float, maximum: int) -> int:
    """Sample an integer from ``P(x) ∝ x^(−1−exponent)`` on ``[1, maximum]``.

    Uses inverse-transform sampling of the continuous Pareto distribution and
    rounds down, which preserves the heavy tail while staying integer-valued.
    """
    if maximum == 1:
        return 1
    # Continuous Pareto on [1, maximum + 1) with exponent (1 + exponent).
    u = rng.random()
    low, high = 1.0, float(maximum + 1)
    power = -exponent
    # CDF^-1 for P(x) ∝ x^(-1-exponent): x = [low^power + u (high^power - low^power)]^(1/power)
    value = (low**power + u * (high**power - low**power)) ** (1.0 / power)
    return max(1, min(maximum, int(value)))


class IndividualMobilityModel:
    """Simulate one entity's walk over the grid.

    Parameters
    ----------
    grid:
        The square grid of base spatial units.
    params:
        Model parameters (see :class:`IMModelParams`).
    rng:
        Random source (pass a seeded :class:`random.Random` for
        reproducibility).
    home_cell:
        Optional starting cell; a uniform random cell is drawn when omitted.
    """

    def __init__(
        self,
        grid: Grid,
        params: IMModelParams,
        rng: random.Random,
        home_cell: int | None = None,
    ) -> None:
        self.grid = grid
        self.params = params
        self.rng = rng
        if home_cell is None:
            home_cell = rng.randrange(grid.num_cells)
        if not 0 <= home_cell < grid.num_cells:
            raise ValueError(f"home cell {home_cell} outside the grid")
        self.home_cell = home_cell
        #: Visit counts per visited cell (drives preferential return).
        self.visit_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _exploration_probability(self) -> float:
        visited = max(len(self.visit_counts), 1)
        return min(1.0, self.params.rho * visited ** (-self.params.gamma))

    def _exploratory_jump(self, current: int) -> int:
        """Jump in a random direction with a power-law displacement (Eq. 6.3)."""
        distance = _truncated_power_law(self.rng, self.params.alpha, self.params.max_jump)
        angle = self.rng.random() * 2.0 * math.pi
        x, y = self.grid.coordinates(current)
        new_x = int(round(x + distance * math.cos(angle)))
        new_y = int(round(y + distance * math.sin(angle)))
        return self.grid.cell_at(new_x, new_y)

    def _preferential_return(self) -> int:
        """Return to a visited cell with probability ∝ its visit count (Eq. 6.4)."""
        cells = list(self.visit_counts)
        weights = [self.visit_counts[cell] for cell in cells]
        return self.rng.choices(cells, weights=weights, k=1)[0]

    # ------------------------------------------------------------------
    def walk(self, horizon: int) -> List[Stay]:
        """Generate the sequence of stays covering ``[0, horizon)``.

        Every stay's duration is drawn from the power-law waiting time
        distribution (Equation 6.1); the last stay is clipped at the horizon.
        """
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        stays: List[Stay] = []
        current = self.home_cell
        time = 0
        while time < horizon:
            duration = _truncated_power_law(self.rng, self.params.beta, self.params.max_stay)
            end = min(time + duration, horizon)
            stays.append(Stay(cell=current, start=time, end=end))
            self.visit_counts[current] = self.visit_counts.get(current, 0) + 1
            time = end
            if time >= horizon:
                break
            if not self.visit_counts or self.rng.random() < self._exploration_probability():
                current = self._exploratory_jump(current)
            else:
                current = self._preferential_return()
        return stays

    # ------------------------------------------------------------------
    # Emergent-property probes (Equations 6.5 and 6.6)
    # ------------------------------------------------------------------
    @staticmethod
    def distinct_units_over_time(stays: List[Stay]) -> Iterator[Tuple[int, int]]:
        """Yield ``(time, S(time))``: distinct cells visited by each stay end."""
        seen: set[int] = set()
        for stay in stays:
            seen.add(stay.cell)
            yield stay.end, len(seen)

    def mean_squared_displacement(self, stays: List[Stay]) -> Iterator[Tuple[int, float]]:
        """Yield ``(time, squared displacement from the first cell)`` per stay."""
        if not stays:
            return
        origin = stays[0].cell
        for stay in stays:
            yield stay.end, self.grid.distance(origin, stay.cell) ** 2
