"""Command-line interface: generate data, inspect it, and run top-k queries.

The CLI covers the end-to-end workflow a practitioner needs without writing
Python::

    # Generate a synthetic city and its sp-index
    python -m repro generate syn --entities 500 --output traces.csv \
        --hierarchy hierarchy.json

    # Summarise a trace file
    python -m repro stats --traces traces.csv --hierarchy hierarchy.json

    # Who is most associated with syn-17?
    python -m repro query --traces traces.csv --hierarchy hierarchy.json \
        --entity syn-17 --k 10 --num-hashes 256

    # Batch mode: many queries over one index, optionally fanned out over
    # worker threads, with an aggregate throughput/pruning report
    python -m repro query --traces traces.csv --hierarchy hierarchy.json \
        --batch syn-17 syn-4 syn-23 --workers 4 --k 10

    # Regenerate one of the paper's figures
    python -m repro figures --only 7.3 --scale tiny

Every subcommand is also importable (``repro.cli.main``) so tests drive it
in-process.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.engine import TraceQueryEngine
from repro.measures.adm import HierarchicalADM
from repro.mobility.hierarchical import generate_synthetic_dataset
from repro.mobility.wifi import generate_wifi_dataset
from repro.traces.io import (
    load_hierarchy_json,
    load_traces_csv,
    write_hierarchy_json,
    write_traces_csv,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-k queries over digital traces: data generation, indexing, querying.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic trace dataset and its sp-index"
    )
    generate.add_argument("kind", choices=["syn", "wifi"], help="generator to use")
    generate.add_argument("--entities", type=int, default=300, help="number of entities/devices")
    generate.add_argument("--horizon", type=int, default=168, help="horizon in base temporal units")
    generate.add_argument("--seed", type=int, default=0, help="generator seed")
    generate.add_argument("--output", required=True, help="CSV file to write the traces to")
    generate.add_argument("--hierarchy", required=True, help="JSON file to write the sp-index to")

    stats = subparsers.add_parser("stats", help="summarise a trace dataset")
    _add_dataset_arguments(stats)

    query = subparsers.add_parser("query", help="run top-k queries against a trace dataset")
    _add_dataset_arguments(query)
    query.add_argument("--entity", help="query entity identifier (single-query mode)")
    query.add_argument(
        "--batch",
        nargs="+",
        metavar="ENTITY",
        help="query entity identifiers (batch mode; mutually exclusive with --entity)",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker threads for batch fan-out (0 = serial)",
    )
    query.add_argument("--k", type=int, default=10, help="number of results")
    query.add_argument("--num-hashes", type=int, default=256, help="hash functions for the index")
    query.add_argument("--seed", type=int, default=0, help="hash family seed")
    query.add_argument("--u", type=float, default=2.0, help="ADM level exponent")
    query.add_argument("--v", type=float, default=2.0, help="ADM duration exponent")
    query.add_argument(
        "--bound-mode",
        choices=["lift", "per_level"],
        default="lift",
        help="upper-bound construction (lift = the paper's Theorem 4; per_level = strictly admissible)",
    )
    query.add_argument(
        "--approximation",
        type=float,
        default=0.0,
        help="additive slack for approximate top-k (0 = exact)",
    )

    figures = subparsers.add_parser("figures", help="regenerate the paper's evaluation figures")
    figures.add_argument("--scale", choices=["tiny", "small", "medium"], default="tiny")
    figures.add_argument("--only", nargs="*", default=None, help="figure ids (default: all)")
    figures.add_argument("--max-rows", type=int, default=30)

    return parser


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--traces", required=True, help="CSV trace file (entity,unit,start,end)")
    parser.add_argument("--hierarchy", required=True, help="sp-index JSON (unit -> parent)")


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _command_generate(args: argparse.Namespace) -> int:
    if args.kind == "syn":
        dataset, _config = generate_synthetic_dataset(
            num_entities=args.entities, horizon=args.horizon, seed=args.seed
        )
    else:
        dataset, _config = generate_wifi_dataset(
            num_devices=args.entities, horizon=args.horizon, seed=args.seed
        )
    records = write_traces_csv(dataset, args.output)
    write_hierarchy_json(dataset.hierarchy, args.hierarchy)
    print(
        f"wrote {records} presence records for {dataset.num_entities} entities to {args.output}"
    )
    print(f"wrote sp-index ({dataset.hierarchy.describe()}) to {args.hierarchy}")
    return 0


def _load_dataset(args: argparse.Namespace):
    hierarchy = load_hierarchy_json(args.hierarchy)
    return load_traces_csv(args.traces, hierarchy)


def _command_stats(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    print(dataset.describe())
    print(f"average base ST-cells per entity: {dataset.average_cells_per_entity():.1f}")
    print(f"ST-cell universe size: {dataset.num_st_cells}")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    if bool(args.entity) == bool(args.batch):
        print("error: pass exactly one of --entity or --batch", file=sys.stderr)
        return 2
    if args.workers < 0:
        print(f"error: --workers must be >= 0, got {args.workers}", file=sys.stderr)
        return 2
    if args.workers and not args.batch:
        print("error: --workers only applies to --batch queries", file=sys.stderr)
        return 2
    dataset = _load_dataset(args)
    queries = args.batch if args.batch else [args.entity]
    unknown = [entity for entity in queries if entity not in dataset]
    if unknown:
        for entity in unknown:
            print(f"error: unknown entity {entity!r}", file=sys.stderr)
        return 2
    measure = HierarchicalADM(num_levels=dataset.num_levels, u=args.u, v=args.v)
    engine = TraceQueryEngine(
        dataset,
        measure=measure,
        num_hashes=args.num_hashes,
        seed=args.seed,
        bound_mode=args.bound_mode,
        batch_workers=args.workers,
    ).build()

    if args.batch:
        batch = engine.top_k_batch(queries, k=args.k, approximation=args.approximation)
        for result in batch:
            _print_result(result, args.k)
        print(
            f"batch: {batch.num_queries} queries in {batch.wall_seconds:.3f}s "
            f"({batch.queries_per_second:.1f} q/s, workers={batch.workers}), "
            f"scored {batch.total_entities_scored} entities, "
            f"mean pruning effectiveness {batch.mean_pruning_effectiveness:.3f}"
        )
        return 0

    result = engine.top_k(args.entity, k=args.k, approximation=args.approximation)
    _print_result(result, args.k)
    return 0


def _print_result(result, k: int) -> None:
    print(f"top-{k} associates of {result.query_entity}:")
    for rank, (entity, degree) in enumerate(result, start=1):
        print(f"{rank:>3}. {entity:<30} {degree:.4f}")
    stats = result.stats
    print(
        f"scored {stats.entities_scored}/{stats.population} entities "
        f"(pruning effectiveness {stats.pruning_effectiveness:.3f}, "
        f"early termination: {stats.terminated_early})"
    )


def _command_figures(args: argparse.Namespace) -> int:
    from repro.experiments import figures as figure_module

    available = {
        "7.1": figure_module.figure_7_1,
        "7.2": figure_module.figure_7_2,
        "7.3": figure_module.figure_7_3,
        "7.4": figure_module.figure_7_4,
        "7.5": figure_module.figure_7_5,
        "7.6": figure_module.figure_7_6,
        "7.7": figure_module.figure_7_7,
        "7.8": figure_module.figure_7_8,
        "7.9": figure_module.figure_7_9,
    }
    selected = args.only or list(available)
    unknown = [name for name in selected if name not in available]
    if unknown:
        print(f"error: unknown figure ids {unknown}", file=sys.stderr)
        return 2
    for name in selected:
        result = available[name](scale=args.scale)
        print(result.to_table(max_rows=args.max_rows))
        print()
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "stats": _command_stats,
    "query": _command_query,
    "figures": _command_figures,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
