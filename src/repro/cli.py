"""Command-line interface: generate data, build/serve indexes, run queries.

The CLI covers the end-to-end workflow a practitioner needs without writing
Python::

    # Generate a synthetic city and its sp-index
    python -m repro generate syn --entities 500 --output traces.csv \
        --hierarchy hierarchy.json

    # Summarise a trace file
    python -m repro stats --traces traces.csv --hierarchy hierarchy.json

    # Build a durable snapshot index (optionally sharded)
    python -m repro index build --traces traces.csv --hierarchy hierarchy.json \
        --output snapshot/ --num-hashes 256
    python -m repro index info --snapshot snapshot/

    # Who is most associated with syn-17?  (ad-hoc build from the CSV)
    python -m repro query --traces traces.csv --hierarchy hierarchy.json \
        --entity syn-17 --k 10 --num-hashes 256

    # Same query served from the snapshot -- no re-signing on start-up
    python -m repro query --snapshot snapshot/ --entity syn-17 --k 10

    # Sharded serving: partition entities over 4 shard indexes
    python -m repro query --traces traces.csv --hierarchy hierarchy.json \
        --entity syn-17 --shards 4

    # Batch mode: many queries over one index, optionally fanned out over
    # worker threads, with an aggregate throughput/pruning report
    python -m repro query --traces traces.csv --hierarchy hierarchy.json \
        --batch syn-17 syn-4 syn-23 --workers 4 --k 10

    # Replay the trace file as a live event stream: micro-batched ingestion,
    # a sliding window, and interleaved top-k queries served throughout
    python -m repro stream --traces traces.csv --hierarchy hierarchy.json \
        --batch-size 64 --window 48 --query-every 200 --queries syn-17 syn-4

    # Serve the snapshot over HTTP: coalesced top-k queries, streamed event
    # ingest, health and stats endpoints (see docs/SERVING.md)
    python -m repro serve --snapshot snapshot/ --port 8080

    # Observability (see docs/OBSERVABILITY.md): trace every request into
    # the slow-query log, watch live QPS/latency, print slow traces
    python -m repro serve --snapshot snapshot/ --trace-sample 1.0
    python -m repro stats --watch 5 --url http://127.0.0.1:8080
    python -m repro trace --url http://127.0.0.1:8080 --limit 3

    # Regenerate one of the paper's figures
    python -m repro figures --only 7.3 --scale tiny

Every subcommand is also importable (``repro.cli.main``) so tests drive it
in-process.  Exit codes: 0 on success, 2 on usage or data errors (unknown
entities, malformed/empty inputs, invalid option combinations); see
``docs/CLI.md`` for the full contract.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.engine import TraceQueryEngine
from repro.measures.adm import HierarchicalADM
from repro.mobility.hierarchical import generate_synthetic_dataset
from repro.mobility.wifi import generate_wifi_dataset
from repro.service.sharded import SHARDED_SNAPSHOT_FORMAT, ShardedEngine
from repro.traces.io import (
    load_hierarchy_json,
    load_traces_csv,
    write_hierarchy_json,
    write_traces_csv,
)

__all__ = ["main", "build_parser"]

_DEFAULT_NUM_HASHES = 256
_DEFAULT_SEED = 0
_DEFAULT_U = 2.0
_DEFAULT_V = 2.0
_DEFAULT_BOUND_MODE = "lift"


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-k queries over digital traces: data generation, indexing, querying.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic trace dataset and its sp-index"
    )
    generate.add_argument("kind", choices=["syn", "wifi"], help="generator to use")
    generate.add_argument("--entities", type=int, default=300, help="number of entities/devices")
    generate.add_argument("--horizon", type=int, default=168, help="horizon in base temporal units")
    generate.add_argument("--seed", type=int, default=0, help="generator seed")
    generate.add_argument("--output", required=True, help="CSV file to write the traces to")
    generate.add_argument("--hierarchy", required=True, help="JSON file to write the sp-index to")

    stats = subparsers.add_parser(
        "stats", help="summarise a trace dataset, or watch a live serving daemon"
    )
    _add_dataset_arguments(stats, required=False)
    stats.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECS",
        help="poll a serving daemon's /v1/stats every SECS seconds and print "
        "one line per interval (QPS, p50/p95 latency, cache hit rate, ingest "
        "lag) instead of summarising a trace file",
    )
    stats.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="server base URL for --watch (default http://127.0.0.1:8080)",
    )
    stats.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop --watch after this many intervals (0 = until interrupted)",
    )

    query = subparsers.add_parser("query", help="run top-k queries against a trace dataset")
    _add_dataset_arguments(query, required=False)
    query.add_argument(
        "--snapshot",
        help="snapshot directory to serve from (mutually exclusive with --traces/--hierarchy)",
    )
    query.add_argument("--entity", help="query entity identifier (single-query mode)")
    query.add_argument(
        "--batch",
        nargs="+",
        metavar="ENTITY",
        help="query entity identifiers (batch mode; mutually exclusive with --entity)",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker threads for batch fan-out (0 = serial)",
    )
    query.add_argument("--k", type=int, default=10, help="number of results")
    query.add_argument(
        "--shards",
        type=int,
        default=0,
        help="serve through a sharded engine with this many entity partitions (0 = single engine)",
    )
    query.add_argument(
        "--partitioner",
        choices=["hash", "round_robin", "consistent_hash"],
        default=None,
        help="entity partitioning strategy for --shards (default: hash; "
        "consistent_hash minimises reassignment when shard counts change)",
    )
    _add_index_arguments(query, defaults=False)
    query.add_argument(
        "--approximation",
        type=float,
        default=0.0,
        help="additive slack for approximate top-k (0 = exact)",
    )
    query.add_argument(
        "--trace",
        action="store_true",
        help="print the query's span tree (kernel stage timings and pruning "
        "counters) after the results; --entity mode only",
    )
    _add_columnar_argument(query)

    index = subparsers.add_parser("index", help="build and inspect durable snapshot indexes")
    index_sub = index.add_subparsers(dest="index_command", required=True)

    index_build = index_sub.add_parser(
        "build", help="build an index from a trace file and snapshot it to disk"
    )
    _add_dataset_arguments(index_build)
    index_build.add_argument("--output", required=True, help="snapshot directory to write")
    index_build.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="base temporal units the hash range must cover (default: derived "
        "from the traces; over-provision it when the snapshot will serve "
        "streamed events later than its history)",
    )
    index_build.add_argument(
        "--shards",
        type=int,
        default=0,
        help="build a sharded index with this many entity partitions (0 = single engine)",
    )
    index_build.add_argument(
        "--partitioner",
        choices=["hash", "round_robin", "consistent_hash"],
        default=None,
        help="entity partitioning strategy for --shards (default: hash; "
        "consistent_hash minimises reassignment when shard counts change)",
    )
    _add_index_arguments(index_build, defaults=True)

    index_info = index_sub.add_parser("info", help="summarise a snapshot directory")
    index_info.add_argument("--snapshot", required=True, help="snapshot directory to inspect")

    stream = subparsers.add_parser(
        "stream",
        help="replay an event log through the streaming ingestor with interleaved queries",
    )
    _add_dataset_arguments(stream)
    stream.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="base temporal units covered (default: derived from the event log)",
    )
    stream.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="target ingest rate in events/second (0 = as fast as possible)",
    )
    stream.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="micro-batch size: events buffered per flush through the bulk pipeline",
    )
    stream.add_argument(
        "--window",
        type=int,
        default=0,
        help="sliding-window length in base temporal units (0 = keep everything)",
    )
    stream.add_argument(
        "--compact-every",
        type=int,
        default=0,
        help="auto-compact after this many index-changing retractions (0 = never)",
    )
    stream.add_argument(
        "--queries",
        nargs="+",
        metavar="ENTITY",
        default=None,
        help="entities to query round-robin during the replay "
        "(default: the first three entities of the log)",
    )
    stream.add_argument(
        "--query-every",
        type=int,
        default=0,
        help="serve one top-k query every N ingested events (0 = no queries)",
    )
    stream.add_argument("--k", type=int, default=10, help="result size of interleaved queries")
    stream.add_argument(
        "--shards",
        type=int,
        default=0,
        help="stream into a sharded engine with this many entity partitions (0 = single engine)",
    )
    stream.add_argument(
        "--partitioner",
        choices=["hash", "round_robin", "consistent_hash"],
        default=None,
        help="entity partitioning strategy for --shards (default: hash; "
        "consistent_hash minimises reassignment when shard counts change)",
    )
    _add_index_arguments(stream, defaults=True)
    _add_columnar_argument(stream)

    serve = subparsers.add_parser(
        "serve",
        help="serve top-k queries and event ingest over HTTP (see docs/SERVING.md)",
    )
    _add_dataset_arguments(serve, required=False)
    serve.add_argument(
        "--snapshot",
        help="snapshot directory to serve from (mutually exclusive with --traces/--hierarchy)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind (default 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="TCP port to bind (default 8080; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="serve through a sharded engine with this many entity partitions (0 = single engine)",
    )
    serve.add_argument(
        "--partitioner",
        choices=["hash", "round_robin", "consistent_hash"],
        default=None,
        help="entity partitioning strategy for --shards (default: hash; "
        "consistent_hash minimises reassignment when shard counts change)",
    )
    serve.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="base temporal units the hash range must cover "
        "(default: derived from the traces; fixed by the snapshot with --snapshot)",
    )
    serve.add_argument(
        "--cache",
        type=int,
        default=None,
        help="query-result cache size in entries (default: the engine config's value)",
    )
    serve.add_argument(
        "--coalesce-window",
        type=float,
        default=2.0,
        help="milliseconds the coalescer waits for concurrent top-k requests "
        "to share one batch (0 = dispatch immediately; default 2)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="admission-control bound on queued top-k requests (beyond it: HTTP 429)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="largest coalesced query batch dispatched at once",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="ingest micro-batch size: events buffered per flush through the bulk pipeline",
    )
    serve.add_argument(
        "--window",
        type=int,
        default=0,
        help="sliding-window length in base temporal units for streamed events (0 = keep everything)",
    )
    serve.add_argument(
        "--compact-every",
        type=int,
        default=0,
        help="auto-compact after this many index-changing retractions (0 = never)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="serve top-k queries from this many read-only worker processes over "
        "shared memory-mapped snapshot generations (0 = single-process daemon; "
        "see docs/SERVING.md)",
    )
    serve.add_argument(
        "--cluster",
        type=int,
        default=0,
        metavar="R",
        help="serve through the distributed tier: R shard-server replica "
        "processes per shard group, with hedged failover and degraded-answer "
        "marking (requires --shards; see docs/DISTRIBUTED.md)",
    )
    serve.add_argument(
        "--wal",
        default=None,
        metavar="DIR",
        help="write-ahead log directory: every flushed micro-batch is durably "
        "logged before it mutates the index, and on start-up the log suffix "
        "after the recovered state is replayed (see docs/DURABILITY.md)",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent generation store directory for --workers (default: a "
        "private temporary directory discarded on exit); on restart the daemon "
        "recovers from the newest published generation, then replays the --wal "
        "suffix",
    )
    serve.add_argument(
        "--delta-limit",
        type=int,
        default=8,
        help="consecutive delta generations published before a full snapshot "
        "is forced (0 = publish every generation as a full snapshot; default 8)",
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        metavar="RATE",
        help="probability in [0, 1] that a /v1/topk request is traced end to "
        "end (0 disables tracing; traces feed GET /v1/debug/slow and "
        "`repro trace`; see docs/OBSERVABILITY.md)",
    )
    _add_index_arguments(serve, defaults=False)
    _add_columnar_argument(serve)

    cluster = subparsers.add_parser(
        "cluster",
        help="distributed serving utilities: shard servers and the chaos "
        "battery (see docs/DISTRIBUTED.md)",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    cluster_shard = cluster_sub.add_parser(
        "shard",
        help="run one shard-server replica over a shard's generation store "
        "(normally spawned by `repro serve --cluster`)",
    )
    cluster_shard.add_argument(
        "--store", required=True, help="shard generation-store directory"
    )
    cluster_shard.add_argument(
        "--shard", default="shard-000", help="shard name (for status/metrics)"
    )
    cluster_shard.add_argument("--host", default="127.0.0.1")
    cluster_shard.add_argument(
        "--port", type=int, default=0, help="TCP port to bind (0 = ephemeral)"
    )
    cluster_shard.add_argument(
        "--port-file",
        default=None,
        help="write the bound port here (atomic) so parents can discover it",
    )
    cluster_shard.add_argument(
        "--startup-timeout",
        type=float,
        default=60.0,
        help="seconds to wait for the first published generation",
    )

    cluster_chaos = cluster_sub.add_parser(
        "chaos",
        help="run the chaos battery: interleaved queries and ingest across "
        "kill/restart cycles, gated on exactness against a single-engine "
        "oracle (exit 0 = every gate held)",
    )
    cluster_chaos.add_argument(
        "--smoke", action="store_true", help="CI-sized workload (same fault schedule)"
    )
    cluster_chaos.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    cluster_chaos.add_argument("--seed", type=int, default=7, help="workload seed")
    cluster_chaos.add_argument(
        "--shards", type=int, default=2, help="shard groups (default 2)"
    )
    cluster_chaos.add_argument(
        "--replication", type=int, default=2, help="replicas per group (default 2)"
    )

    wal = subparsers.add_parser(
        "wal",
        help="inspect or replay a serving write-ahead log (see docs/DURABILITY.md)",
    )
    wal_sub = wal.add_subparsers(dest="wal_command", required=True)

    wal_inspect = wal_sub.add_parser(
        "inspect",
        help="scan the log's segments and report integrity and the replayable prefix",
    )
    wal_inspect.add_argument("directory", help="WAL directory to scan")
    wal_inspect.add_argument(
        "--json", action="store_true", help="print the full scan report as JSON"
    )

    wal_replay = wal_sub.add_parser(
        "replay",
        help="replay a WAL onto a snapshot and write the recovered snapshot",
    )
    wal_replay.add_argument("directory", help="WAL directory to replay")
    wal_replay.add_argument(
        "--snapshot",
        required=True,
        help="snapshot directory to recover from (replay starts after its recorded wal_seq)",
    )
    wal_replay.add_argument("--output", required=True, help="directory for the recovered snapshot")
    wal_replay.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="ingest micro-batch size the crashed daemon ran with (default 256)",
    )
    wal_replay.add_argument(
        "--window",
        type=int,
        default=0,
        help="sliding-window length the crashed daemon ran with (0 = none)",
    )
    wal_replay.add_argument(
        "--compact-every",
        type=int,
        default=0,
        help="auto-compaction threshold the crashed daemon ran with (0 = never)",
    )

    trace = subparsers.add_parser(
        "trace",
        help="fetch and print a serving daemon's slow-query traces "
        "(GET /v1/debug/slow; requires `repro serve --trace-sample`)",
    )
    trace.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="server base URL (default http://127.0.0.1:8080)",
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=0,
        help="print at most this many traces (0 = all retained)",
    )
    trace.add_argument(
        "--errored",
        action="store_true",
        help="print the most recent errored traces instead of the slowest",
    )

    figures = subparsers.add_parser("figures", help="regenerate the paper's evaluation figures")
    figures.add_argument("--scale", choices=["tiny", "small", "medium"], default="tiny")
    figures.add_argument("--only", nargs="*", default=None, help="figure ids (default: all)")
    figures.add_argument("--max-rows", type=int, default=30)

    scenario = subparsers.add_parser(
        "scenario",
        help="run the end-to-end scenario corpus against real backends and "
        "score exact top-k agreement with the brute-force oracle",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    scenario_list = scenario_sub.add_parser("list", help="list the bundled scenarios")
    scenario_list.add_argument(
        "--json", action="store_true", help="print full specs as JSON"
    )
    scenario_list.add_argument(
        "--tag", default=None, help="only scenarios carrying this tag"
    )

    scenario_run = scenario_sub.add_parser(
        "run", help="replay scenarios against backends and emit a scored report"
    )
    scenario_run.add_argument(
        "names", nargs="*", help="scenario names (see `repro scenario list`)"
    )
    scenario_run.add_argument(
        "--all", action="store_true", help="run the whole bundled corpus"
    )
    scenario_run.add_argument(
        "--smoke",
        action="store_true",
        help="smaller datasets and fewer queries (the CI configuration)",
    )
    scenario_run.add_argument(
        "--backends",
        nargs="+",
        default=None,
        metavar="BACKEND",
        help="deployment shapes to replay against (default: in_process "
        "sharded http_workers)",
    )
    scenario_run.add_argument(
        "--output", default=None, help="write the JSON report to this file"
    )
    scenario_run.add_argument(
        "--html", default=None, help="also render the report as HTML to this file"
    )
    scenario_run.add_argument(
        "--quiet", action="store_true", help="suppress per-step progress lines"
    )

    scenario_report = scenario_sub.add_parser(
        "report", help="validate a saved report and summarise or re-render it"
    )
    scenario_report.add_argument(
        "--input", required=True, help="JSON report produced by `scenario run`"
    )
    scenario_report.add_argument(
        "--html", default=None, help="render the report as HTML to this file"
    )

    return parser


def _add_columnar_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--no-columnar`` performance toggle (query/stream/serve).

    Selects the reference pointer-walking traversal instead of the columnar
    kernel -- results are identical, so this is a debugging / A-B latency
    knob, usable with snapshots too (unlike the index-shaping options, it
    never conflicts with what the snapshot was built with).
    """
    parser.add_argument(
        "--no-columnar",
        action="store_true",
        help="answer queries through the reference traversal instead of the "
        "columnar kernel (identical results; for debugging and latency A/B)",
    )


def _add_dataset_arguments(parser: argparse.ArgumentParser, required: bool = True) -> None:
    parser.add_argument(
        "--traces", required=required, help="CSV trace file (entity,unit,start,end)"
    )
    parser.add_argument(
        "--hierarchy", required=required, help="sp-index JSON (unit -> parent)"
    )


def _add_index_arguments(parser: argparse.ArgumentParser, defaults: bool) -> None:
    """Index-shaping options.

    ``defaults=False`` leaves them at ``None`` so the query command can tell
    "explicitly passed" from "defaulted" -- with ``--snapshot`` these options
    are fixed by the snapshot and passing them is an error.
    """
    parser.add_argument(
        "--num-hashes",
        type=int,
        default=_DEFAULT_NUM_HASHES if defaults else None,
        help=f"hash functions for the index (default {_DEFAULT_NUM_HASHES})",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=_DEFAULT_SEED if defaults else None,
        help=f"hash family seed (default {_DEFAULT_SEED})",
    )
    parser.add_argument(
        "--u",
        type=float,
        default=_DEFAULT_U if defaults else None,
        help=f"ADM level exponent (default {_DEFAULT_U})",
    )
    parser.add_argument(
        "--v",
        type=float,
        default=_DEFAULT_V if defaults else None,
        help=f"ADM duration exponent (default {_DEFAULT_V})",
    )
    parser.add_argument(
        "--bound-mode",
        choices=["lift", "per_level"],
        default=_DEFAULT_BOUND_MODE if defaults else None,
        help="upper-bound construction (lift = the paper's Theorem 4; per_level = strictly admissible)",
    )


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _error(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _command_generate(args: argparse.Namespace) -> int:
    if args.kind == "syn":
        dataset, _config = generate_synthetic_dataset(
            num_entities=args.entities, horizon=args.horizon, seed=args.seed
        )
    else:
        dataset, _config = generate_wifi_dataset(
            num_devices=args.entities, horizon=args.horizon, seed=args.seed
        )
    records = write_traces_csv(dataset, args.output)
    write_hierarchy_json(dataset.hierarchy, args.hierarchy)
    print(
        f"wrote {records} presence records for {dataset.num_entities} entities to {args.output}"
    )
    print(f"wrote sp-index ({dataset.hierarchy.describe()}) to {args.hierarchy}")
    return 0


class _DatasetError(Exception):
    """A dataset/hierarchy input could not be loaded (missing or malformed)."""


def _shard_options_error(args: argparse.Namespace) -> Optional[str]:
    """The shared ``--shards``/``--partitioner`` validation, or ``None``."""
    if args.shards < 0:
        return f"--shards must be >= 0, got {args.shards}"
    if args.partitioner and not args.shards:
        return "--partitioner only applies together with --shards"
    return None


def _make_engine(
    dataset,
    measure: HierarchicalADM,
    num_hashes: int,
    seed: int,
    bound_mode: str,
    shards: int,
    partitioner: Optional[str],
) -> Union[TraceQueryEngine, ShardedEngine]:
    """The (unbuilt) engine every build-from-traces subcommand constructs."""
    if shards:
        return ShardedEngine(
            dataset,
            measure=measure,
            num_shards=shards,
            partitioner=partitioner or "hash",
            num_hashes=num_hashes,
            seed=seed,
            bound_mode=bound_mode,
        )
    return TraceQueryEngine(
        dataset,
        measure=measure,
        num_hashes=num_hashes,
        seed=seed,
        bound_mode=bound_mode,
    )


def _load_dataset(args: argparse.Namespace, horizon: Optional[int] = None):
    """Load the ``--traces``/``--hierarchy`` pair, or raise :class:`_DatasetError`.

    Wrapping the loader errors keeps every subcommand on the exit-code
    contract: bad input files exit 2 with a one-line message instead of a
    traceback.  ``horizon`` over-provisions the dataset's hash range
    (serve's ``--horizon``).
    """
    try:
        hierarchy = load_hierarchy_json(args.hierarchy)
    except (OSError, ValueError) as exc:
        raise _DatasetError(f"cannot load sp-index {args.hierarchy}: {exc}") from exc
    try:
        return load_traces_csv(args.traces, hierarchy, horizon=horizon)
    except (OSError, ValueError, KeyError) as exc:
        raise _DatasetError(f"cannot load traces {args.traces}: {exc}") from exc


def _command_stats(args: argparse.Namespace) -> int:
    if args.watch is not None:
        if args.traces or args.hierarchy:
            return _error("--watch polls a live server; --traces/--hierarchy do not apply")
        if args.watch <= 0:
            return _error(f"--watch must be > 0 seconds, got {args.watch}")
        if args.iterations < 0:
            return _error(f"--iterations must be >= 0, got {args.iterations}")
        return _watch_stats(args)
    if not (args.traces and args.hierarchy):
        return _error("pass --traces and --hierarchy, or --watch SECS to poll a server")
    try:
        dataset = _load_dataset(args)
    except _DatasetError as exc:
        return _error(str(exc))
    print(dataset.describe())
    print(f"average base ST-cells per entity: {dataset.average_cells_per_entity():.1f}")
    print(f"ST-cell universe size: {dataset.num_st_cells}")
    return 0


def _fetch_json(url: str, timeout: float = 10.0) -> Dict[str, object]:
    """GET ``url`` and decode the JSON body, or raise :class:`_CommandError`."""
    import json
    from urllib.error import URLError
    from urllib.request import urlopen

    try:
        with urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except (URLError, OSError, ValueError) as exc:
        raise _CommandError(f"cannot fetch {url}: {exc}") from exc


def _histogram_percentile(bucket_deltas: Sequence[int], quantile: float) -> Optional[float]:
    """Interpolate a percentile (seconds) from per-bucket count deltas.

    Delegates to :func:`repro.obs.trace.histogram_percentile` -- the shared
    estimator the scenario harness and the stats watcher both use.
    """
    from repro.obs.trace import histogram_percentile

    return histogram_percentile(bucket_deltas, quantile)


def _topk_bucket_counts(payload: Dict[str, object]) -> List[int]:
    """The ``/v1/topk`` latency bucket counts of one ``/v1/stats`` payload."""
    from repro.obs.trace import LATENCY_BUCKETS

    endpoints = payload.get("endpoints")
    entry = endpoints.get("/v1/topk") if isinstance(endpoints, dict) else None
    if not isinstance(entry, dict):
        return [0] * (len(LATENCY_BUCKETS) + 1)
    buckets = entry.get("latency", {}).get("buckets", {})
    counts = [int(buckets.get(f"le_{edge:g}", 0)) for edge in LATENCY_BUCKETS]
    counts.append(int(buckets.get("le_inf", 0)))
    return counts


def _topk_requests(payload: Dict[str, object]) -> int:
    endpoints = payload.get("endpoints")
    entry = endpoints.get("/v1/topk") if isinstance(endpoints, dict) else None
    return int(entry.get("requests", 0)) if isinstance(entry, dict) else 0


def _cache_counters(payload: Dict[str, object]) -> Optional[Dict[str, int]]:
    engine = payload.get("engine")
    cache = engine.get("cache") if isinstance(engine, dict) else None
    if not isinstance(cache, dict):
        return None
    return {"hits": int(cache.get("hits", 0)), "misses": int(cache.get("misses", 0))}


def _format_latency(seconds: Optional[float]) -> str:
    from repro.obs.trace import LATENCY_BUCKETS

    if seconds is None:
        return "-"
    if seconds == float("inf"):
        return f">{LATENCY_BUCKETS[-1] * 1000.0:g}ms"
    return f"{seconds * 1000.0:.1f}ms"


def _stats_interval_line(
    previous: Dict[str, object], current: Dict[str, object], interval: float
) -> str:
    """One ``--watch`` output line from two consecutive stats snapshots.

    Rates and percentiles come from the *deltas* between the snapshots, so
    each line describes that interval's traffic rather than the lifetime
    aggregate; ingest lag is a point-in-time gauge of the current snapshot.
    """
    import time

    queries = _topk_requests(current) - _topk_requests(previous)
    qps = queries / interval if interval > 0 else 0.0
    deltas = [
        now - before
        for now, before in zip(_topk_bucket_counts(current), _topk_bucket_counts(previous))
    ]
    p50 = _format_latency(_histogram_percentile(deltas, 0.5))
    p95 = _format_latency(_histogram_percentile(deltas, 0.95))
    cache_now, cache_before = _cache_counters(current), _cache_counters(previous)
    if cache_now is None or cache_before is None:
        cache_text = "-"
    else:
        hits = cache_now["hits"] - cache_before["hits"]
        lookups = hits + cache_now["misses"] - cache_before["misses"]
        cache_text = f"{hits / lookups:.0%}" if lookups > 0 else "-"
    ingest = current.get("ingest")
    ingest = ingest if isinstance(ingest, dict) else {}
    backlog = int(ingest.get("events_buffered", 0))
    flush_age = ingest.get("seconds_since_last_flush")
    flush_text = f"{flush_age:.1f}s" if isinstance(flush_age, (int, float)) else "-"
    return (
        f"{time.strftime('%H:%M:%S')}  qps {qps:7.1f}  p50 {p50:>8}  p95 {p95:>8}  "
        f"cache {cache_text:>4}  backlog {backlog:>6}  flush-age {flush_text:>7}"
    )


def _watch_stats(args: argparse.Namespace) -> int:
    """The ``repro stats --watch`` loop: one line per polling interval."""
    import time

    url = args.url.rstrip("/") + "/v1/stats"
    try:
        previous = _fetch_json(url)
    except _CommandError as exc:
        return _error(str(exc))
    print(
        f"watching {url} every {args.watch:g}s "
        "(qps and percentiles are per-interval; ctrl-c to stop)",
        flush=True,
    )
    completed = 0
    try:
        while not args.iterations or completed < args.iterations:
            time.sleep(args.watch)
            try:
                current = _fetch_json(url)
            except _CommandError as exc:
                return _error(str(exc))
            print(_stats_interval_line(previous, current, args.watch), flush=True)
            previous = current
            completed += 1
    except KeyboardInterrupt:
        pass
    return 0


def _load_snapshot_engine(path: str) -> Union[TraceQueryEngine, ShardedEngine]:
    """Load a snapshot directory, auto-detecting single vs sharded format."""
    from repro.storage.snapshot import read_manifest

    manifest = read_manifest(path)
    if manifest.get("format") == SHARDED_SNAPSHOT_FORMAT:
        return ShardedEngine.load(path)
    return TraceQueryEngine.load(path)


def _explicit_index_options(args: argparse.Namespace) -> List[str]:
    """Index-shaping options the user passed explicitly (query/serve only)."""
    candidates = (
        ("--num-hashes", args.num_hashes),
        ("--seed", args.seed),
        ("--u", args.u),
        ("--v", args.v),
        ("--bound-mode", args.bound_mode),
    )
    return [name for name, value in candidates if value is not None]


class _CommandError(Exception):
    """An exit-2 condition; the message is the one-line stderr output."""


def _resolve_engine(
    args: argparse.Namespace, horizon: Optional[int] = None
) -> Union[TraceQueryEngine, ShardedEngine]:
    """The `--snapshot` xor `--traces/--hierarchy` engine shared by
    ``query`` and ``serve``: validate the option combination, then load the
    snapshot or build from the trace file.

    Raises :class:`_CommandError` for every exit-2 condition, so both
    subcommands keep identical validation rules and error strings.
    ``horizon`` (serve's ``--horizon``) over-provisions the hash range of a
    traces-mode build; it is rejected with ``--snapshot``.
    """
    from repro.storage.snapshot import SnapshotError

    if args.snapshot and (args.traces or args.hierarchy):
        raise _CommandError("pass either --snapshot or --traces/--hierarchy, not both")
    if not args.snapshot and not (args.traces and args.hierarchy):
        raise _CommandError("pass --snapshot, or both --traces and --hierarchy")
    shard_error = _shard_options_error(args)
    if shard_error:
        raise _CommandError(shard_error)

    if args.snapshot:
        explicit = _explicit_index_options(args)
        if explicit:
            raise _CommandError(
                f"{', '.join(explicit)} cannot be combined with --snapshot; "
                "those options are fixed when the snapshot is built"
            )
        if args.shards:
            raise _CommandError(
                "--shards cannot be combined with --snapshot; sharded snapshots "
                "embed their shard count (see `repro index build --shards`)"
            )
        if horizon is not None:
            raise _CommandError(
                "--horizon cannot be combined with --snapshot; the snapshot fixes it"
            )
        try:
            engine = _load_snapshot_engine(args.snapshot)
        except SnapshotError as exc:
            raise _CommandError(str(exc)) from exc
        if getattr(args, "no_columnar", False):
            engine.configure_columnar(False)
        return engine

    if horizon is not None and horizon < 1:
        raise _CommandError(f"--horizon must be >= 1, got {horizon}")
    try:
        dataset = _load_dataset(args, horizon=horizon)
    except _DatasetError as exc:
        raise _CommandError(str(exc)) from exc
    num_hashes = args.num_hashes if args.num_hashes is not None else _DEFAULT_NUM_HASHES
    seed = args.seed if args.seed is not None else _DEFAULT_SEED
    u = args.u if args.u is not None else _DEFAULT_U
    v = args.v if args.v is not None else _DEFAULT_V
    bound_mode = args.bound_mode if args.bound_mode is not None else _DEFAULT_BOUND_MODE
    measure = HierarchicalADM(num_levels=dataset.num_levels, u=u, v=v)
    engine = _make_engine(
        dataset, measure, num_hashes, seed, bound_mode, args.shards, args.partitioner
    ).build()
    if getattr(args, "no_columnar", False):
        engine.configure_columnar(False)
    return engine


def _command_query(args: argparse.Namespace) -> int:
    if bool(args.entity) == bool(args.batch):
        return _error("pass exactly one of --entity or --batch")
    if args.workers < 0:
        return _error(f"--workers must be >= 0, got {args.workers}")
    if args.workers and not args.batch:
        return _error("--workers only applies to --batch queries")
    if args.trace and args.batch:
        return _error("--trace only applies to --entity queries")

    try:
        engine = _resolve_engine(args)
    except _CommandError as exc:
        return _error(str(exc))
    if engine.dataset.num_entities == 0:
        if args.snapshot:
            return _error(
                f"snapshot {args.snapshot} holds an empty index; nothing to query"
            )
        return _error(
            f"dataset {args.traces} contains no trace records; nothing to query"
        )

    queries = args.batch if args.batch else [args.entity]
    unknown = [entity for entity in queries if entity not in engine.dataset]
    if unknown:
        for entity in unknown:
            print(f"error: unknown entity {entity!r}", file=sys.stderr)
        return 2

    if args.batch:
        batch = engine.top_k_batch(
            queries, k=args.k, workers=args.workers, approximation=args.approximation
        )
        for result in batch:
            _print_result(result, args.k)
        print(
            f"batch: {batch.num_queries} queries in {batch.wall_seconds:.3f}s "
            f"({batch.queries_per_second:.1f} q/s, workers={batch.workers}), "
            f"scored {batch.total_entities_scored} entities, "
            f"mean pruning effectiveness {batch.mean_pruning_effectiveness:.3f}"
        )
        return 0

    if args.trace:
        from repro.obs.trace import Tracer, format_trace

        tracer = Tracer(sample_rate=1.0)
        trace = tracer.start_trace("query", process="cli")
        result = engine.top_k(
            args.entity, k=args.k, approximation=args.approximation, trace=trace.context()
        )
        record = tracer.finish(trace)
        _print_result(result, args.k)
        print()
        print(format_trace(record))
        return 0

    result = engine.top_k(args.entity, k=args.k, approximation=args.approximation)
    _print_result(result, args.k)
    return 0


def _print_result(result, k: int) -> None:
    print(f"top-{k} associates of {result.query_entity}:")
    for rank, (entity, degree) in enumerate(result, start=1):
        print(f"{rank:>3}. {entity:<30} {degree:.4f}")
    stats = result.stats
    print(
        f"scored {stats.entities_scored}/{stats.population} entities "
        f"(pruning effectiveness {stats.pruning_effectiveness:.3f}, "
        f"early termination: {stats.terminated_early})"
    )


def _command_index(args: argparse.Namespace) -> int:
    if args.index_command == "build":
        return _command_index_build(args)
    return _command_index_info(args)


def _command_index_build(args: argparse.Namespace) -> int:
    from repro.storage.snapshot import SnapshotError

    shard_error = _shard_options_error(args)
    if shard_error:
        return _error(shard_error)
    if args.horizon is not None and args.horizon < 1:
        return _error(f"--horizon must be >= 1, got {args.horizon}")
    try:
        dataset = _load_dataset(args, horizon=args.horizon)
    except _DatasetError as exc:
        return _error(str(exc))
    measure = HierarchicalADM(num_levels=dataset.num_levels, u=args.u, v=args.v)
    engine = _make_engine(
        dataset, measure, args.num_hashes, args.seed, args.bound_mode,
        args.shards, args.partitioner,
    ).build()
    try:
        path = engine.save(args.output)
    except SnapshotError as exc:
        return _error(str(exc))
    kind = f"{args.shards}-shard" if args.shards else "single-engine"
    print(
        f"built {kind} index over {dataset.num_entities} entities "
        f"in {engine.last_build_seconds:.2f}s"
    )
    print(f"wrote snapshot to {path}")
    return 0


def _command_index_info(args: argparse.Namespace) -> int:
    from repro.storage.snapshot import SnapshotError, snapshot_info

    try:
        info = snapshot_info(args.snapshot)
        print(f"snapshot: {info['path']}")
        print(f"format: {info['format']} v{info['format_version']}")
        print(f"size on disk: {info['size_bytes']} bytes")
        if info["format"] == SHARDED_SNAPSHOT_FORMAT:
            partitioner = info["partitioner"]["kind"]
            print(f"shards: {info['num_shards']} (partitioner: {partitioner})")
            print(f"config fingerprint: {info['fingerprint']}")
            return 0
        config = info["config"]
        dataset = info["dataset"]
        measure = info["measure"]
        print(
            f"dataset: {dataset['num_entities']} entities, "
            f"{dataset['num_presences']} presences, {dataset['num_levels']} levels"
        )
        print(
            f"index: num_hashes={config['num_hashes']}, seed={config['seed']}, "
            f"bound_mode={config['bound_mode']}, nodes={info['tree']['num_nodes']}"
        )
        print(f"measure: {measure['name']} {measure['params']}")
        print(f"fingerprint: {info['fingerprint']}")
    except SnapshotError as exc:
        return _error(str(exc))
    except (KeyError, TypeError) as exc:
        # read_manifest only validates format and version; a format-valid
        # manifest can still be missing sections this summary prints.
        return _error(f"snapshot manifest in {args.snapshot} is incomplete: {exc}")
    return 0


def _command_stream(args: argparse.Namespace) -> int:
    from repro.streaming import read_event_log, replay_events
    from repro.traces.dataset import TraceDataset

    if args.rate < 0:
        return _error(f"--rate must be >= 0, got {args.rate}")
    if args.batch_size < 1:
        return _error(f"--batch-size must be >= 1, got {args.batch_size}")
    if args.window < 0:
        return _error(f"--window must be >= 0, got {args.window}")
    if args.compact_every < 0:
        return _error(f"--compact-every must be >= 0, got {args.compact_every}")
    if args.query_every < 0:
        return _error(f"--query-every must be >= 0, got {args.query_every}")
    shard_error = _shard_options_error(args)
    if shard_error:
        return _error(shard_error)
    if args.queries and not args.query_every:
        return _error("--queries only applies together with --query-every")

    try:
        hierarchy = load_hierarchy_json(args.hierarchy)
    except (OSError, ValueError) as exc:
        return _error(f"cannot load sp-index {args.hierarchy}: {exc}")
    try:
        events = read_event_log(args.traces)
    except (OSError, ValueError) as exc:
        return _error(f"cannot load event log {args.traces}: {exc}")
    if not events:
        return _error(f"event log {args.traces} contains no events; nothing to stream")

    # The hash range must cover the whole stream up front: the engine starts
    # empty, so the horizon cannot be derived from its (empty) dataset.
    horizon = args.horizon if args.horizon is not None else max(e.end for e in events)
    if horizon < 1:
        return _error(f"--horizon must be >= 1, got {horizon}")
    dataset = TraceDataset(hierarchy, horizon=horizon)
    measure = HierarchicalADM(num_levels=dataset.num_levels, u=args.u, v=args.v)
    engine = _make_engine(
        dataset, measure, args.num_hashes, args.seed, args.bound_mode,
        args.shards, args.partitioner,
    ).build()
    if args.no_columnar:
        engine.configure_columnar(False)

    query_entities: List[str] = []
    if args.query_every:
        if args.queries:
            query_entities = list(args.queries)
            log_entities = {event.entity for event in events}
            unknown = [entity for entity in query_entities if entity not in log_entities]
            if unknown:
                for entity in unknown:
                    print(f"error: entity {entity!r} never appears in the event log", file=sys.stderr)
                return 2
        else:
            seen: Dict[str, None] = {}
            for event in events:
                seen.setdefault(event.entity, None)
                if len(seen) == 3:
                    break
            query_entities = list(seen)

    kind = f"{args.shards}-shard" if args.shards else "single-engine"
    window_text = str(args.window) if args.window else "unbounded"
    print(
        f"streaming {len(events)} events into a {kind} index "
        f"(batch={args.batch_size}, window={window_text}, horizon={horizon})"
    )

    def on_query(index: int, result) -> None:
        ranked = ", ".join(entity for entity, _ in result.items) or "(no associates)"
        print(f"  [event {index}] top-{args.k} of {result.query_entity}: {ranked}")

    try:
        report = replay_events(
            engine,
            events,
            rate=args.rate,
            query_entities=query_entities,
            query_every=args.query_every,
            k=args.k,
            on_query=on_query,
            max_batch_events=args.batch_size,
            window=args.window or None,
            compact_after=args.compact_every,
        )
    except (KeyError, ValueError) as exc:
        # read_event_log skips hierarchy validation (an event log is just
        # records), so a unit unknown to -- or not a base unit of -- the
        # sp-index surfaces here, at ingestion time.
        message = exc.args[0] if exc.args else exc
        return _error(f"invalid event in {args.traces}: {message}")
    print(
        f"replayed {report.events} events in {report.wall_seconds:.2f}s "
        f"({report.events_per_second:.0f} ev/s) across "
        f"{report.ingest.batches_flushed} micro-batches "
        f"(mean {report.ingest.mean_batch_size:.1f} events, "
        f"{report.ingest.entities_reindexed} entity re-signings)"
    )
    if args.window:
        print(
            f"window: {report.window.expired_records} records expired over "
            f"{report.window.expiries} expiries "
            f"({report.window.entities_removed} entities removed, "
            f"{report.window.entities_resigned} re-signed, "
            f"{report.window.entities_unchanged} untouched), "
            f"{report.window.compactions} compactions"
        )
    if args.query_every:
        print(
            f"queries: {report.queries_answered} answered, "
            f"{report.queries_skipped} skipped (entity not yet ingested)"
        )
    scope = "within the window" if args.window else "ingested"
    print(f"final index: {engine.dataset.num_entities} entities {scope}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    if not (0 <= args.port <= 65535):
        return _error(f"--port must be in [0, 65535], got {args.port}")
    if args.coalesce_window < 0:
        return _error(f"--coalesce-window must be >= 0, got {args.coalesce_window}")
    if args.max_pending < 1:
        return _error(f"--max-pending must be >= 1, got {args.max_pending}")
    if args.max_batch < 1:
        return _error(f"--max-batch must be >= 1, got {args.max_batch}")
    if args.batch_size < 1:
        return _error(f"--batch-size must be >= 1, got {args.batch_size}")
    if args.window < 0:
        return _error(f"--window must be >= 0, got {args.window}")
    if args.compact_every < 0:
        return _error(f"--compact-every must be >= 0, got {args.compact_every}")
    if args.cache is not None and args.cache < 0:
        return _error(f"--cache must be >= 0, got {args.cache}")
    if args.workers < 0:
        return _error(f"--workers must be >= 0, got {args.workers}")
    if args.cluster < 0:
        return _error(f"--cluster must be >= 0, got {args.cluster}")
    if args.cluster and not args.shards:
        return _error("--cluster needs --shards (one replica group per shard)")
    if args.cluster and args.workers:
        return _error("--cluster and --workers are mutually exclusive tiers")
    if not (0.0 <= args.trace_sample <= 1.0):
        return _error(f"--trace-sample must be within [0, 1], got {args.trace_sample}")

    try:
        engine = _resolve_engine(args, horizon=args.horizon)
    except _CommandError as exc:
        return _error(str(exc))
    if args.cache is not None:
        engine.configure_query_cache(args.cache)

    return _run_server(engine, args)


def _run_server(engine, args: argparse.Namespace) -> int:
    """Bind, announce, and run the daemon until SIGINT/SIGTERM."""
    import signal
    import threading

    from repro.server.app import TraceServer, build_http_server
    from repro.streaming.ingestor import StreamingConfig

    streaming = StreamingConfig(
        max_batch_events=args.batch_size,
        window=args.window or None,
        compact_after=args.compact_every,
    )
    workers = getattr(args, "workers", 0)
    store_root = getattr(args, "store", None)

    # Durability: recover state published before a crash, then replay the
    # WAL suffix the crashed process had already acknowledged.  The engine
    # resolved from --snapshot/--traces is the cold-start fallback; a
    # persistent --store with published generations supersedes it.
    wal = None
    stream_state = None
    if getattr(args, "wal", None):
        from repro.server.recovery import recover_engine_from_store, replay_wal_into_engine
        from repro.streaming.wal import WriteAheadLog

        wal = WriteAheadLog(args.wal)
        meta = {}
        if workers and store_root:
            recovered = recover_engine_from_store(store_root)
            if recovered is not None:
                engine, meta, generation = recovered
                print(f"recovered generation {generation} from {store_root}", flush=True)
        elif getattr(args, "snapshot", None):
            from repro.storage.snapshot import SnapshotError, read_manifest

            try:
                meta = read_manifest(args.snapshot).get("extra") or {}
            except SnapshotError:
                meta = {}
        summary, stream_state = replay_wal_into_engine(engine, wal, streaming, meta)
        if summary.records:
            print(
                f"replayed {summary.records} WAL records ({summary.events} events) "
                f"from {args.wal}, log position {summary.last_seq}",
                flush=True,
            )
    elif workers and store_root:
        from repro.server.recovery import recover_engine_from_store

        recovered = recover_engine_from_store(store_root)
        if recovered is not None:
            engine, meta, generation = recovered
            stream_state = meta.get("stream")
            print(f"recovered generation {generation} from {store_root}", flush=True)

    cluster = getattr(args, "cluster", 0)
    if cluster:
        from repro.cluster.frontend import ClusterServer

        try:
            server = ClusterServer(
                engine,
                streaming=streaming,
                replication=cluster,
                coalesce_window=args.coalesce_window / 1000.0,
                max_pending=args.max_pending,
                max_batch=args.max_batch,
                store_root=store_root,
                trace_sample=args.trace_sample,
                wal=wal,
                stream_state=stream_state,
                delta_limit=getattr(args, "delta_limit", 8),
            )
        except (OSError, RuntimeError, ValueError) as exc:
            return _error(f"cannot start the cluster tier: {exc}")
    elif workers:
        from repro.server.frontend import FrontendServer

        try:
            server = FrontendServer(
                engine,
                streaming=streaming,
                workers=workers,
                coalesce_window=args.coalesce_window / 1000.0,
                max_pending=args.max_pending,
                max_batch=args.max_batch,
                store_root=store_root,
                trace_sample=args.trace_sample,
                wal=wal,
                stream_state=stream_state,
                delta_limit=getattr(args, "delta_limit", 8),
            )
        except (OSError, RuntimeError) as exc:
            return _error(f"cannot start {workers} query workers: {exc}")
    else:
        server = TraceServer(
            engine,
            streaming=streaming,
            coalesce_window=args.coalesce_window / 1000.0,
            max_pending=args.max_pending,
            max_batch=args.max_batch,
            trace_sample=args.trace_sample,
            wal=wal,
            stream_state=stream_state,
        )
    try:
        httpd = build_http_server(server, host=args.host, port=args.port)
    except OSError as exc:
        server.close()
        return _error(f"cannot bind {args.host}:{args.port}: {exc}")

    host, port = httpd.server_address[:2]
    stats = engine.runtime_stats()
    kind = (
        f"{stats['num_shards']}-shard" if stats["kind"] == "sharded" else "single-engine"
    )
    print(
        f"serving {kind} index of {stats['entities']} entities "
        f"on http://{host}:{port} (POST /v1/topk, POST /v1/events, "
        "GET /v1/healthz, GET /v1/stats, GET /metrics, GET /v1/debug/slow)",
        flush=True,
    )
    if args.trace_sample:
        print(
            f"tracing: sampling {args.trace_sample:.0%} of /v1/topk requests "
            "(slow-query log on GET /v1/debug/slow; `repro trace` prints it)",
            flush=True,
        )
    if workers:
        pids = ", ".join(str(pid) for pid in server.pool.worker_pids)
        print(
            f"multi-process tier: {workers} query workers (pids {pids}) over "
            f"generation store {server.store.root}",
            flush=True,
        )
    if cluster:
        fleet = ", ".join(
            f"{name} (pid {replica.process.pid}, port {replica.port})"
            for name, replica in sorted(server.managed.items())
        )
        print(
            f"distributed tier: {stats['num_shards']} shard groups x "
            f"{cluster} replicas over {server.root}: {fleet}",
            flush=True,
        )

    def request_shutdown(signum, frame) -> None:
        # serve_forever() must keep running while shutdown() waits for it,
        # so the stop request goes through a helper thread.
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    previous_handlers = {
        signal.SIGINT: signal.signal(signal.SIGINT, request_shutdown),
        signal.SIGTERM: signal.signal(signal.SIGTERM, request_shutdown),
    }
    try:
        httpd.serve_forever()
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        httpd.server_close()
        server.close()
    ingest = server.ingestor.stats
    coalescer = server.coalescer.stats
    print(
        f"shut down cleanly: {coalescer.submitted} queries "
        f"({coalescer.batches} coalesced batches), "
        f"{ingest.events_submitted} events ingested "
        f"({ingest.events_flushed} flushed, {ingest.events_buffered} buffered)"
    )
    return 0


def _command_wal(args: argparse.Namespace) -> int:
    if args.wal_command == "inspect":
        return _command_wal_inspect(args)
    return _command_wal_replay(args)


def _command_wal_inspect(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.streaming.wal import scan_wal

    directory = Path(args.directory)
    if not directory.is_dir():
        return _error(f"{directory} is not a directory")
    # Scan without opening the log for append: inspect must never modify it
    # (repairing a torn tail is the restarting daemon's job).
    report = scan_wal(directory)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 1 if report.corrupt else 0
    print(f"write-ahead log {directory}")
    print(
        f"  replayable: {report.total_records} records, {report.total_events} events, "
        f"last seq {report.last_seq}"
    )
    for segment in report.segments:
        status = "ok" if segment.error is None else segment.error
        print(
            f"  {segment.path.name}: {segment.records} records, "
            f"{segment.valid_bytes}/{segment.total_bytes} bytes valid ({status})"
        )
    if report.corrupt:
        print("  log has an unreplayable suffix; a restarted daemon resumes after "
              f"seq {report.last_seq}")
        return 1
    return 0


def _command_wal_replay(args: argparse.Namespace) -> int:
    from repro.server.recovery import replay_wal_into_engine
    from repro.storage.snapshot import SnapshotError, read_manifest
    from repro.streaming.ingestor import StreamingConfig
    from repro.streaming.wal import WriteAheadLog

    if args.batch_size < 1:
        return _error(f"--batch-size must be >= 1, got {args.batch_size}")
    if args.window < 0:
        return _error(f"--window must be >= 0, got {args.window}")
    if args.compact_every < 0:
        return _error(f"--compact-every must be >= 0, got {args.compact_every}")
    try:
        manifest = read_manifest(args.snapshot)
        engine = _load_snapshot_engine(args.snapshot)
    except SnapshotError as exc:
        return _error(str(exc))
    meta = manifest.get("extra") or {}
    wal = WriteAheadLog(args.directory)
    streaming = StreamingConfig(
        max_batch_events=args.batch_size,
        window=args.window or None,
        compact_after=args.compact_every,
    )
    summary, stream_state = replay_wal_into_engine(engine, wal, streaming, meta)
    engine.save(
        args.output,
        extra_meta={"wal_seq": wal.last_seq, "stream": stream_state},
    )
    print(
        f"replayed {summary.records} WAL records ({summary.events} events) "
        f"starting after seq {int(meta.get('wal_seq', 0))}; recovered snapshot "
        f"written to {args.output}"
    )
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace import format_trace

    if args.limit < 0:
        return _error(f"--limit must be >= 0, got {args.limit}")
    url = args.url.rstrip("/") + "/v1/debug/slow"
    try:
        payload = _fetch_json(url)
    except _CommandError as exc:
        return _error(str(exc))
    records = payload.get("errored" if args.errored else "slowest")
    records = records if isinstance(records, list) else []
    if args.limit:
        records = records[: args.limit]
    if not records:
        kind = "errored" if args.errored else "slow-query"
        sample_rate = payload.get("sample_rate")
        hint = (
            ""
            if sample_rate
            else " (tracing is disabled; start the server with --trace-sample)"
        )
        print(f"no {kind} traces retained{hint}")
        return 0
    for index, record in enumerate(records):
        if index:
            print()
        print(format_trace(record))
    return 0


def _command_figures(args: argparse.Namespace) -> int:
    from repro.experiments import figures as figure_module

    available = {
        "7.1": figure_module.figure_7_1,
        "7.2": figure_module.figure_7_2,
        "7.3": figure_module.figure_7_3,
        "7.4": figure_module.figure_7_4,
        "7.5": figure_module.figure_7_5,
        "7.6": figure_module.figure_7_6,
        "7.7": figure_module.figure_7_7,
        "7.8": figure_module.figure_7_8,
        "7.9": figure_module.figure_7_9,
    }
    selected = args.only or list(available)
    unknown = [name for name in selected if name not in available]
    if unknown:
        return _error(f"unknown figure ids {unknown}")
    for name in selected:
        result = available[name](scale=args.scale)
        print(result.to_table(max_rows=args.max_rows))
        print()
    return 0


def _command_scenario(args: argparse.Namespace) -> int:
    if args.scenario_command == "list":
        return _command_scenario_list(args)
    if args.scenario_command == "run":
        return _command_scenario_run(args)
    return _command_scenario_report(args)


def _command_scenario_list(args: argparse.Namespace) -> int:
    from repro.scenarios import iter_scenarios

    specs = iter_scenarios()
    if args.tag:
        specs = [spec for spec in specs if args.tag in spec.tags]
        if not specs:
            return _error(f"no scenario carries tag {args.tag!r}")
    if args.json:
        print(json.dumps([spec.to_dict() for spec in specs], indent=2))
        return 0
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        tags = ",".join(spec.tags)
        print(f"{spec.name:<{width}}  [{tags}]  {spec.title}")
    return 0


def _command_scenario_run(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        BACKENDS,
        render_html,
        run_scenarios,
        scenario_names,
        validate_report,
    )

    if args.all and args.names:
        return _error("pass scenario names or --all, not both")
    if not args.all and not args.names:
        return _error("pass scenario names or --all (see `repro scenario list`)")
    names = None if args.all else args.names
    if names:
        unknown = [name for name in names if name not in scenario_names()]
        if unknown:
            return _error(
                f"unknown scenarios {unknown}; known: {scenario_names()}"
            )
    if args.backends:
        unknown = [name for name in args.backends if name not in BACKENDS]
        if unknown:
            return _error(f"unknown backends {unknown}; known: {sorted(BACKENDS)}")

    progress = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    report = run_scenarios(
        names=names, backends=args.backends, smoke=args.smoke, progress=progress
    )
    problems = validate_report(report)
    if problems:  # pragma: no cover - a runner/report contract bug
        return _error("malformed report: " + "; ".join(problems))
    document = json.dumps(report, indent=2)
    if args.output:
        Path(args.output).write_text(document + "\n", encoding="utf-8")
    else:
        print(document)
    if args.html:
        Path(args.html).write_text(render_html(report), encoding="utf-8")

    summary = report["summary"]
    verdict = "PASS" if summary["all_passed"] else "FAIL"
    print(
        f"{verdict}: {summary['scenarios_passed']}/{summary['scenarios']} scenarios, "
        f"{summary['exact']}/{summary['queries']} exact top-k answers",
        file=sys.stderr,
    )
    return 0 if summary["all_passed"] else 1


def _command_scenario_report(args: argparse.Namespace) -> int:
    from repro.scenarios import render_html, validate_report

    path = Path(args.input)
    if not path.exists():
        return _error(f"report file not found: {path}")
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        return _error(f"not valid JSON: {exc}")
    problems = validate_report(report)
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return _error(f"report failed validation with {len(problems)} problem(s)")
    if args.html:
        Path(args.html).write_text(render_html(report), encoding="utf-8")
    summary = report["summary"]
    verdict = "PASS" if summary["all_passed"] else "FAIL"
    print(
        f"{verdict}: {summary['scenarios_passed']}/{summary['scenarios']} scenarios, "
        f"{summary['exact']}/{summary['queries']} exact top-k answers "
        f"({'smoke' if report['smoke'] else 'full'} mode, "
        f"backends: {', '.join(report['backends'])})"
    )
    for entry in report["scenarios"]:
        status = "ok " if entry["passed"] else "FAIL"
        backends = ", ".join(
            f"{backend['backend']} {backend['accuracy']['exact']}"
            f"/{backend['accuracy']['queries']}"
            for backend in entry["backends"]
        )
        print(f"  [{status}] {entry['name']}: {backends}")
    return 0 if summary["all_passed"] else 1


def _command_cluster(args: argparse.Namespace) -> int:
    if args.cluster_command == "shard":
        from repro.cluster.shard_server import main as shard_main

        argv = ["--store", args.store, "--shard", args.shard, "--host", args.host,
                "--port", str(args.port), "--startup-timeout", str(args.startup_timeout)]
        if args.port_file:
            argv += ["--port-file", args.port_file]
        return shard_main(argv)
    # chaos battery
    if args.shards < 1:
        return _error(f"--shards must be >= 1, got {args.shards}")
    if args.replication < 1:
        return _error(f"--replication must be >= 1, got {args.replication}")
    from repro.cluster.battery import run_battery

    report = run_battery(
        smoke=args.smoke,
        seed=args.seed,
        shards=args.shards,
        replication=args.replication,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    verdict = "PASS" if report["passed"] else "FAIL"
    checks = report["checks"]
    print(
        f"{verdict}: {checks['exact_items']} exact answers, "
        f"{checks['byte_identical']} byte-identical payloads, "
        f"{checks['degraded_marked']} degraded-marking gates, "
        f"{len(report['failures'])} failures across "
        f"{len(report['rounds'])} rounds "
        f"({report['shards']} shards x {report['replication']} replicas)",
        file=sys.stderr,
    )
    for failure in report["failures"]:
        print(f"  gate failed: {failure}", file=sys.stderr)
    return 0 if report["passed"] else 1


_COMMANDS = {
    "generate": _command_generate,
    "stats": _command_stats,
    "query": _command_query,
    "index": _command_index,
    "stream": _command_stream,
    "serve": _command_serve,
    "cluster": _command_cluster,
    "wal": _command_wal,
    "trace": _command_trace,
    "figures": _command_figures,
    "scenario": _command_scenario,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
