"""A deterministic consistent-hash ring over stable BLAKE2b points.

The cluster's partitioner must agree byte-for-byte across every process
that touches routing -- the coordinator, each shard server, and any tool
that inspects a sharded snapshot -- so the ring is built exclusively from
stable digests (never Python's salted ``hash()``) and its construction is
a pure function of ``(node names, virtual-node count)``.

Each node contributes ``virtual_nodes`` points at
``blake2b(f"{node}#{replica}")``; a key routes to the first point
clockwise from ``blake2b(key)``.  Virtual nodes smooth the load split;
128 per node keeps the max/min shard-size ratio within a few percent for
the dataset sizes this repo serves while keeping ring construction
trivially cheap.

Consistent hashing (vs modulo hashing) matters for the *remap bound*:
adding or removing one node moves only the keys in the arcs that node
owned -- about ``1/N`` of the keyspace -- instead of reshuffling nearly
everything.  :meth:`ConsistentHashRing.assignments_moved` measures that
bound directly and is pinned by the cluster tests.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

__all__ = ["ConsistentHashRing"]


def _point(token: str) -> int:
    """A stable 64-bit ring position for a token."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Deterministic consistent hashing with virtual nodes.

    Parameters
    ----------
    nodes:
        Node names (shard identifiers).  Order does not affect routing --
        the ring sorts by hash point -- but duplicate names are rejected.
    virtual_nodes:
        Ring points per node.
    """

    def __init__(self, nodes: Sequence[str], virtual_nodes: int = 128) -> None:
        if not nodes:
            raise ValueError("ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate node names: {sorted(nodes)}")
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.nodes: Tuple[str, ...] = tuple(nodes)
        self.virtual_nodes = int(virtual_nodes)
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for replica in range(self.virtual_nodes):
                points.append((_point(f"{node}#{replica}"), node))
        # Ties between distinct (node, replica) tokens are astronomically
        # unlikely at 64 bits but must still be deterministic: break by name.
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [node for _, node in points]

    def node_for(self, key: str) -> str:
        """The node owning ``key``: first ring point clockwise from its hash."""
        position = bisect.bisect_right(self._points, _point(key))
        if position == len(self._points):
            position = 0  # wrap past the top of the ring
        return self._owners[position]

    def distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of ``keys`` each node owns (all nodes present, 0 included)."""
        counts = {node: 0 for node in self.nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts

    def assignments_moved(self, other: "ConsistentHashRing", keys: Sequence[str]) -> int:
        """How many of ``keys`` route differently on ``other`` -- the remap cost."""
        return sum(1 for key in keys if self.node_for(key) != other.node_for(key))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConsistentHashRing(nodes={len(self.nodes)}, "
            f"virtual_nodes={self.virtual_nodes})"
        )
