"""Replica clients and R-way replica groups with hedged failover.

One shard of the cluster is served by ``R`` interchangeable shard-server
processes (a *replica group*); this module is the coordinator's view of
them.  Three layers:

- :class:`ClusterConfig` -- every timeout/retry/hedging knob in one
  dataclass, so the coordinator, supervisor, chaos battery, and CLI all
  speak the same vocabulary.
- :class:`ReplicaClient` -- one persistent framed TCP connection to one
  shard server.  Exchanges are serialised under a lock; any failure
  (refused connect, timeout, reset, torn frame) closes the socket so the
  next exchange reconnects from a frame boundary -- the invariant that
  makes hedging safe: a connection either completes an exchange or dies,
  it never carries a stale reply.
- :class:`ReplicaGroup` -- failover policy over the group's clients:
  rotate across usable replicas, retry with
  :class:`~repro.server.backoff.ExponentialBackoff` under a per-shard
  deadline, and *hedge* slow attempts (after ``hedge_delay`` seconds a
  second replica gets the same idempotent read; first answer wins).
  Per-replica :class:`~repro.obs.health.NodeHealth` records the
  live/suspect/down/catching-up state that ``/metrics`` exposes, and a
  node held in ``catching_up`` by the supervisor is skipped until its
  rejoin is verified.

Hedging never duplicates work observably: ``topk`` and ``sync`` are
read-only, and the loser's late reply is consumed (or its connection
closed) by the losing thread itself, so no frame desynchronisation can
leak into later exchanges.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.obs.health import NodeHealth
from repro.server.backoff import ExponentialBackoff
from repro.server.workers import recv_frame, send_frame

__all__ = ["ClusterConfig", "ReplicaClient", "ReplicaError", "ReplicaGroup", "ShardUnavailable"]


@dataclass
class ClusterConfig:
    """Timeouts, retries, and hedging for coordinator <-> shard traffic."""

    #: Seconds allowed for one TCP connect to a replica.
    connect_timeout: float = 2.0
    #: Seconds allowed for one framed exchange once connected.
    request_timeout: float = 10.0
    #: Total budget for answering one shard's part of a query batch --
    #: retries and hedges all fit inside this deadline.
    shard_deadline: float = 30.0
    #: Seconds to wait on the primary before hedging to a second replica.
    hedge_delay: float = 0.2
    #: Retry backoff (shared :class:`ExponentialBackoff` parameters).
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    #: Attempt rounds per request before the shard counts as unavailable.
    max_attempts: int = 4
    #: Replicas per shard group (used by builders, not by the group itself).
    replication: int = 2


class ReplicaError(ConnectionError):
    """One exchange with one replica failed (connection is closed)."""


class ShardUnavailable(RuntimeError):
    """Every replica of a shard group failed within the deadline."""

    def __init__(self, shard: str, detail: str) -> None:
        super().__init__(f"shard {shard}: {detail}")
        self.shard = shard


class ReplicaClient:
    """One persistent framed connection to one shard server."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        config: Optional[ClusterConfig] = None,
    ) -> None:
        self.name = name
        self.host = host
        self.port = int(port)
        self.config = config or ClusterConfig()
        self.health = NodeHealth(name)
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    def set_address(self, host: str, port: int) -> None:
        """Point at a restarted process (ephemeral ports move); drops the socket."""
        with self._lock:
            self._close_locked()
            self.host = host
            self.port = int(port)

    def request(
        self, payload: Dict[str, object], timeout: Optional[float] = None
    ) -> Dict[str, object]:
        """One framed exchange; raises :class:`ReplicaError` on any failure.

        The socket is closed on every failure path, so a later exchange
        starts from a clean frame boundary on a fresh connection.
        """
        budget = self.config.request_timeout if timeout is None else timeout
        if budget <= 0:
            raise ReplicaError(f"{self.name}: no time left in the deadline")
        with self._lock:
            try:
                if self._sock is None:
                    self._sock = socket.create_connection(
                        (self.host, self.port),
                        timeout=min(self.config.connect_timeout, budget),
                    )
                self._sock.settimeout(budget)
                send_frame(self._sock, payload)
                reply = recv_frame(self._sock)
            except (OSError, ValueError) as exc:
                self._close_locked()
                raise ReplicaError(f"{self.name} ({self.host}:{self.port}): {exc}") from exc
            if reply is None:
                self._close_locked()
                raise ReplicaError(f"{self.name}: peer closed the connection")
            return reply

    def close(self) -> None:
        """Drop the persistent connection (reopened lazily on next use)."""
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._sock = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReplicaClient({self.name!r}, {self.host}:{self.port})"


class ReplicaGroup:
    """Failover policy over one shard's replicas."""

    def __init__(
        self,
        shard: str,
        replicas: Sequence[ReplicaClient],
        config: Optional[ClusterConfig] = None,
    ) -> None:
        if not replicas:
            raise ValueError(f"shard {shard}: a replica group needs >= 1 replica")
        self.shard = shard
        self.replicas = list(replicas)
        self.config = config or ClusterConfig()
        self.counters = {"requests": 0, "retries": 0, "hedges": 0, "failovers": 0}
        self._rotation = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Candidate selection
    # ------------------------------------------------------------------
    def _candidates(self) -> List[ReplicaClient]:
        """Replicas in try-order: usable ones round-robined first.

        ``catching_up`` nodes are excluded outright (the rejoin gate);
        ``down`` nodes trail the list as a last resort -- if every usable
        replica just failed, a "down" process may in fact be back.
        """
        with self._lock:
            start = self._rotation
            self._rotation += 1
        ordered = [
            self.replicas[(start + offset) % len(self.replicas)]
            for offset in range(len(self.replicas))
        ]
        usable = [replica for replica in ordered if replica.health.is_usable]
        fallback = [
            replica
            for replica in ordered
            if not replica.health.is_usable and replica.health.state != "catching_up"
        ]
        return usable + fallback

    # ------------------------------------------------------------------
    # One hedged attempt
    # ------------------------------------------------------------------
    def _attempt(
        self,
        primary: ReplicaClient,
        hedge: Optional[ReplicaClient],
        payload: Dict[str, object],
        deadline: float,
    ) -> Optional[Dict[str, object]]:
        """Race ``primary`` (and, after ``hedge_delay``, ``hedge``) for one reply.

        The hedge also launches immediately if the primary *fails* before
        the hedge delay elapses -- a fast failover, counted the same way.
        A losing exchange finishes on its own thread (consuming its reply
        or closing its connection), so no frame desynchronisation outlives
        the attempt.
        """
        condition = threading.Condition()
        state: Dict[str, object] = {"reply": None, "winner": None, "failed": 0, "launched": 1}

        def settled() -> bool:
            return state["reply"] is not None or state["failed"] >= state["launched"]

        def exchange(replica: ReplicaClient) -> None:
            try:
                reply = replica.request(payload, timeout=deadline - time.monotonic())
            except ReplicaError:
                replica.health.record_failure()
                with condition:
                    state["failed"] += 1
                    condition.notify_all()
                return
            replica.health.record_success()
            with condition:
                if state["reply"] is None:
                    state["reply"] = reply
                    state["winner"] = replica.name
                condition.notify_all()

        threading.Thread(
            target=exchange, args=(primary,), name=f"{self.shard}-primary", daemon=True
        ).start()
        launch_hedge = False
        with condition:
            if hedge is not None:
                condition.wait_for(
                    settled,
                    timeout=min(
                        self.config.hedge_delay, max(0.0, deadline - time.monotonic())
                    ),
                )
                if state["reply"] is None and time.monotonic() < deadline:
                    state["launched"] += 1
                    launch_hedge = True
        if launch_hedge:
            with self._lock:
                self.counters["hedges"] += 1
            threading.Thread(
                target=exchange, args=(hedge,), name=f"{self.shard}-hedge", daemon=True
            ).start()
        with condition:
            condition.wait_for(settled, timeout=max(0.0, deadline - time.monotonic()))
            reply = state["reply"]
            winner = state["winner"]
        if reply is not None and winner != primary.name:
            with self._lock:
                self.counters["failovers"] += 1
        return reply

    # ------------------------------------------------------------------
    # Public request path
    # ------------------------------------------------------------------
    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Answer ``payload`` from any replica, or raise :class:`ShardUnavailable`.

        Attempt rounds walk the candidate rotation with exponential
        backoff between rounds, all under the shard deadline.
        """
        with self._lock:
            self.counters["requests"] += 1
        deadline = time.monotonic() + self.config.shard_deadline
        backoff = ExponentialBackoff(
            base=self.config.backoff_base, cap=self.config.backoff_cap
        )
        for attempt in range(self.config.max_attempts):
            candidates = self._candidates()
            if not candidates:
                break  # every replica is catching up
            primary = candidates[0]
            hedge = candidates[1] if len(candidates) > 1 else None
            reply = self._attempt(primary, hedge, payload, deadline)
            if reply is not None:
                return reply
            if attempt + 1 < self.config.max_attempts:
                with self._lock:
                    self.counters["retries"] += 1
                delay = min(backoff.next_delay(), max(0.0, deadline - time.monotonic()))
                if time.monotonic() + delay >= deadline:
                    break
                time.sleep(delay)
            if time.monotonic() >= deadline:
                break
        states = {replica.name: replica.health.state for replica in self.replicas}
        raise ShardUnavailable(
            self.shard,
            f"no replica answered within {self.config.shard_deadline:.1f}s "
            f"(states: {states})",
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_replicas(self) -> int:
        """How many of the group's replicas are currently ``live``."""
        return sum(1 for replica in self.replicas if replica.health.is_live)

    def snapshot(self) -> Dict[str, object]:
        """Counters plus per-replica health for ``/v1/stats`` and ``/metrics``."""
        with self._lock:
            counters = dict(self.counters)
        return {
            "shard": self.shard,
            "counters": counters,
            "replicas": [replica.health.snapshot() for replica in self.replicas],
        }

    def close(self) -> None:
        """Close every replica's persistent connection."""
        for replica in self.replicas:
            replica.close()
