"""Fan-out/merge over replica groups, with explicit degraded answers.

The coordinator is the cluster's query brain: every top-k query fans out
to all ``S`` shard groups (each shard searches its own entity partition
for candidates -- the same scatter the in-process
:class:`~repro.service.sharded.ShardedEngine` does over threads), and the
per-shard wire payloads merge through
:func:`repro.service.merge.merge_topk_payloads` -- the shared
deterministic merge -- so a fully-live cluster's answers are
byte-identical to the in-process sharded engine's, and item-identical to
a single unsharded engine's (the chaos battery's oracle gate).

The query's ST-cell sequence is resolved once against the coordinator's
routing dataset and shipped with every shard request, because a shard's
dataset holds only its own partition.

**Degraded answers are marked, never silent.**  When a whole replica
group is down (:class:`~repro.cluster.replica.ShardUnavailable` after
retries, hedging, and the per-shard deadline), the coordinator still
answers from the shards it reached, but the payload carries
``"degraded": true`` and ``"missing_shards": [ids]``, and the
``degraded_queries`` counter feeds ``/metrics`` -- the consistent-query-
answering stance: a possibly-incomplete answer must say so on the wire.
Only when *every* shard is unreachable does the query fail outright.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from repro.cluster.replica import ReplicaGroup, ShardUnavailable
from repro.cluster.wire import encode_sequence
from repro.service.merge import merge_topk_payloads

__all__ = ["ClusterCoordinator", "CoordinatorError"]


class CoordinatorError(RuntimeError):
    """A query no shard could answer (or a shard answered with an error)."""


class ClusterCoordinator:
    """Scatter queries over shard groups; merge with explicit degradation."""

    def __init__(self, dataset, groups: Sequence[ReplicaGroup]) -> None:
        #: The routing dataset (every entity's trace): query sequences are
        #: resolved here and travel with the request.
        self.dataset = dataset
        self.groups = list(groups)
        self.counters = {"queries": 0, "degraded_queries": 0, "failed_queries": 0}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # The fan-out
    # ------------------------------------------------------------------
    def topk_payloads(
        self, entities: Sequence[str], k: int, approximation: float = 0.0
    ) -> List[Dict[str, object]]:
        """One merged ``topk_result_payload`` per query entity, in order.

        Raises ``KeyError`` for a query entity missing from the routing
        dataset and :class:`CoordinatorError` when no shard at all
        answered (or a shard reported a query error).
        """
        queries = [
            {
                "entity": entity,
                "sequence": encode_sequence(self.dataset.cell_sequence(entity)),
            }
            for entity in entities
        ]
        request = {
            "op": "topk",
            "queries": queries,
            "k": int(k),
            "approximation": float(approximation),
        }
        replies: List[Optional[Dict[str, object]]] = [None] * len(self.groups)

        def ask(shard_index: int) -> None:
            try:
                replies[shard_index] = self.groups[shard_index].request(request)
            except ShardUnavailable:
                replies[shard_index] = None

        threads = [
            threading.Thread(target=ask, args=(index,), name=f"fanout-{index}")
            for index in range(1, len(self.groups))
        ]
        for thread in threads:
            thread.start()
        ask(0)
        for thread in threads:
            thread.join()

        missing = [index for index, reply in enumerate(replies) if reply is None]
        with self._lock:
            self.counters["queries"] += len(entities)
        if len(missing) == len(self.groups):
            with self._lock:
                self.counters["failed_queries"] += len(entities)
            raise CoordinatorError(
                f"every shard group unavailable ({len(self.groups)} shards)"
            )
        answered = []
        for reply in replies:
            if reply is None:
                continue
            error = reply.get("error")
            if error is not None:
                # A shard-level query error (not a transport failure) is a
                # real answer -- "this query is broken" -- not degradation.
                with self._lock:
                    self.counters["failed_queries"] += len(entities)
                raise CoordinatorError(str(error))
            answered.append(reply)

        merged: List[Dict[str, object]] = []
        for position, entity in enumerate(entities):
            payload = merge_topk_payloads(
                entity, [reply["results"][position] for reply in answered], k
            )
            if missing:
                payload["degraded"] = True
                payload["missing_shards"] = missing
            merged.append(payload)
        if missing:
            with self._lock:
                self.counters["degraded_queries"] += len(entities)
        return merged

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Counters and per-group state for ``/v1/stats`` and ``/metrics``."""
        with self._lock:
            counters = dict(self.counters)
        return {
            "shards": len(self.groups),
            "counters": counters,
            "groups": [group.snapshot() for group in self.groups],
        }

    def close(self) -> None:
        """Close every replica group's persistent connections."""
        for group in self.groups:
            group.close()
