"""Fault injection against a live :class:`~repro.cluster.frontend.ClusterServer`.

The chaos battery (and the cluster tests) speak to the cluster through
this controller rather than poking processes directly, so every injected
fault is one of a small, named vocabulary:

- ``kill_one_per_group()`` -- SIGKILL one *unsuspended* replica in every
  shard group.  The supervisor is allowed to respawn it; this is the
  crash/recovery cycle, and answers must stay exact throughout (R >= 2).
- ``blackout_group(index)`` -- suspend and SIGKILL *every* replica of one
  group.  The shard is gone until ``restore_group``; the coordinator must
  answer degraded (marked!), never wrong.
- ``slow_replies`` / ``drop_requests`` / ``refuse_connections`` -- set a
  live replica's in-memory chaos flags over the wire (the shard server's
  ``chaos`` op): delayed replies exercise hedging, dropped exchanges
  exercise retry, refused connects exercise failover.

Every injector tolerates the replica dying mid-injection (the race is the
point of chaos testing): wire errors surface as a ``False`` return, not
an exception.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.wire import ClusterWireError, one_shot_request

__all__ = ["ChaosController"]


class ChaosController:
    """Scripted faults over a ClusterServer's replica fleet."""

    def __init__(self, server) -> None:
        self.server = server
        #: Every fault injected, in order -- returned in battery reports so
        #: a failure names the exact fault schedule that produced it.
        self.injected: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Process faults
    # ------------------------------------------------------------------
    def kill_one_per_group(self, replica_index: int = 0) -> List[str]:
        """SIGKILL replica ``replica_index`` of every group; supervisor revives."""
        killed = []
        for group in self.server.groups:
            name = f"{group.shard}-r{replica_index}"
            replica = self.server.managed[name]
            if replica.suspended:
                continue
            replica.kill()
            killed.append(name)
        self.injected.append({"fault": "kill_one_per_group", "replicas": killed})
        return killed

    def blackout_group(self, shard_index: int) -> List[str]:
        """Suspend + SIGKILL every replica of one group (stays down)."""
        group = self.server.groups[shard_index]
        names = [replica.name for replica in group.replicas]
        self.server.supervisor.suspend(names)
        for name in names:
            self.server.managed[name].kill()
        self.injected.append({"fault": "blackout_group", "shard": group.shard})
        return names

    def restore_group(self, shard_index: int) -> None:
        """Lift a blackout; the supervisor respawns and verifies rejoin."""
        group = self.server.groups[shard_index]
        names = [replica.name for replica in group.replicas]
        self.server.supervisor.resume(names)
        self.injected.append({"fault": "restore_group", "shard": group.shard})

    # ------------------------------------------------------------------
    # Wire faults (shard-server chaos flags)
    # ------------------------------------------------------------------
    def _configure(self, name: str, flags: Dict[str, object]) -> bool:
        replica = self.server.managed[name]
        if replica.port is None:
            return False
        try:
            reply = one_shot_request(
                replica.host, int(replica.port), {"op": "chaos", **flags}
            )
        except ClusterWireError:
            return False
        self.injected.append({"fault": "chaos_flags", "replica": name, **flags})
        return bool(reply.get("ok"))

    def slow_replies(self, name: str, delay: float) -> bool:
        """Every reply from ``name`` sleeps ``delay`` seconds first."""
        return self._configure(name, {"delay": float(delay)})

    def drop_requests(self, name: str, count: int) -> bool:
        """The next ``count`` exchanges with ``name`` vanish mid-flight."""
        return self._configure(name, {"drop": int(count)})

    def refuse_connections(self, name: str, refuse: bool = True) -> bool:
        """``name`` accepts and instantly closes new connections."""
        return self._configure(name, {"refuse": bool(refuse)})

    def clear(self, name: Optional[str] = None) -> None:
        """Reset wire-level flags on one replica (or all live ones)."""
        names = [name] if name is not None else list(self.server.managed)
        for target in names:
            self._configure(target, {"delay": 0.0, "drop": 0, "refuse": False})
