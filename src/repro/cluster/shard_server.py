"""One shard-server process: ``python -m repro.cluster.shard_server``.

A shard server is the cluster tier's unit of replication: one OS process
serving one shard's snapshot generations over TCP, speaking the framed
operations of :mod:`repro.cluster.wire`.  It is the network-facing sibling
of the Unix-socket :class:`~repro.server.workers.QueryWorker` and keeps
its consistency model: the engine is restored from the shard's
:class:`~repro.server.generation.GenerationStore` (columnar arrays
memory-mapped), writes never reach it directly, and newly published
generations are adopted **at a request boundary** -- cheaply along the
delta chain (:meth:`GenerationStore.catch_up`) when possible, by a full
snapshot load otherwise.  That adoption path *is* the replica catch-up
protocol: a replica restarted after a crash reloads the newest generation,
replays the published delta suffix, and then proves it has caught up by
answering a ``sync`` op with a high-enough generation number before the
coordinator lets it rejoin (see ``docs/DISTRIBUTED.md``).

Unlike the worker, the shard server handles connections in threads (the
coordinator holds one persistent connection per replica and hedged
requests open a second), with adoption and search serialised under one
lock -- correctness first; parallelism across replicas, not within one.

Fault injection is built in rather than bolted on: the ``chaos`` op sets
flags -- ``delay`` (seconds to sleep before every reply), ``drop``
(tear down the connection instead of answering, N times), ``refuse``
(accept and immediately close new connections) -- that the chaos battery
uses to script slow replies, dropped sockets, and refused connects
against a *real* serving process.  The flags default to off and exist
only in memory; a restarted process is always clean.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.cluster.wire import decode_sequence
from repro.server import protocol
from repro.server.generation import GenerationStore
from repro.server.workers import recv_frame, send_frame
from repro.storage.snapshot import SnapshotError

__all__ = ["ShardServer", "main"]


class _ChaosFlags:
    """In-memory fault-injection switches, mutated by the ``chaos`` op."""

    def __init__(self) -> None:
        self.delay_seconds = 0.0
        self.drop_requests = 0
        self.refuse_connections = False
        self._lock = threading.Lock()

    def configure(self, request: Dict[str, object]) -> Dict[str, object]:
        with self._lock:
            if "delay" in request:
                self.delay_seconds = max(0.0, float(request["delay"]))
            if "drop" in request:
                self.drop_requests = max(0, int(request["drop"]))
            if "refuse" in request:
                self.refuse_connections = bool(request["refuse"])
            return self.snapshot_locked()

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return self.snapshot_locked()

    def snapshot_locked(self) -> Dict[str, object]:
        return {
            "delay": self.delay_seconds,
            "drop": self.drop_requests,
            "refuse": self.refuse_connections,
        }

    def should_refuse(self) -> bool:
        with self._lock:
            return self.refuse_connections

    def reply_delay(self) -> float:
        with self._lock:
            return self.delay_seconds

    def take_drop(self) -> bool:
        """Consume one drop token: ``True`` means tear down this exchange."""
        with self._lock:
            if self.drop_requests > 0:
                self.drop_requests -= 1
                return True
            return False


class ShardServer:
    """Serve one shard's generations over framed TCP operations."""

    def __init__(
        self,
        store_root: str,
        shard: str = "shard-000",
        host: str = "127.0.0.1",
        port: int = 0,
        startup_timeout: float = 60.0,
    ) -> None:
        self.store = GenerationStore(store_root)
        self.shard = shard
        self.host = host
        self.port = int(port)
        self.startup_timeout = startup_timeout
        self.generation = 0
        self.engine = None
        self.chaos = _ChaosFlags()
        self.requests_handled = 0
        #: Serialises generation adoption and searching: the engine object
        #: is swapped on adoption, and searches mutate per-search caches.
        self._engine_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._stopping = False

    # ------------------------------------------------------------------
    # Generation adoption (identical discipline to QueryWorker)
    # ------------------------------------------------------------------
    def adopt_latest(self, timeout: float = 30.0) -> None:
        """Reload iff newer; delta catch-up first, full load as fallback.

        Caller holds ``_engine_lock``.
        """
        if self.engine is not None:
            try:
                caught_up = self.store.catch_up(self.engine, self.generation)
            except SnapshotError:
                caught_up = None
            if caught_up is not None:
                self.generation = caught_up
                return
        loaded = self.store.load_current(newer_than=self.generation, timeout=timeout)
        if loaded is not None:
            self.generation, self.engine = loaded

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle(self, request: Dict[str, object]) -> Dict[str, object]:
        """Answer one decoded frame (all ops except connection teardown)."""
        operation = request.get("op")
        if operation == "ping":
            return {"ok": True, "generation": self.generation, "pid": os.getpid()}
        if operation == "status":
            return {
                "ok": True,
                "shard": self.shard,
                "generation": self.generation,
                "pid": os.getpid(),
                "requests_handled": self.requests_handled,
                "chaos": self.chaos.snapshot(),
            }
        if operation == "chaos":
            return {"ok": True, "chaos": self.chaos.configure(request)}
        if operation == "sync":
            minimum = int(request.get("min_generation", 0))
            with self._engine_lock:
                try:
                    self.adopt_latest()
                except SnapshotError as exc:
                    return {"ok": False, "generation": self.generation, "error": str(exc)}
                return {"ok": self.generation >= minimum, "generation": self.generation}
        if operation != "topk":
            return {"error": f"unknown op {operation!r}", "status": 400}
        try:
            queries = list(request["queries"])
            k = int(request.get("k", 10))
            approximation = float(request.get("approximation", 0.0))
            with self._engine_lock:
                self.adopt_latest()
                results = []
                for query in queries:
                    sequence = decode_sequence(query["sequence"])
                    results.append(
                        self.engine.searcher.search(
                            str(query["entity"]),
                            k,
                            approximation=approximation,
                            query_sequence=sequence,
                        )
                    )
        except Exception as exc:  # noqa: BLE001 - relayed to the coordinator
            return {"error": f"{type(exc).__name__}: {exc}", "status": 500}
        return {
            "generation": self.generation,
            "results": [protocol.topk_result_payload(result) for result in results],
        }

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------
    def run(self, port_file: Optional[str] = None) -> int:
        """Restore the shard, bind TCP, serve until SIGTERM/SIGINT.

        ``port_file`` (written atomically once the listener is bound) is
        how parents discover an ephemeral port: request ``port=0``, read
        the file.
        """
        with self._engine_lock:
            self.adopt_latest(timeout=self.startup_timeout)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        self.port = listener.getsockname()[1]
        self._listener = listener
        if port_file:
            staged = Path(f"{port_file}.tmp")
            staged.write_text(str(self.port), encoding="utf-8")
            os.replace(staged, port_file)

        def request_stop(signum, frame) -> None:
            self._stopping = True
            try:
                listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

        signal.signal(signal.SIGTERM, request_stop)
        signal.signal(signal.SIGINT, request_stop)

        try:
            while not self._stopping:
                try:
                    connection, _ = listener.accept()
                except OSError:
                    break  # listener closed by request_stop
                if self.chaos.should_refuse():
                    connection.close()
                    continue
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(connection,),
                    name=f"{self.shard}-conn",
                    daemon=True,
                )
                thread.start()
        finally:
            try:
                listener.close()
            except OSError:
                pass
        return 0

    def _serve_connection(self, connection: socket.socket) -> None:
        """Answer frames until the peer disconnects (or we are stopping)."""
        with connection:
            while not self._stopping:
                try:
                    request = recv_frame(connection)
                except (ConnectionError, OSError, ValueError):
                    return
                if request is None:
                    return
                if self.chaos.take_drop():
                    return  # injected fault: vanish instead of answering
                delay = self.chaos.reply_delay()
                if delay:
                    time.sleep(delay)
                reply = self.handle(request)
                self.requests_handled += 1
                try:
                    send_frame(connection, reply)
                except (BrokenPipeError, ConnectionResetError, OSError):
                    return


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the shard-server subprocess; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.cluster.shard_server",
        description="one shard-server replica of the distributed serving tier "
        "(spawned by `repro cluster` / `repro serve --cluster`; "
        "also runnable directly for development)",
    )
    parser.add_argument("--store", required=True, help="shard generation-store directory")
    parser.add_argument("--shard", default="shard-000", help="shard name (for status/metrics)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="TCP port (0 = ephemeral)")
    parser.add_argument(
        "--port-file",
        default=None,
        help="write the bound port here (atomic) so parents can discover it",
    )
    parser.add_argument(
        "--startup-timeout",
        type=float,
        default=60.0,
        help="seconds to wait for the first published generation",
    )
    args = parser.parse_args(argv)
    server = ShardServer(
        args.store,
        shard=args.shard,
        host=args.host,
        port=args.port,
        startup_timeout=args.startup_timeout,
    )
    return server.run(port_file=args.port_file)


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    sys.exit(main())
