"""Distributed serving tier: shard servers, replica groups, a coordinator.

The package promotes the shard boundary from threads in one process
(:class:`~repro.service.sharded.ShardedEngine`) to processes on a network:

- :mod:`repro.cluster.hashring` -- deterministic consistent-hash ring the
  :class:`~repro.service.partition.ConsistentHashPartitioner` is built on;
- :mod:`repro.cluster.wire` -- the cluster's length-prefixed socket ops
  (reusing the worker protocol's framing) plus the query-sequence codec;
- :mod:`repro.cluster.shard_server` -- one process serving one shard's
  snapshot generations over TCP, with built-in fault injection hooks;
- :mod:`repro.cluster.replica` -- replica clients and R-way replica
  groups: retry with backoff, hedged failover, catch-up verified rejoin;
- :mod:`repro.cluster.coordinator` -- fan-out/merge with per-shard
  deadlines and explicit degraded answers when a whole group is down;
- :mod:`repro.cluster.frontend` -- the HTTP-facing ``ClusterServer``
  (same handler surface as :class:`~repro.server.app.TraceServer`);
- :mod:`repro.cluster.chaos` / :mod:`repro.cluster.battery` -- fault
  injection and the exactness-under-faults chaos battery.

See ``docs/DISTRIBUTED.md`` for topology, failover semantics, the
degraded-answer contract, and the catch-up protocol.
"""

from repro.cluster.hashring import ConsistentHashRing

__all__ = ["ConsistentHashRing"]
