"""The cluster's socket ops: framing, query-sequence codec, one-shot calls.

Frames reuse the worker protocol verbatim (4-byte big-endian length prefix
plus one UTF-8 JSON document -- :func:`repro.server.workers.send_frame` /
:func:`~repro.server.workers.recv_frame`), so a shard server speaks the
same wire format as a query worker; only the operation set differs.

Shard-server operations (request ``op`` values):

- ``ping``    -- liveness probe; replies ``{"ok", "generation", "pid"}``.
- ``status``  -- ping plus shard name, request counters, and the current
  chaos flags.
- ``sync``    -- ``{"min_generation": G}``: adopt the newest published
  generation and reply ``{"ok": generation >= G, "generation"}``.  The
  coordinator uses this to *verify* catch-up before a restarted replica
  rejoins the serving rotation.
- ``topk``    -- ``{"queries": [{"entity", "sequence"}, ...], "k",
  "approximation"}``: answer each query against this shard's engine,
  replying ``{"generation", "results": [topk_result_payload, ...]}``.
  The query's ST-cell sequence travels *with the request* because a
  shard's dataset only holds its own partition -- the query entity
  usually lives on some other shard.
- ``chaos``   -- set fault-injection flags (reply delay, drop-next-N,
  refuse connections); test-only, wired through by the chaos battery.

Because every query carries its own sequence, the ``topk`` codec must
round-trip :class:`~repro.traces.events.CellSequence` exactly:
:func:`encode_sequence` flattens each level's frozenset into a
``(time, unit)``-sorted list (deterministic frames for identical queries)
and :func:`decode_sequence` rebuilds the frozensets.  Scores come back as
JSON floats, which round-trip exactly (``repr``), so merged answers can be
byte-identical to a single process's.
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional

from repro.server.workers import recv_frame, send_frame
from repro.traces.events import CellSequence, STCell

__all__ = [
    "ClusterWireError",
    "decode_sequence",
    "encode_sequence",
    "one_shot_request",
]


class ClusterWireError(ConnectionError):
    """A framed exchange that could not complete."""


def encode_sequence(sequence: CellSequence) -> List[List[List[object]]]:
    """``CellSequence`` -> JSON shape: per level, ``(time, unit)``-sorted pairs."""
    return [
        [[cell.time, cell.unit] for cell in sorted(level)]
        for level in sequence.levels
    ]


def decode_sequence(payload: List[List[List[object]]]) -> CellSequence:
    """Rebuild the :class:`CellSequence` encoded by :func:`encode_sequence`."""
    return CellSequence(
        levels=tuple(
            frozenset(STCell(int(time), str(unit)) for time, unit in level)
            for level in payload
        )
    )


def one_shot_request(
    host: str,
    port: int,
    payload: Dict[str, object],
    connect_timeout: float = 5.0,
    read_timeout: float = 30.0,
) -> Optional[Dict[str, object]]:
    """One framed exchange on a fresh connection (probes, chaos, tooling).

    The serving path holds persistent connections
    (:class:`~repro.cluster.replica.ReplicaClient`); this helper is for
    everything else -- liveness probes, ``sync`` verification, chaos
    commands -- where connection reuse would only complicate failure
    attribution.  Returns the reply document, or ``None`` on a clean EOF.
    Raises :class:`ClusterWireError` on refusal, timeout, or a torn frame.
    """
    try:
        connection = socket.create_connection((host, port), timeout=connect_timeout)
    except OSError as exc:
        raise ClusterWireError(f"connect to {host}:{port} failed: {exc}") from exc
    try:
        connection.settimeout(read_timeout)
        send_frame(connection, payload)
        return recv_frame(connection)
    except (OSError, ValueError) as exc:
        raise ClusterWireError(f"exchange with {host}:{port} failed: {exc}") from exc
    finally:
        connection.close()
