"""The chaos battery: exactness-under-faults gates for the cluster tier.

``repro cluster chaos`` runs this.  A seeded workload of interleaved
ingest and top-k queries plays against a live 2-shard x R-replica
:class:`~repro.cluster.frontend.ClusterServer` while the
:class:`~repro.cluster.chaos.ChaosController` injects faults between and
*during* query bursts -- SIGKILLed replicas, delayed replies (forcing
hedges), dropped exchanges (forcing retries), and a whole-group blackout.
Two oracles gate every answer:

- **item exactness** -- the ``(entity, score)`` list must equal a single,
  never-crashed :class:`~repro.core.engine.TraceQueryEngine` fed the
  identical event stream with identical flush boundaries (the paper's
  single-machine semantics, which sharding provably preserves under
  ``bound_mode="per_level"``);
- **byte identity** -- whenever every shard answered, the merged wire
  payload must be byte-for-byte the in-process
  :class:`~repro.service.sharded.ShardedEngine` response (same merge,
  same stats arithmetic, same canonical JSON).

During the blackout the gates invert: answers must carry
``degraded: true`` + ``missing_shards``, the ``degraded_queries`` counter
must reach ``/metrics``, and ``/v1/healthz`` must report ``degraded`` --
a wrong-but-confident answer fails the battery even if every other round
passed.  After ``restore_group`` the battery waits for verified rejoin
(:meth:`ReplicaSupervisor.wait_settled`) and demands exactness again.

Shutdown is part of the gate: every shard-server process must exit on
SIGTERM (no SIGKILL escalation, no orphans).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.cluster.chaos import ChaosController
from repro.cluster.frontend import ClusterServer
from repro.cluster.replica import ClusterConfig
from repro.core.engine import TraceQueryEngine
from repro.server import protocol
from repro.service.merge import merge_topk_payloads
from repro.service.sharded import ShardedEngine
from repro.streaming.ingestor import EventIngestor, StreamingConfig
from repro.traces.dataset import TraceDataset
from repro.traces.events import PresenceInstance
from repro.traces.spatial import SpatialHierarchy

__all__ = ["run_battery"]

HORIZON = 128
NUM_HASHES = 32
ENGINE_SEED = 9
MICRO_BATCH = 64  # larger than any round's chunk: flushes are explicit


def _base_dataset(entities: int) -> TraceDataset:
    """The deterministic seed population both engines start from."""
    hierarchy = SpatialHierarchy.regular([2, 3])
    dataset = TraceDataset(hierarchy, horizon=HORIZON)
    for index in range(entities):
        unit = f"u2_{index % 2}_{index % 3}"
        dataset.add_record(f"seed-{index:03d}", unit, time=(index * 5) % 70, duration=6)
        if index % 4 == 0:
            dataset.add_record(f"seed-{index:03d}", "u2_0_1", time=80, duration=4)
    return dataset


def _round_events(rng: random.Random, round_index: int, count: int) -> List[Dict[str, int]]:
    """One round's ingest chunk: new entities plus touches on seed ones."""
    events = []
    for number in range(count):
        if number % 5 == 4:
            entity = f"seed-{rng.randrange(0, 20):03d}"
        else:
            entity = f"r{round_index}-e{number:03d}"
        unit = f"u2_{rng.randrange(2)}_{rng.randrange(3)}"
        start = rng.randrange(0, HORIZON - 8)
        events.append(
            {"entity": entity, "unit": unit, "start": start, "end": start + rng.randrange(2, 8)}
        )
    return events


class _Gates:
    """Check counters; any failure flips ``passed`` and records why."""

    def __init__(self) -> None:
        self.checks = {"exact_items": 0, "byte_identical": 0, "degraded_marked": 0}
        self.failures: List[str] = []

    def expect(self, ok: bool, kind: str, detail: str) -> None:
        if ok:
            self.checks[kind] += 1
        else:
            self.failures.append(f"{kind}: {detail}")

    @property
    def passed(self) -> bool:
        return not self.failures


def _query_burst(
    server: ClusterServer,
    oracle: TraceQueryEngine,
    gates: _Gates,
    rng: random.Random,
    known: List[str],
    count: int,
    expect_degraded: bool = False,
    missing: Optional[List[int]] = None,
) -> None:
    """Fire ``count`` queries and hold every answer to the oracles."""
    for _ in range(count):
        entity = known[rng.randrange(len(known))]
        k = rng.randrange(1, 9)
        status, payload = server.handle_topk({"entity": entity, "k": k})
        if status != 200:
            gates.expect(False, "exact_items", f"{entity!r} k={k}: HTTP {status} {payload}")
            continue
        got_items = [(row["entity"], row["score"]) for row in payload["results"]]
        if expect_degraded:
            # A blackout answer is allowed to miss the dead shard's
            # candidates -- what it must do is *say so*, and be exactly
            # the merge of the shards that did answer.
            gates.expect(
                payload.get("degraded") is True
                and payload.get("missing_shards") == missing,
                "degraded_marked",
                f"{entity!r}: blackout answer not marked: "
                f"degraded={payload.get('degraded')!r} "
                f"missing={payload.get('missing_shards')!r}",
            )
            with server.engine_lock:
                sequence = server.engine.dataset.cell_sequence(entity)
                live_payloads = [
                    protocol.topk_result_payload(
                        server.engine.shards[index].searcher.search(
                            entity, k, query_sequence=sequence
                        )
                    )
                    for index in range(len(server.engine.shards))
                    if index not in (missing or [])
                ]
            reference = merge_topk_payloads(entity, live_payloads, k)
            stripped = {
                key: value
                for key, value in payload.items()
                if key not in ("degraded", "missing_shards")
            }
            gates.expect(
                protocol.dumps(stripped) == protocol.dumps(reference),
                "exact_items",
                f"{entity!r} k={k}: degraded answer diverged from the "
                f"live shards' merge",
            )
            continue
        expected = oracle.top_k(entity, k)
        want_items = [(name, score) for name, score in expected.items]
        gates.expect(
            got_items == want_items,
            "exact_items",
            f"{entity!r} k={k}: cluster {got_items} != oracle {want_items}",
        )
        # Full-fleet answers must be byte-identical to the in-process
        # sharded response (the cluster's own owner engine).
        with server.engine_lock:
            reference = protocol.topk_result_payload(server.engine.top_k(entity, k))
        gates.expect(
            protocol.dumps(payload) == protocol.dumps(reference),
            "byte_identical",
            f"{entity!r} k={k}: wire payload diverged from in-process merge",
        )


def _ingest(
    server: ClusterServer,
    oracle_ingestor: EventIngestor,
    events: List[Dict[str, int]],
) -> Optional[str]:
    """Feed the same chunk to the cluster and the oracle; flush both."""
    status, payload = server.handle_events({"events": events, "flush": True})
    if status != 200:
        return f"/v1/events -> HTTP {status}: {payload}"
    for event in events:
        oracle_ingestor.submit(
            PresenceInstance(event["entity"], event["unit"], event["start"], event["end"])
        )
    oracle_ingestor.flush()
    return None


def run_battery(
    smoke: bool = False,
    seed: int = 7,
    shards: int = 2,
    replication: int = 2,
    settle_timeout: float = 60.0,
) -> Dict[str, object]:
    """Run the full fault schedule; returns a report with ``passed``.

    ``smoke`` shrinks the workload (CI-sized: same faults, fewer
    queries).  The fault schedule is fixed -- warmup, kill-one-per-group
    mid-burst, wire chaos (delays + drops), whole-group blackout,
    recovery -- only the workload volume scales.
    """
    rng = random.Random(seed)
    seed_entities = 20 if smoke else 36
    chunk = 10 if smoke else 25
    burst = 6 if smoke else 18

    oracle = TraceQueryEngine(
        _base_dataset(seed_entities),
        num_hashes=NUM_HASHES,
        seed=ENGINE_SEED,
        bound_mode="per_level",
    ).build()
    oracle_ingestor = EventIngestor(oracle, StreamingConfig(max_batch_events=MICRO_BATCH))
    engine = ShardedEngine(
        _base_dataset(seed_entities),
        num_shards=shards,
        num_hashes=NUM_HASHES,
        seed=ENGINE_SEED,
        bound_mode="per_level",
        partitioner="consistent_hash",
    ).build()

    config = ClusterConfig(
        connect_timeout=2.0,
        request_timeout=10.0,
        shard_deadline=15.0,
        hedge_delay=0.05,
        backoff_base=0.02,
        backoff_cap=0.5,
        max_attempts=4,
        replication=replication,
    )
    server = ClusterServer(
        engine,
        streaming=StreamingConfig(max_batch_events=MICRO_BATCH),
        replication=replication,
        cluster_config=config,
    )
    chaos = ChaosController(server)
    gates = _Gates()
    known = [f"seed-{index:03d}" for index in range(seed_entities)]
    rounds: List[Dict[str, object]] = []

    def record_round(name: str, detail: str = "") -> None:
        rounds.append(
            {
                "round": name,
                "detail": detail,
                "checks": dict(gates.checks),
                "failures": len(gates.failures),
            }
        )

    try:
        # Round 0: warmup -- full fleet, exactness + byte identity.
        _query_burst(server, oracle, gates, rng, known, burst)
        record_round("warmup")

        # Round 1: ingest, then SIGKILL one replica per group *mid-burst*.
        error = _ingest(server, oracle_ingestor, _round_events(rng, 1, chunk))
        if error:
            gates.failures.append(error)
        known = sorted(oracle.dataset.entities)
        _query_burst(server, oracle, gates, rng, known, burst // 2)
        killed = chaos.kill_one_per_group(replica_index=0)
        _query_burst(server, oracle, gates, rng, known, burst)
        if not server.supervisor.wait_settled(timeout=settle_timeout):
            gates.failures.append(
                f"respawn did not settle after kill: {server.supervisor.snapshot()}"
            )
        record_round("kill_one_per_group", detail=",".join(killed))

        # Round 2: wire chaos -- slow replies force hedges, drops force
        # retries; answers must stay exact and byte-identical throughout.
        error = _ingest(server, oracle_ingestor, _round_events(rng, 2, chunk))
        if error:
            gates.failures.append(error)
        known = sorted(oracle.dataset.entities)
        for group in server.groups:
            chaos.slow_replies(f"{group.shard}-r0", delay=0.3)
            if replication > 1:
                chaos.drop_requests(f"{group.shard}-r1", count=2)
        _query_burst(server, oracle, gates, rng, known, burst)
        chaos.clear()
        record_round("wire_chaos")

        # Round 3: blackout one whole group -> answers degrade, marked.
        blackout_index = shards - 1
        chaos.blackout_group(blackout_index)
        # Shrink the deadline: with zero live replicas every attempt must
        # burn through retries; the battery should not spend the full
        # per-shard budget per query just to prove degradation.
        config.shard_deadline = 1.0
        config.max_attempts = 2
        _query_burst(
            server,
            oracle,
            gates,
            rng,
            known,
            max(3, burst // 3),
            expect_degraded=True,
            missing=[blackout_index],
        )
        status, health = server.handle_healthz()
        gates.expect(
            health.get("status") == "degraded",
            "degraded_marked",
            f"/v1/healthz status {health.get('status')!r} during blackout",
        )
        _, metrics_text = server.handle_metrics()
        gates.expect(
            'repro_cluster_events_total{event="degraded_queries"}' in metrics_text
            and server.coordinator.counters["degraded_queries"] > 0,
            "degraded_marked",
            "degraded_queries counter missing from /metrics",
        )
        record_round("blackout", detail=f"shard-{blackout_index:03d}")

        # Round 4: restore, wait for verified rejoin, demand exactness.
        config.shard_deadline = 15.0
        config.max_attempts = 4
        chaos.restore_group(blackout_index)
        if not server.supervisor.wait_settled(timeout=settle_timeout):
            gates.failures.append(
                f"blackout group never rejoined: {server.supervisor.snapshot()}"
            )
        error = _ingest(server, oracle_ingestor, _round_events(rng, 4, chunk))
        if error:
            gates.failures.append(error)
        known = sorted(oracle.dataset.entities)
        _query_burst(server, oracle, gates, rng, known, burst)
        record_round("recovery")

        coordinator = server.coordinator.snapshot()
        supervisor = server.supervisor.snapshot()
    finally:
        stubborn = server.supervisor.shutdown_processes()
        server.close()

    if stubborn:
        gates.failures.append(f"processes needed SIGKILL at shutdown: {stubborn}")
    return {
        "passed": gates.passed,
        "smoke": smoke,
        "seed": seed,
        "shards": shards,
        "replication": replication,
        "rounds": rounds,
        "checks": gates.checks,
        "failures": gates.failures,
        "faults": chaos.injected,
        "coordinator": coordinator,
        "supervisor": supervisor,
        "stubborn_processes": stubborn,
    }
