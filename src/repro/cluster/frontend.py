"""The cluster front-end: owner process + shard-server replica fleet.

``repro serve --cluster SxR`` (and the chaos battery) run this instead of
the single-host tiers: a :class:`ClusterServer` embeds the write-owning
:class:`~repro.server.app.TraceServer` over a
:class:`~repro.service.sharded.ShardedEngine`, publishes **per-shard**
snapshot generations from the flush hook, and answers ``/v1/topk``
through a :class:`~repro.cluster.coordinator.ClusterCoordinator` fanning
out over ``S`` replica groups of ``R`` shard-server processes each
(:mod:`repro.cluster.shard_server`), supervised by a
:class:`~repro.cluster.supervisor.ReplicaSupervisor` (respawn with
backoff, catch-up-verified rejoin).

It exposes the exact ``handle_*`` surface of
:class:`~repro.server.app.TraceServer` /
:class:`~repro.server.frontend.FrontendServer`, so
:func:`~repro.server.app.build_http_server` and the CLI wrap it
unchanged.  The consistency model also carries over: a flush publishes
every changed shard's generation *before* the events response is
written, and shard servers adopt at request boundaries, so acknowledged
writes are visible to every subsequent query -- now across processes
*and* replica crashes (the chaos battery's exactness gate).

Store layout under ``store_root``::

    shard-000/  shard-001/ ...   per-shard GenerationStores
    run/                         port files of the replica processes
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.cluster.coordinator import ClusterCoordinator, CoordinatorError
from repro.cluster.replica import ClusterConfig, ReplicaClient, ReplicaGroup
from repro.cluster.supervisor import ManagedReplica, ReplicaSupervisor
from repro.obs import exposition
from repro.obs.trace import SpanContext
from repro.server import protocol
from repro.server.app import TraceServer
from repro.server.coalescer import QueueFullError, RequestCoalescer
from repro.server.generation import DELTA_CHAIN_LIMIT, GenerationStore, SnapshotDelta
from repro.streaming.ingestor import StreamingConfig

__all__ = ["ClusterServer", "shard_name"]

Response = Tuple[int, Dict[str, object]]


def shard_name(index: int) -> str:
    """The canonical shard directory/metric name (``shard-000`` ...)."""
    return f"shard-{index:03d}"


class _ClusterDispatch:
    """Engine-shaped adapter routing the coalescer to the coordinator."""

    class _Batch:
        __slots__ = ("results",)

        def __init__(self, results: List[Dict[str, object]]) -> None:
            self.results = results

    def __init__(self, coordinator: ClusterCoordinator) -> None:
        self._coordinator = coordinator

    def top_k_batch(
        self,
        entities,
        k: int,
        approximation: float,
        traces: Optional[List[Optional[SpanContext]]] = None,
    ) -> "_ClusterDispatch._Batch":
        return self._Batch(
            self._coordinator.topk_payloads(list(entities), k, approximation)
        )

    def top_k(
        self,
        entity: str,
        k: int,
        approximation: float,
        trace: Optional[SpanContext] = None,
    ) -> Dict[str, object]:
        return self._coordinator.topk_payloads([entity], k, approximation)[0]


class ClusterServer:
    """The distributed tier behind the standard serving surface.

    Parameters mirror :class:`~repro.server.frontend.FrontendServer`, with
    ``replication`` (replicas per shard group) and ``cluster_config``
    (timeout/retry/hedging knobs) in place of ``workers``.  ``engine``
    must be a built :class:`~repro.service.sharded.ShardedEngine`; its
    shard count fixes the cluster's ``S``.
    """

    def __init__(
        self,
        engine,
        streaming: Optional[StreamingConfig] = None,
        replication: int = 2,
        coalesce_window: float = 0.002,
        max_pending: int = 1024,
        max_batch: int = 64,
        store_root: Optional[os.PathLike] = None,
        startup_timeout: float = 60.0,
        trace_sample: float = 0.0,
        wal=None,
        stream_state: Optional[Dict[str, object]] = None,
        delta_limit: int = DELTA_CHAIN_LIMIT,
        cluster_config: Optional[ClusterConfig] = None,
    ) -> None:
        if not hasattr(engine, "shards"):
            raise ValueError("ClusterServer needs a built ShardedEngine")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self._owns_store = store_root is None
        root = (
            Path(tempfile.mkdtemp(prefix="repro-cluster-"))
            if store_root is None
            else Path(store_root)
        )
        self.root = root
        self.replication = replication
        self.cluster_config = cluster_config or ClusterConfig(replication=replication)
        self.owner = TraceServer(
            engine,
            streaming=streaming,
            coalesce_window=coalesce_window,
            max_pending=max_pending,
            max_batch=max_batch,
            trace_sample=trace_sample,
            wal=wal,
            stream_state=stream_state,
        )
        self.engine = engine
        self.engine_lock = self.owner.engine_lock
        self.metrics = self.owner.metrics
        self.ingestor = self.owner.ingestor
        self.tracer = self.owner.tracer
        self.started_at = self.owner.started_at
        self.num_shards = engine.num_shards
        self._closed = False

        self.stores: Dict[str, GenerationStore] = {}
        managed: Dict[str, ManagedReplica] = {}
        clients: Dict[str, ReplicaClient] = {}
        groups: List[ReplicaGroup] = []
        try:
            # Initial per-shard publish: every replica needs a generation to
            # adopt at spawn, before any stream write.
            with self.engine_lock:
                for index, shard_engine in enumerate(engine.shards):
                    store = GenerationStore(
                        root / shard_name(index), delta_limit=delta_limit
                    )
                    store.publish(shard_engine, extra_meta=self._durability_meta())
                    self.stores[shard_name(index)] = store
            self.ingestor.add_flush_hook(self._publish_after_flush)

            run_dir = root / "run"
            for index in range(self.num_shards):
                shard = shard_name(index)
                replicas: List[ReplicaClient] = []
                for replica_index in range(replication):
                    name = f"{shard}-r{replica_index}"
                    replica = ManagedReplica(
                        shard,
                        name,
                        store_root=str(root / shard),
                        run_dir=str(run_dir),
                        startup_timeout=startup_timeout,
                    )
                    port = replica.spawn()
                    client = ReplicaClient(
                        name, replica.host, port, config=self.cluster_config
                    )
                    managed[name] = replica
                    clients[name] = client
                    replicas.append(client)
                groups.append(ReplicaGroup(shard, replicas, config=self.cluster_config))
            self.managed = managed
            self.clients = clients
            self.groups = groups
            self.coordinator = ClusterCoordinator(engine.dataset, groups)
            self.supervisor = ReplicaSupervisor(
                {group.shard: group for group in groups},
                managed,
                clients,
                self.stores,
                config=self.cluster_config,
            )
            self.supervisor.start()
            self.coalescer = RequestCoalescer(
                _ClusterDispatch(self.coordinator),
                threading.Lock(),
                window_seconds=coalesce_window,
                max_pending=max_pending,
                max_batch=max_batch,
            )
        except BaseException:
            for replica in managed.values():
                replica.terminate()
            self.owner.close()
            if self._owns_store:
                shutil.rmtree(root, ignore_errors=True)
            raise

    # ------------------------------------------------------------------
    # Generation publishing (owner side)
    # ------------------------------------------------------------------
    def _durability_meta(self) -> Dict[str, object]:
        """WAL position and stream state stamped into every publish."""
        wal = self.ingestor.wal
        return {
            "wal_seq": wal.last_seq if wal is not None else 0,
            "stream": self.ingestor.stream_state(),
        }

    def _publish_after_flush(self, report) -> None:
        """Flush hook: publish each *changed* shard's generation.

        Runs under the engine lock.  The flush's appended events split by
        owning shard (the engine routed them moments ago, so the
        assignment is recorded); window cutoffs and compactions apply to
        every shard.  A shard whose delta would be empty skips the publish
        -- per-shard generation counters advance independently.
        """
        changed = (
            report.events
            or (report.expiry is not None and report.expiry.expired_records)
            or report.compacted
        )
        if not changed:
            return
        by_shard: Dict[int, List[object]] = {}
        for event in report.appended:
            by_shard.setdefault(self.engine.shard_of(event.entity), []).append(event)
        meta = self._durability_meta()
        for index, shard_engine in enumerate(self.engine.shards):
            delta = SnapshotDelta(
                events=list(by_shard.get(index, [])),
                cutoff=report.cutoff,
                compacted=bool(report.compacted),
            )
            if delta.is_empty():
                continue
            self.stores[shard_name(index)].publish_update(
                shard_engine, delta=delta, extra_meta=meta
            )

    # ------------------------------------------------------------------
    # Endpoint handlers (same surface as TraceServer / FrontendServer)
    # ------------------------------------------------------------------
    def handle_topk(self, payload: object) -> Response:
        """``POST /v1/topk`` routed through the coordinator fan-out."""
        trace = self.tracer.start_trace("request.topk")
        if trace is None:
            return self._answer_topk(payload)
        try:
            status, response = self._answer_topk(payload)
        except BaseException:
            self.tracer.finish(trace, error=True)
            raise
        self.tracer.finish(trace, status=status, error=status >= 500)
        return status, response

    def _answer_topk(self, payload: object) -> Response:
        try:
            request = protocol.parse_topk_request(payload)
        except protocol.ProtocolError as exc:
            return exc.status, protocol.error_payload(str(exc))
        if self._closed:
            return 503, protocol.error_payload("the server is shutting down")
        with self.engine_lock:
            unknown = [
                candidate
                for candidate in request.entities
                if candidate not in self.engine.dataset
            ]
        if unknown:
            return 404, protocol.error_payload(f"unknown entity {unknown[0]!r}")
        try:
            if request.batch:
                payloads = self.coordinator.topk_payloads(
                    request.entities, request.k, request.approximation
                )
            else:
                payloads = [
                    self.coalescer.submit(
                        request.entities[0],
                        k=request.k,
                        approximation=request.approximation,
                    )
                ]
        except QueueFullError as exc:
            return 429, protocol.error_payload(str(exc))
        except KeyError as exc:
            return 404, protocol.error_payload(f"unknown entity {exc.args[0]!r}")
        except CoordinatorError as exc:
            return 503, protocol.error_payload(str(exc))
        except RuntimeError as exc:
            return 503, protocol.error_payload(str(exc))
        if not request.batch:
            return 200, payloads[0]
        return 200, {"results": payloads}

    def handle_events(self, payload: object) -> Response:
        """``POST /v1/events``: the owner's write path (flush hook publishes)."""
        return self.owner.handle_events(payload)

    def handle_healthz(self) -> Response:
        """``GET /v1/healthz`` plus cluster topology and per-shard liveness."""
        status, payload = self.owner.handle_healthz()
        live = {group.shard: group.live_replicas() for group in self.groups}
        payload["cluster"] = {
            "shards": self.num_shards,
            "replication": self.replication,
            "live_replicas": live,
            "generations": {
                shard: store.generation for shard, store in self.stores.items()
            },
        }
        if any(count == 0 for count in live.values()):
            payload["status"] = "degraded"
        return status, payload

    def handle_stats(self) -> Response:
        """``GET /v1/stats`` with a ``cluster`` section."""
        payload = self.owner._stats_payload(coalescer=self.coalescer)
        payload["cluster"] = {
            "coordinator": self.coordinator.snapshot(),
            "supervisor": self.supervisor.snapshot(),
            "generations": {
                shard: store.generation for shard, store in self.stores.items()
            },
        }
        return 200, payload

    def handle_metrics(self) -> Tuple[int, str]:
        """``GET /metrics`` with cluster families appended.

        ``repro_cluster_replica_up`` is the per-node health gauge
        (``1`` live, ``0`` anything else) and
        ``repro_cluster_events_total{event="degraded_queries"}`` counts
        answers that went out explicitly marked degraded -- the metric the
        degraded-answer contract promises.
        """
        families = self.owner._metric_families(coalescer=self.coalescer)
        coordinator = self.coordinator.snapshot()
        supervisor = self.supervisor.snapshot()
        families.append(
            exposition.MetricFamily(
                name="repro_cluster_shards",
                kind="gauge",
                help="Shard groups in the cluster.",
                samples=[("", {}, float(self.num_shards))],
            )
        )
        up_samples = []
        state_samples = []
        for group in self.groups:
            for replica in group.replicas:
                health = replica.health.snapshot()
                labels = {"shard": group.shard, "replica": str(health["name"])}
                up_samples.append(
                    ("", labels, 1.0 if health["state"] == "live" else 0.0)
                )
                state_samples.append(
                    ("", {**labels, "state": str(health["state"])}, 1.0)
                )
        families.append(
            exposition.MetricFamily(
                name="repro_cluster_replica_up",
                kind="gauge",
                help="Per-replica liveness (1 = live and serving, 0 = "
                "suspect, down, or catching up).",
                samples=up_samples,
            )
        )
        families.append(
            exposition.MetricFamily(
                name="repro_cluster_replica_state",
                kind="gauge",
                help="Per-replica health state (live/suspect/down/catching_up).",
                samples=state_samples,
            )
        )
        events = []
        totals = {"requests": 0, "retries": 0, "hedges": 0, "failovers": 0}
        for group in coordinator["groups"]:
            for key in totals:
                totals[key] += group["counters"][key]
        for key, value in totals.items():
            events.append(("", {"event": key}, float(value)))
        events.append(
            (
                "",
                {"event": "degraded_queries"},
                float(coordinator["counters"]["degraded_queries"]),
            )
        )
        events.append(
            (
                "",
                {"event": "failed_queries"},
                float(coordinator["counters"]["failed_queries"]),
            )
        )
        events.append(
            (
                "",
                {"event": "respawns"},
                float(sum(supervisor["respawns"].values())),
            )
        )
        events.append(
            ("", {"event": "respawn_storms"}, float(supervisor["respawn_storms"]))
        )
        families.append(
            exposition.MetricFamily(
                name="repro_cluster_events_total",
                kind="counter",
                help="Cluster activity: shard requests, retries, hedged "
                "requests, failovers, degraded answers (a whole replica "
                "group down), failed queries, replica respawns and "
                "respawn storms.",
                samples=events,
            )
        )
        families.append(
            exposition.MetricFamily(
                name="repro_cluster_generation",
                kind="gauge",
                help="Newest published generation per shard store.",
                samples=[
                    ("", {"shard": shard}, float(store.generation))
                    for shard, store in sorted(self.stores.items())
                ],
            )
        )
        return 200, exposition.render_exposition(families)

    def handle_debug_slow(self) -> Response:
        """``GET /v1/debug/slow``: the shared tracer's slow-query log."""
        return self.owner.handle_debug_slow()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Graceful shutdown: drain reads, flush writes, stop the fleet.

        Order mirrors :class:`FrontendServer`: the coalescer drains first
        (in-flight queries still answer), the owner flushes (publishing
        final generations), then the supervisor SIGTERMs every shard
        server and the store directory is removed when private.
        """
        if self._closed:
            return
        self._closed = True
        self.coalescer.close()
        self.owner.close()
        self.coordinator.close()
        self.supervisor.shutdown_processes()
        if self._owns_store:
            shutil.rmtree(self.root, ignore_errors=True)

    def __enter__(self) -> "ClusterServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
