"""Managed shard-server processes: spawn, respawn with backoff, verified rejoin.

The coordinator side of process lifecycle.  :class:`ManagedReplica` wraps
one shard-server subprocess (ephemeral port discovered through an
atomically-written port file); :class:`ReplicaSupervisor` owns all of a
cluster's processes and runs the respawn loop:

1. a dead, non-suspended process is respawned under
   :class:`~repro.server.backoff.ExponentialBackoff` (a replica dying on
   startup must not become a fork storm -- storms are counted and
   exported, exactly like the worker pool's);
2. a respawned replica enters ``catching_up``
   (:class:`~repro.obs.health.NodeHealth`) and is **excluded from the
   serving rotation** by its replica group;
3. the supervisor sends it ``sync`` with ``min_generation`` = the shard
   store's newest published generation; the shard server adopts along the
   delta chain (or reloads a full snapshot) and answers with where it
   stands.  Only an affirmative answer -- the replica provably at or past
   the generation the owner has published -- flips it back to ``live``.

Step 3 is the *catch-up verification* of the rejoin contract: a replica
that lost generations while dead can never serve stale answers, because
it re-enters rotation only after demonstrating it has replayed the suffix
it missed.  The chaos battery kills replicas specifically to exercise
this loop.

``suspend``/``resume`` exist for fault injection: a chaos scenario that
wants a replica (or a whole group) to *stay* down suspends it first, so
the supervisor does not helpfully revive it mid-scenario.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.cluster.replica import ClusterConfig, ReplicaClient, ReplicaGroup
from repro.cluster.wire import ClusterWireError, one_shot_request
from repro.server.backoff import ExponentialBackoff
from repro.server.generation import GenerationStore

__all__ = ["ManagedReplica", "ReplicaSupervisor"]


class ManagedReplica:
    """One shard-server subprocess and its port-file discovery."""

    def __init__(
        self,
        shard: str,
        name: str,
        store_root: str,
        run_dir: str,
        startup_timeout: float = 60.0,
    ) -> None:
        self.shard = shard
        self.name = name
        self.store_root = str(store_root)
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.startup_timeout = startup_timeout
        self.port_file = self.run_dir / f"{name}.port"
        self.host = "127.0.0.1"
        self.port: Optional[int] = None
        self.process: Optional[subprocess.Popen] = None
        #: While ``True`` the supervisor leaves a dead process dead.
        self.suspended = False
        self.respawns = -1  # first spawn is not a respawn

    def spawn(self) -> int:
        """Start the process and return its bound port (may raise on startup death)."""
        try:
            self.port_file.unlink()
        except FileNotFoundError:
            pass
        command = [
            sys.executable,
            "-m",
            "repro.cluster.shard_server",
            "--store",
            self.store_root,
            "--shard",
            self.name,
            "--port-file",
            str(self.port_file),
            "--startup-timeout",
            str(self.startup_timeout),
        ]
        self.process = subprocess.Popen(command)
        deadline = time.monotonic() + self.startup_timeout
        while time.monotonic() < deadline:
            if self.port_file.exists():
                text = self.port_file.read_text(encoding="utf-8").strip()
                if text:
                    self.port = int(text)
                    self.respawns += 1
                    return self.port
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"{self.name}: shard server exited with "
                    f"{self.process.returncode} before binding"
                )
            time.sleep(0.02)
        raise RuntimeError(f"{self.name}: no port file within {self.startup_timeout:.0f}s")

    def alive(self) -> bool:
        """Whether the subprocess exists and has not exited."""
        return self.process is not None and self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL -- the chaos battery's crash primitive."""
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait()

    def terminate(self, timeout: float = 10.0) -> None:
        """Clean SIGTERM shutdown; escalates to SIGKILL past ``timeout``."""
        if self.process is None:
            return
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - escalation path
                self.process.kill()
                self.process.wait()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ManagedReplica({self.name!r}, port={self.port}, alive={self.alive()})"


class ReplicaSupervisor:
    """The respawn loop over every managed replica of a cluster."""

    def __init__(
        self,
        groups: Dict[str, ReplicaGroup],
        managed: Dict[str, ManagedReplica],
        clients: Dict[str, ReplicaClient],
        stores: Dict[str, GenerationStore],
        config: Optional[ClusterConfig] = None,
        poll_interval: float = 0.1,
        respawn_backoff_base: float = 0.1,
        respawn_backoff_cap: float = 5.0,
    ) -> None:
        self.groups = groups
        self.managed = managed          # replica name -> process
        self.clients = clients          # replica name -> client
        self.stores = stores            # shard name -> owner-side store
        self.config = config or ClusterConfig()
        self.poll_interval = poll_interval
        self.respawn_storms = 0
        self._backoffs = {
            name: ExponentialBackoff(base=respawn_backoff_base, cap=respawn_backoff_cap)
            for name in managed
        }
        self._next_attempt = {name: 0.0 for name in managed}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background respawn/rejoin loop."""
        self._thread = threading.Thread(
            target=self._run, name="replica-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the loop (the managed processes are left as they are)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            for name, replica in self.managed.items():
                try:
                    self._tend(name, replica)
                except Exception:  # noqa: BLE001 - the loop must survive anything
                    pass

    def _tend(self, name: str, replica: ManagedReplica) -> None:
        client = self.clients[name]
        if replica.suspended:
            return
        if not replica.alive():
            client.health.mark_down()
            now = time.monotonic()
            if now < self._next_attempt[name]:
                return
            backoff = self._backoffs[name]
            try:
                port = replica.spawn()
            except (RuntimeError, OSError):
                delay = backoff.next_delay()
                if backoff.failures == ExponentialBackoff.STORM_THRESHOLD:
                    with self._lock:
                        self.respawn_storms += 1
                self._next_attempt[name] = time.monotonic() + delay
                return
            client.set_address(replica.host, port)
            client.health.mark_catching_up()
        if client.health.state == "catching_up":
            self._verify_rejoin(name, replica, client)

    def _verify_rejoin(
        self, name: str, replica: ManagedReplica, client: ReplicaClient
    ) -> None:
        """Flip ``catching_up`` to ``live`` only on a proven generation."""
        store = self.stores[replica.shard]
        try:
            reply = one_shot_request(
                replica.host,
                int(replica.port),
                {"op": "sync", "min_generation": store.generation},
                connect_timeout=self.config.connect_timeout,
                read_timeout=self.config.request_timeout,
            )
        except ClusterWireError:
            return  # not ready yet; the next tick retries
        if reply is not None and reply.get("ok"):
            client.health.mark_live()
            self._backoffs[name].reset()
            self._next_attempt[name] = 0.0

    # ------------------------------------------------------------------
    # Chaos / introspection hooks
    # ------------------------------------------------------------------
    def suspend(self, names: Sequence[str]) -> None:
        """Leave these replicas dead if they die (chaos: a lasting outage)."""
        for name in names:
            self.managed[name].suspended = True

    def resume(self, names: Sequence[str]) -> None:
        """Lift a suspension; the loop may respawn the replicas again."""
        for name in names:
            self.managed[name].suspended = False

    def wait_settled(self, timeout: float = 60.0) -> bool:
        """Block until every non-suspended replica is alive and ``live``."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            pending = [
                name
                for name, replica in self.managed.items()
                if not replica.suspended
                and (not replica.alive() or not self.clients[name].health.is_live)
            ]
            if not pending:
                return True
            time.sleep(0.05)
        return False

    def snapshot(self) -> Dict[str, object]:
        """Respawn counters and suspensions for ``/v1/stats`` and ``/metrics``."""
        with self._lock:
            storms = self.respawn_storms
        return {
            "respawn_storms": storms,
            "respawns": {
                name: max(0, replica.respawns) for name, replica in self.managed.items()
            },
            "suspended": sorted(
                name for name, replica in self.managed.items() if replica.suspended
            ),
        }

    def shutdown_processes(self, timeout: float = 10.0) -> List[str]:
        """SIGTERM every process; returns the names that needed SIGKILL."""
        self.stop()
        stubborn: List[str] = []
        for name, replica in self.managed.items():
            was_alive = replica.alive()
            replica.terminate(timeout=timeout)
            if was_alive and replica.process is not None:
                if replica.process.returncode not in (0, -signal.SIGTERM):
                    stubborn.append(name)
        return stubborn
