"""An LRU buffer pool with hit/miss accounting.

The memory-size experiment (Figure 7.6) varies the fraction of the raw data
that fits in memory; the buffer pool is what turns that fraction into page
hits and misses while the searcher fetches candidate entities.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, Optional, TypeVar

__all__ = ["LRUBufferPool"]

KeyT = TypeVar("KeyT", bound=Hashable)
ValueT = TypeVar("ValueT")


class LRUBufferPool(Generic[KeyT, ValueT]):
    """A bounded cache of pages (or any loadable objects) with LRU eviction.

    Parameters
    ----------
    capacity:
        Maximum number of entries kept in memory.  A capacity of zero is
        allowed and means every access is a miss (pure disk workload).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[KeyT, ValueT]" = OrderedDict()
        #: Number of accesses served from memory.
        self.hits = 0
        #: Number of accesses that had to call the loader.
        self.misses = 0
        #: Number of entries evicted to make room.
        self.evictions = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: KeyT) -> bool:
        return key in self._entries

    @property
    def accesses(self) -> int:
        """Total number of :meth:`get` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from memory."""
        total = self.accesses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters (the cache content is kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def clear(self) -> None:
        """Drop every cached entry and reset the counters."""
        self._entries.clear()
        self.reset_counters()

    # ------------------------------------------------------------------
    def get(self, key: KeyT, loader: Callable[[KeyT], ValueT]) -> ValueT:
        """Fetch ``key``, calling ``loader`` (and caching the result) on a miss."""
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        value = loader(key)
        self.put(key, value)
        return value

    def peek(self, key: KeyT) -> Optional[ValueT]:
        """Return the cached value without affecting recency or counters."""
        return self._entries.get(key)

    def put(self, key: KeyT, value: ValueT) -> None:
        """Insert (or refresh) an entry, evicting the least recently used one if full."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = value
