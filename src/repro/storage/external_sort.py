"""B-way external merge sort over a paged file (Section 4.3).

Index construction requires the raw digital traces to be grouped by entity.
When the traces do not fit in memory the paper sorts them with the classic
B-way external merge sort, whose I/O cost is

    ``2 N * (1 + ceil(log_B(ceil(N / B))))``

pages for ``N`` data pages and ``B`` buffer pages (read and write every page
once per pass).  :class:`ExternalSorter` implements the algorithm over
:class:`~repro.storage.pages.PagedFile` runs and reports both the measured
and the analytic page I/O so tests can confirm they agree.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.storage.pages import PagedFile

__all__ = ["SortStats", "ExternalSorter"]

Record = Tuple[str, str, int, int]


@dataclass(frozen=True)
class SortStats:
    """Outcome of one external sort."""

    #: Number of data pages in the input file.
    input_pages: int
    #: Number of buffer pages available.
    buffer_pages: int
    #: Number of initial sorted runs produced.
    initial_runs: int
    #: Number of merge passes performed after run formation.
    merge_passes: int
    #: Pages read plus pages written over the whole sort.
    page_ios: int

    @property
    def total_passes(self) -> int:
        """Run formation plus merge passes (the paper's ``1 + ceil(log_B ...)``)."""
        return 1 + self.merge_passes

    @property
    def analytic_page_ios(self) -> int:
        """The textbook cost ``2 N (1 + ceil(log_{B-1} ceil(N / B)))``."""
        if self.input_pages == 0:
            return 0
        runs = math.ceil(self.input_pages / self.buffer_pages)
        if runs <= 1:
            merge_passes = 0
        else:
            merge_passes = math.ceil(math.log(runs, max(2, self.buffer_pages - 1)))
        return 2 * self.input_pages * (1 + merge_passes)


class ExternalSorter:
    """Sort the records of a :class:`PagedFile` with limited buffer pages.

    Parameters
    ----------
    buffer_pages:
        Number of pages that fit in memory (``B``); at least 2 (one output
        page plus at least one input page is needed to merge).
    key:
        Sort key applied to each record; defaults to the full record tuple,
        which groups records by entity first -- exactly what index
        construction needs.
    """

    def __init__(
        self,
        buffer_pages: int = 8,
        key: Callable[[Record], object] | None = None,
    ) -> None:
        if buffer_pages < 2:
            raise ValueError(f"buffer_pages must be >= 2, got {buffer_pages}")
        self.buffer_pages = buffer_pages
        self.key = key or (lambda record: record)

    # ------------------------------------------------------------------
    def sort(self, source: PagedFile) -> Tuple[PagedFile, SortStats]:
        """Sort ``source`` into a new paged file, reporting the I/O statistics."""
        source.reset_counters()
        input_pages = source.num_pages

        # Pass 0: read B pages at a time, sort them in memory, write a run.
        runs: List[PagedFile] = []
        page_id = 0
        while page_id < input_pages:
            chunk: List[Record] = []
            for offset in range(self.buffer_pages):
                if page_id + offset >= input_pages:
                    break
                chunk.extend(source.read_page(page_id + offset))
            page_id += self.buffer_pages
            chunk.sort(key=self.key)
            run = PagedFile(page_size=source.page_size, codec=source.codec)
            run.append_records(chunk)
            runs.append(run)

        ios = source.reads + sum(run.writes for run in runs)
        merge_passes = 0

        # Merge passes: (B - 1)-way merges until a single run remains.
        fan_in = max(2, self.buffer_pages - 1)
        while len(runs) > 1:
            merge_passes += 1
            merged: List[PagedFile] = []
            for start in range(0, len(runs), fan_in):
                group = runs[start : start + fan_in]
                merged.append(self._merge(group))
                ios += sum(run.reads for run in group)
                ios += merged[-1].writes
            runs = merged

        result = runs[0] if runs else PagedFile(page_size=source.page_size, codec=source.codec)
        initial_runs = math.ceil(input_pages / self.buffer_pages) if input_pages else 0
        stats = SortStats(
            input_pages=input_pages,
            buffer_pages=self.buffer_pages,
            initial_runs=initial_runs,
            merge_passes=merge_passes,
            page_ios=ios,
        )
        return result, stats

    # ------------------------------------------------------------------
    def _merge(self, runs: List[PagedFile]) -> PagedFile:
        """K-way merge of sorted runs into a new file (page-at-a-time reads)."""
        output = PagedFile(page_size=runs[0].page_size, codec=runs[0].codec)

        # Per-run cursor state: (current records, position, next page id).
        states: List[List[object]] = []
        heap: List[Tuple[object, int, int]] = []
        for run_index, run in enumerate(runs):
            run.reset_counters()
            if run.num_pages == 0:
                states.append([[], 0, 0])
                continue
            records = run.read_page(0)
            states.append([records, 0, 1])
            if records:
                heapq.heappush(heap, (self.key(records[0]), run_index, 0))

        merged: List[Record] = []
        while heap:
            _key, run_index, position = heapq.heappop(heap)
            records, _pos, next_page = states[run_index]
            merged.append(records[position])
            position += 1
            if position >= len(records):
                run = runs[run_index]
                if next_page < run.num_pages:
                    records = run.read_page(next_page)
                    states[run_index] = [records, 0, next_page + 1]
                    if records:
                        heapq.heappush(heap, (self.key(records[0]), run_index, 0))
                continue
            states[run_index][1] = position
            heapq.heappush(heap, (self.key(records[position]), run_index, position))

        output.append_records(merged)
        return output
