"""A disk-backed trace store with a simulated time model (Figure 7.6 substrate).

The store lays out every entity's presence records in pages of a
:class:`~repro.storage.pages.PagedFile`, following the MinSigTree leaf order
so that closely associated entities tend to live in adjacent pages (the
paper's physical layout).  Candidate fetches during query processing go
through an LRU buffer pool sized as a fraction of the raw data; every page
miss is charged a simulated I/O latency and every decoded record a small CPU
cost, so "search time vs memory size" curves are deterministic and
machine-independent while preserving the real experiment's structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.storage.buffer import LRUBufferPool
from repro.storage.pages import PagedFile
from repro.traces.dataset import TraceDataset
from repro.traces.events import CellSequence, PresenceInstance, cells_from_presences

__all__ = ["SimulatedCostModel", "DiskBackedTraceStore"]

Record = Tuple[str, str, int, int]


@dataclass(frozen=True)
class SimulatedCostModel:
    """Costs charged by the store, in simulated milliseconds.

    The defaults model a spinning-disk-backed EBS volume (a few milliseconds
    per random page read) against a sub-microsecond in-memory record decode,
    which is the regime the paper's Figure 7.6 explores.
    """

    #: Cost of reading one page that missed the buffer pool.
    page_read_ms: float = 4.0
    #: Cost of serving one page from the buffer pool.
    page_hit_ms: float = 0.01
    #: Cost of decoding one record and folding it into a cell sequence.
    record_decode_ms: float = 0.001

    def __post_init__(self) -> None:
        if self.page_read_ms < 0 or self.page_hit_ms < 0 or self.record_decode_ms < 0:
            raise ValueError("costs must be non-negative")


class DiskBackedTraceStore:
    """Entity records laid out in leaf order, fetched through a buffer pool.

    Parameters
    ----------
    dataset:
        The in-memory dataset to lay out (records are copied into pages).
    leaf_order:
        Mapping from entity to its position in the MinSigTree leaf layout
        (:meth:`repro.core.minsigtree.MinSigTree.leaf_order`).  Entities not
        present in the mapping are appended at the end in dataset order.
    memory_fraction:
        Fraction of the data pages that fit in the buffer pool (the x-axis of
        Figure 7.6).
    page_size:
        Page capacity in bytes.
    cost_model:
        Simulated cost parameters.
    """

    def __init__(
        self,
        dataset: TraceDataset,
        leaf_order: Optional[Mapping[str, int]] = None,
        memory_fraction: float = 0.5,
        page_size: int = 4096,
        cost_model: Optional[SimulatedCostModel] = None,
    ) -> None:
        if not 0.0 <= memory_fraction <= 1.0:
            raise ValueError(f"memory_fraction must be in [0, 1], got {memory_fraction}")
        self.dataset = dataset
        self.cost_model = cost_model or SimulatedCostModel()
        self.memory_fraction = memory_fraction

        order = dict(leaf_order or {})
        next_position = (max(order.values()) + 1) if order else 0
        for entity in dataset.entities:
            if entity not in order:
                order[entity] = next_position
                next_position += 1
        ordered_entities = sorted(dataset.entities, key=lambda entity: order[entity])

        self._file = PagedFile(page_size=page_size)
        self._entity_pages: Dict[str, List[int]] = {}
        records: List[Record] = []
        boundaries: List[Tuple[str, int, int]] = []  # entity, first record idx, last
        for entity in ordered_entities:
            start_index = len(records)
            for presence in dataset.trace(entity):
                records.append((presence.entity, presence.unit, presence.start, presence.end))
            boundaries.append((entity, start_index, len(records)))
        page_of_record = self._write_records(records)
        for entity, start_index, end_index in boundaries:
            pages = sorted({page_of_record[index] for index in range(start_index, end_index)})
            self._entity_pages[entity] = pages

        capacity = int(round(self._file.num_pages * memory_fraction))
        self._pool: LRUBufferPool[int, List[Record]] = LRUBufferPool(capacity)
        #: Simulated time accumulated by fetches, in milliseconds.
        self.elapsed_ms = 0.0

    # ------------------------------------------------------------------
    def _write_records(self, records: List[Record]) -> List[int]:
        """Pack records into the paged file, returning each record's page id."""
        page_of_record: List[int] = []
        current: List[Record] = []
        current_bytes = 0
        codec = self._file.codec

        def flush() -> None:
            nonlocal current, current_bytes
            if current:
                page_id = self._file.write_page(current)
                page_of_record.extend([page_id] * len(current))
                current = []
                current_bytes = 0

        for record in records:
            size = codec.encoded_size(record)
            if current_bytes + size > self._file.page_size:
                flush()
            current.append(record)
            current_bytes += size
        flush()
        return page_of_record

    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        """Number of data pages in the store."""
        return self._file.num_pages

    @property
    def buffer_capacity(self) -> int:
        """Number of pages the buffer pool can hold."""
        return self._pool.capacity

    @property
    def page_misses(self) -> int:
        """Buffer pool misses since the last reset."""
        return self._pool.misses

    @property
    def page_hits(self) -> int:
        """Buffer pool hits since the last reset."""
        return self._pool.hits

    def pages_of(self, entity: str) -> Tuple[int, ...]:
        """The pages an entity's records live in."""
        return tuple(self._entity_pages.get(entity, ()))

    def reset_counters(self) -> None:
        """Zero the simulated clock and the buffer pool counters."""
        self.elapsed_ms = 0.0
        self._pool.reset_counters()

    def clear_cache(self) -> None:
        """Drop the buffer pool content (cold-cache experiments)."""
        self._pool.clear()

    # ------------------------------------------------------------------
    def fetch_trace(self, entity: str) -> List[PresenceInstance]:
        """Read an entity's presence records through the buffer pool."""
        if entity not in self._entity_pages:
            raise KeyError(f"unknown entity {entity!r}")
        presences: List[PresenceInstance] = []
        for page_id in self._entity_pages[entity]:
            before_misses = self._pool.misses
            page_records = self._pool.get(page_id, self._file.read_page)
            if self._pool.misses > before_misses:
                self.elapsed_ms += self.cost_model.page_read_ms
            else:
                self.elapsed_ms += self.cost_model.page_hit_ms
            for record_entity, unit, start, end in page_records:
                if record_entity == entity:
                    presences.append(PresenceInstance(record_entity, unit, start, end))
                self.elapsed_ms += self.cost_model.record_decode_ms
        return presences

    def fetch_sequence(self, entity: str) -> CellSequence:
        """Fetch an entity and build its ST-cell set sequence (the query hook).

        Pass this method as the ``sequence_fetcher`` of
        :meth:`repro.core.query.TopKSearcher.search` to charge simulated I/O
        for every candidate the search scores.
        """
        presences = self.fetch_trace(entity)
        return cells_from_presences(presences, self.dataset.hierarchy)
