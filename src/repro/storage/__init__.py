"""Storage substrate: pages, buffer pool, external sort, and the trace store.

The paper's cost analysis (Section 4.3) and the memory-size experiment
(Figure 7.6) assume a disk-resident dataset: traces are sorted by entity with
a B-way external merge sort, entity records are laid out in pages following
the MinSigTree leaf order, and queries fetch candidate records through a
bounded buffer pool.  This subpackage provides exactly that machinery, with a
simulated I/O cost model so the experiments are deterministic and
hardware-independent:

* :mod:`~repro.storage.pages` -- fixed-size pages and the record codec;
* :mod:`~repro.storage.buffer` -- an LRU buffer pool with hit/miss accounting;
* :mod:`~repro.storage.external_sort` -- B-way external merge sort over a
  paged file, reporting the pass count and I/O volume of the textbook cost
  formula;
* :mod:`~repro.storage.trace_store` -- the disk-backed trace store used by
  the Figure 7.6 experiment, which charges simulated time per page miss;
* :mod:`~repro.storage.snapshot` -- versioned engine snapshots: the built
  index (hash coefficients, signatures, MinSigTree, dataset) serialized to
  an ``.npz``-based directory so serving processes cold-start without
  re-signing.
"""

from repro.storage.buffer import LRUBufferPool
from repro.storage.external_sort import ExternalSorter, SortStats
from repro.storage.pages import Page, PagedFile, RecordCodec
from repro.storage.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    load_engine_snapshot,
    save_engine_snapshot,
    snapshot_info,
)
from repro.storage.trace_store import DiskBackedTraceStore, SimulatedCostModel

__all__ = [
    "DiskBackedTraceStore",
    "ExternalSorter",
    "LRUBufferPool",
    "Page",
    "PagedFile",
    "RecordCodec",
    "SNAPSHOT_FORMAT_VERSION",
    "SimulatedCostModel",
    "SnapshotError",
    "SortStats",
    "load_engine_snapshot",
    "save_engine_snapshot",
    "snapshot_info",
]
