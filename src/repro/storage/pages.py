"""Fixed-size pages, the record codec, and the in-memory "disk".

Records are encoded as length-prefixed UTF-8/struct blobs and packed into
pages of a fixed capacity.  A :class:`PagedFile` is a list of pages plus
read/write counters -- the simulated disk that the external sorter and the
trace store operate on.  Keeping the "disk" in memory makes the experiments
deterministic and portable while preserving the cost structure (number of
page reads and writes) that the paper's analysis is about.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["RecordCodec", "Page", "PagedFile"]

#: Default page capacity in bytes (4 KiB, the common database page size).
DEFAULT_PAGE_SIZE = 4096


class RecordCodec:
    """Encode and decode presence records as compact binary blobs.

    A record is ``(entity, unit, start, end)``; entity and unit are strings,
    start and end are non-negative integers.  The codec is deliberately
    simple -- two length-prefixed strings and two unsigned 32-bit integers --
    so that page capacity translates directly into a record count.
    """

    _HEADER = struct.Struct("<HHII")

    def encode(self, record: Tuple[str, str, int, int]) -> bytes:
        """Serialise one record."""
        entity, unit, start, end = record
        entity_bytes = entity.encode("utf-8")
        unit_bytes = unit.encode("utf-8")
        if len(entity_bytes) > 0xFFFF or len(unit_bytes) > 0xFFFF:
            raise ValueError("entity or unit identifier too long to encode")
        header = self._HEADER.pack(len(entity_bytes), len(unit_bytes), start, end)
        return header + entity_bytes + unit_bytes

    def decode(self, blob: bytes, offset: int = 0) -> Tuple[Tuple[str, str, int, int], int]:
        """Deserialise one record starting at ``offset``.

        Returns the record and the offset just past it.
        """
        entity_length, unit_length, start, end = self._HEADER.unpack_from(blob, offset)
        cursor = offset + self._HEADER.size
        entity = blob[cursor : cursor + entity_length].decode("utf-8")
        cursor += entity_length
        unit = blob[cursor : cursor + unit_length].decode("utf-8")
        cursor += unit_length
        return (entity, unit, start, end), cursor

    def encoded_size(self, record: Tuple[str, str, int, int]) -> int:
        """Size in bytes the record will occupy in a page."""
        entity, unit, _start, _end = record
        return self._HEADER.size + len(entity.encode("utf-8")) + len(unit.encode("utf-8"))


@dataclass
class Page:
    """A fixed-capacity page of encoded records."""

    page_id: int
    capacity: int = DEFAULT_PAGE_SIZE
    _payload: bytearray = field(default_factory=bytearray)
    _record_count: int = 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently occupied by records."""
        return len(self._payload)

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.capacity - len(self._payload)

    @property
    def record_count(self) -> int:
        """Number of records stored in the page."""
        return self._record_count

    def try_add(self, blob: bytes) -> bool:
        """Append an encoded record if it fits; return whether it did."""
        if len(blob) > self.free_bytes:
            return False
        self._payload.extend(blob)
        self._record_count += 1
        return True

    def records(self, codec: RecordCodec) -> Iterator[Tuple[str, str, int, int]]:
        """Decode every record in the page."""
        offset = 0
        for _ in range(self._record_count):
            record, offset = codec.decode(bytes(self._payload), offset)
            yield record


class PagedFile:
    """A sequence of pages with read/write accounting (the simulated disk)."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, codec: Optional[RecordCodec] = None) -> None:
        if page_size < 64:
            raise ValueError(f"page size must be >= 64 bytes, got {page_size}")
        self.page_size = page_size
        self.codec = codec or RecordCodec()
        self._pages: List[Page] = []
        #: Number of page reads performed through :meth:`read_page`.
        self.reads = 0
        #: Number of page writes performed through :meth:`append_records` / :meth:`write_page`.
        self.writes = 0

    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        """Number of pages currently in the file."""
        return len(self._pages)

    def reset_counters(self) -> None:
        """Zero the read/write counters (between experiment phases)."""
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    def append_records(self, records: Iterable[Tuple[str, str, int, int]]) -> List[int]:
        """Append records, packing them into new pages; returns the page ids used."""
        page: Optional[Page] = None
        used: List[int] = []
        for record in records:
            blob = self.codec.encode(record)
            if len(blob) > self.page_size:
                raise ValueError("record larger than a page")
            if page is None or not page.try_add(blob):
                page = Page(page_id=len(self._pages), capacity=self.page_size)
                page.try_add(blob)
                self._pages.append(page)
                self.writes += 1
                used.append(page.page_id)
        return used

    def write_page(self, records: Sequence[Tuple[str, str, int, int]]) -> int:
        """Write the given records as a single new page (must fit)."""
        page = Page(page_id=len(self._pages), capacity=self.page_size)
        for record in records:
            if not page.try_add(self.codec.encode(record)):
                raise ValueError("records do not fit in a single page")
        self._pages.append(page)
        self.writes += 1
        return page.page_id

    def read_page(self, page_id: int) -> List[Tuple[str, str, int, int]]:
        """Read and decode one page (counted as one I/O)."""
        if not 0 <= page_id < len(self._pages):
            raise IndexError(f"page {page_id} does not exist")
        self.reads += 1
        return list(self._pages[page_id].records(self.codec))

    def iter_records(self) -> Iterator[Tuple[str, str, int, int]]:
        """Scan every record of the file in page order (counts page reads)."""
        for page_id in range(len(self._pages)):
            yield from self.read_page(page_id)

    def records_per_page_estimate(self) -> float:
        """Average number of records per page (diagnostics)."""
        if not self._pages:
            return 0.0
        return sum(page.record_count for page in self._pages) / len(self._pages)
