"""Durable engine snapshots: the index as a servable on-disk artifact.

A snapshot is a directory holding everything a query-ready
:class:`~repro.core.engine.TraceQueryEngine` needs to cold-start **without
re-signing the dataset**:

``manifest.json``
    Format name and version, the engine configuration, the association
    measure (name + parameters), dataset/hash-family metadata, and an index
    fingerprint binding all of it together.
``hierarchy.json``
    The sp-index as an *ordered* ``[unit, parent]`` list.  Order matters:
    the dense per-level unit indexes -- and therefore every hash value --
    depend on insertion order, so the snapshot preserves it exactly
    (unlike the sorted interchange format of :mod:`repro.traces.io`).
``arrays.npz``
    Hash-family coefficients, the presence records as columnar arrays, the
    flattened MinSigTree (nodes + leaf membership), and the per-entity
    signature matrices.
``columnar.npz`` (format version 2, optional)
    The compiled :class:`~repro.core.columnar.ColumnarTree` arrays.  Kept
    in their own file so cold start never parses them: the engine adopts a
    digest-checked *lazy loader* and imports the arrays on the first query
    (or recompiles if the engine mutated in between) -- snapshot load time
    is unchanged from format version 1.

Loading restores the hash coefficients verbatim and rebuilds the tree node
by node, so the restored engine is *bitwise-identical* to the saved one:
same signatures, same group-level routing values (including ones left loose
by removals), same query results, orderings, and pruning statistics.

Versioning / compatibility policy
---------------------------------
``SNAPSHOT_FORMAT_VERSION`` is bumped on any incompatible layout change;
loading a snapshot whose version this build does not know raises
:class:`SnapshotError` (there is no silent migration).  Version 2 added
the *optional* compiled columnar arrays; version-1 snapshots stay loadable
-- and a version-2 snapshot whose columnar arrays are missing or fail
validation still loads -- because the compiled arrays are a pure cache:
the engine recompiles them lazily on the first query, with identical
results.  The manifest also stores an *index
fingerprint* -- a SHA-256 over the semantic engine configuration, the
measure parameters, and the hash-family shape -- plus a content digest of
every payload file; both are recomputed and compared on load, so a
tampered, corrupted, or mixed-up snapshot fails loudly instead of serving
wrong results.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import zipfile
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Union

import numpy as np

from repro.core.engine import EngineConfig, TraceQueryEngine
from repro.core.hashing import HierarchicalHashFamily
from repro.core.minsigtree import MinSigTree
from repro.measures.adm import ExampleDiceADM, HierarchicalADM
from repro.measures.base import AssociationMeasure
from repro.measures.setsim import DiceADM, FScoreADM, JaccardADM, OverlapADM
from repro.traces.dataset import TraceDataset
from repro.traces.events import PresenceInstance
from repro.traces.spatial import SpatialHierarchy

__all__ = [
    "COMPATIBLE_FORMAT_VERSIONS",
    "SHARDED_SNAPSHOT_FORMAT",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "index_fingerprint",
    "load_engine_snapshot",
    "read_manifest",
    "save_engine_snapshot",
    "snapshot_info",
    "snapshot_staging",
]

PathLike = Union[str, Path]

SNAPSHOT_FORMAT = "repro-engine-snapshot"
SHARDED_SNAPSHOT_FORMAT = "repro-sharded-snapshot"
SNAPSHOT_FORMAT_VERSION = 2
#: Older format versions this build still loads (version 1 simply lacks
#: the compiled columnar arrays, which are recompiled lazily).
COMPATIBLE_FORMAT_VERSIONS = (1, 2)

_MANIFEST_NAME = "manifest.json"
_HIERARCHY_NAME = "hierarchy.json"
_ARRAYS_NAME = "arrays.npz"
_COLUMNAR_NAME = "columnar.npz"


class SnapshotError(RuntimeError):
    """A snapshot could not be written, read, or validated."""


def _check_overwrite_target(directory: Path) -> None:
    """Refuse targets that are not ours to replace.

    An existing snapshot may be overwritten; a non-empty directory without a
    *repro* manifest is refused so a typo cannot clobber unrelated files (a
    ``manifest.json`` alone is not proof of ownership -- browser extensions
    and PWAs ship one too, so the file must parse and name our format).
    """
    if not directory.exists():
        return
    if not directory.is_dir():
        raise SnapshotError(f"snapshot path {directory} exists and is not a directory")
    if not any(directory.iterdir()):
        return
    manifest_path = directory / _MANIFEST_NAME
    if not manifest_path.exists():
        raise SnapshotError(
            f"refusing to overwrite non-snapshot directory {directory} "
            f"(no {_MANIFEST_NAME} found)"
        )
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            existing = json.load(handle)
        fmt = existing.get("format") if isinstance(existing, dict) else None
    except (OSError, json.JSONDecodeError):
        fmt = None
    if fmt not in (SNAPSHOT_FORMAT, SHARDED_SNAPSHOT_FORMAT):
        raise SnapshotError(
            f"refusing to overwrite {directory}: its {_MANIFEST_NAME} is not a "
            "repro snapshot manifest"
        )


@contextmanager
def snapshot_staging(path: PathLike) -> Iterator[Path]:
    """Stage a snapshot write, swapping it into place only on success.

    Yields a sibling staging directory to write into.  On normal exit the
    previous snapshot (if any) is replaced wholesale by the staged one; on
    error the staging directory is removed and the previous snapshot is
    left untouched.  This makes saves atomic-enough for a single host: a
    failed or interrupted save never bricks the target, never leaves a
    manifest-less husk that a retry would refuse, and -- because the whole
    directory is replaced -- can never leave stale artifacts from a
    previous format or shard count behind.  Shared by the single-engine and
    sharded save paths so the policy cannot drift between them.
    """
    final = Path(path)
    _check_overwrite_target(final)
    final.parent.mkdir(parents=True, exist_ok=True)
    staging = final.parent / f".{final.name}.saving"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    try:
        yield staging
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    if final.exists():
        shutil.rmtree(final)
    staging.replace(final)


def _file_digest(path: Path) -> str:
    """SHA-256 hex digest of one snapshot payload file."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Measure (de)serialization
# ----------------------------------------------------------------------
def _measure_payload(measure: AssociationMeasure) -> Dict[str, object]:
    """Serializable parameters of a known measure; raises for unknown ones."""
    if isinstance(measure, HierarchicalADM):
        params: Dict[str, object] = {
            "num_levels": measure.num_levels,
            "u": measure.u,
            "v": measure.v,
        }
    elif isinstance(measure, (JaccardADM, DiceADM, OverlapADM, FScoreADM)):
        params = {"num_levels": measure.num_levels, "weights": list(measure.weights)}
    elif isinstance(measure, ExampleDiceADM):
        params = {"weights": list(measure.weights)}
    else:
        raise SnapshotError(
            f"cannot serialize measure {type(measure).__name__!r}; pass the measure "
            "explicitly to load() and save a snapshot with a registered measure"
        )
    return {"name": measure.name, "params": params}


_MEASURE_CLASSES = {
    cls.name: cls
    for cls in (HierarchicalADM, JaccardADM, DiceADM, OverlapADM, FScoreADM, ExampleDiceADM)
}


def _measure_from_payload(payload: Mapping[str, object]) -> AssociationMeasure:
    name = payload.get("name")
    cls = _MEASURE_CLASSES.get(name)  # type: ignore[arg-type]
    if cls is None:
        raise SnapshotError(
            f"snapshot uses unknown measure {name!r}; pass measure=... to load()"
        )
    return cls(**payload.get("params", {}))  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Fingerprint
# ----------------------------------------------------------------------
def index_fingerprint(
    config: EngineConfig,
    measure_payload: Mapping[str, object],
    hash_family_meta: Mapping[str, object],
) -> str:
    """SHA-256 identity of an index: semantic config + measure + hash shape.

    Performance knobs (``bulk_signatures``, ``batch_workers``,
    ``query_cache_size``) are excluded -- they never change results -- so a
    snapshot stays loadable when only those differ.
    """
    payload = {
        "config": config.semantic_fields(),
        "measure": dict(measure_payload),
        "hash_family": dict(hash_family_meta),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------
def save_engine_snapshot(
    engine: TraceQueryEngine,
    path: PathLike,
    extra_meta: Optional[Dict[str, object]] = None,
) -> Path:
    """Write a built engine to a snapshot directory; returns the directory.

    The write is staged and swapped into place atomically on success (see
    :func:`snapshot_staging`): an existing snapshot is overwritten, a
    non-snapshot directory is refused, and a failed save leaves whatever
    was there before untouched.

    ``extra_meta`` (a JSON-serialisable dict) is stored verbatim under the
    manifest's ``"extra"`` key -- opaque to the loader, readable via
    :func:`read_manifest`.  The serving tier stamps its WAL position and
    stream state there so crash recovery knows where replay must resume
    (see :mod:`repro.streaming.wal`).
    """
    if not engine.is_built:
        raise SnapshotError("cannot snapshot an engine before build(); call build() first")
    measure_payload = _measure_payload(engine.measure)
    final = Path(path)
    with snapshot_staging(final) as directory:
        _write_engine_snapshot(engine, directory, measure_payload, extra_meta)
    return final


def _write_engine_snapshot(
    engine: TraceQueryEngine,
    directory: Path,
    measure_payload: Dict[str, object],
    extra_meta: Optional[Dict[str, object]] = None,
) -> None:
    """Write every snapshot artifact of ``engine`` into ``directory``."""
    dataset = engine.dataset
    hierarchy = dataset.hierarchy
    family = engine.hash_family
    tree = engine.tree

    # Hierarchy: ordered [unit, parent] pairs.  Insertion order is
    # topologically sorted (add_unit requires the parent first), so replaying
    # the list reproduces identical per-level unit indexes.
    units = [[unit.unit_id, unit.parent_id] for unit in hierarchy.iter_units()]
    with open(directory / _HIERARCHY_NAME, "w", encoding="utf-8") as handle:
        json.dump({"units": units}, handle)

    # Presence records, columnar, grouped by dataset entity order.
    dataset_entities = list(dataset.entities)
    entity_slot = {entity: slot for slot, entity in enumerate(dataset_entities)}
    presence_entity = []
    presence_unit = []
    presence_start = []
    presence_end = []
    for entity in dataset_entities:
        for presence in dataset.trace(entity):
            presence_entity.append(entity_slot[entity])
            presence_unit.append(hierarchy.base_unit_index(presence.unit))
            presence_start.append(presence.start)
            presence_end.append(presence.end)

    hash_a, hash_b = family.export_coefficients()
    structure = tree.export_structure()

    arrays: Dict[str, np.ndarray] = {
        "hash_a": hash_a,
        "hash_b": hash_b,
        "dataset_entities": np.array(dataset_entities, dtype=np.str_),
        "presence_entity": np.array(presence_entity, dtype=np.int64),
        "presence_unit": np.array(presence_unit, dtype=np.int64),
        "presence_start": np.array(presence_start, dtype=np.int64),
        "presence_end": np.array(presence_end, dtype=np.int64),
        "node_level": structure["node_level"],
        "node_routing_index": structure["node_routing_index"],
        "node_routing_value": structure["node_routing_value"],
        "node_parent": structure["node_parent"],
        "tree_entities": np.array(structure["entities"], dtype=np.str_),
        "entity_leaf": structure["entity_leaf"],
        "signatures": structure["signatures"],
    }
    if "node_full_signatures" in structure:
        arrays["node_full_signatures"] = structure["node_full_signatures"]
    # Uncompressed on purpose: snapshots exist to minimise cold-start
    # latency, and signature matrices are high-entropy anyway.
    np.savez(directory / _ARRAYS_NAME, **arrays)

    # Compiled columnar kernel (format version 2): persisted in its own
    # file so loading never parses it eagerly -- the engine imports it
    # lazily at the first query.  The compile is refreshed here if updates
    # left it stale; with columnar queries disabled nothing is written and
    # a later load recompiles lazily if re-enabled.
    wrote_columnar = False
    if engine.config.columnar_queries:
        compiled = engine.searcher.compiled_tree()
        if compiled is not None:
            np.savez(directory / _COLUMNAR_NAME, **compiled.export_arrays())
            wrote_columnar = True

    hash_family_meta = {
        "horizon": family.horizon,
        "num_hashes": family.num_hashes,
        "seed": family.seed,
        "hash_range": family.hash_range,
        "num_base_units": family.num_base_units,
    }
    manifest = {
        "format": SNAPSHOT_FORMAT,
        "format_version": SNAPSHOT_FORMAT_VERSION,
        # Content digests bind the manifest to these exact payload files, so
        # mixing files from different snapshots fails loudly at load.
        "content": {
            name: _file_digest(directory / name)
            for name in (
                (_HIERARCHY_NAME, _ARRAYS_NAME, _COLUMNAR_NAME)
                if wrote_columnar
                else (_HIERARCHY_NAME, _ARRAYS_NAME)
            )
        },
        "config": {
            "num_hashes": engine.config.num_hashes,
            "seed": engine.config.seed,
            "store_full_signatures": engine.config.store_full_signatures,
            "use_full_signatures": engine.config.use_full_signatures,
            "bound_mode": engine.config.bound_mode,
            "bulk_signatures": engine.config.bulk_signatures,
            "batch_workers": engine.config.batch_workers,
            "query_cache_size": engine.config.query_cache_size,
            "columnar_queries": engine.config.columnar_queries,
        },
        "measure": measure_payload,
        "hash_family": hash_family_meta,
        "dataset": {
            "explicit_horizon": dataset.explicit_horizon,
            "num_entities": dataset.num_entities,
            "num_presences": dataset.num_presences,
            "num_levels": dataset.num_levels,
        },
        "tree": {
            "num_nodes": tree.num_nodes,
            "num_entities": tree.num_entities,
            "routing_strategy": tree.routing_strategy,
        },
        "fingerprint": index_fingerprint(engine.config, measure_payload, hash_family_meta),
    }
    if extra_meta is not None:
        manifest["extra"] = dict(extra_meta)
    with open(directory / _MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------
def read_manifest(path: PathLike) -> Dict[str, object]:
    """Read and format-check a snapshot manifest (no array loading)."""
    directory = Path(path)
    manifest_path = directory / _MANIFEST_NAME
    if not manifest_path.exists():
        raise SnapshotError(f"{directory} is not a snapshot directory (no {_MANIFEST_NAME})")
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"unreadable snapshot manifest {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise SnapshotError(f"snapshot manifest {manifest_path} is not a JSON object")
    fmt = manifest.get("format")
    if fmt not in (SNAPSHOT_FORMAT, SHARDED_SNAPSHOT_FORMAT):
        raise SnapshotError(f"{directory} has unknown snapshot format {fmt!r}")
    version = manifest.get("format_version")
    if version not in COMPATIBLE_FORMAT_VERSIONS:
        raise SnapshotError(
            f"snapshot format version {version!r} is not supported by this build "
            f"(expected one of {COMPATIBLE_FORMAT_VERSIONS}); re-create the "
            "snapshot with `repro index build`"
        )
    return manifest


def load_engine_snapshot(
    path: PathLike,
    measure: Optional[AssociationMeasure] = None,
    mmap_columnar: bool = False,
) -> TraceQueryEngine:
    """Restore a query-ready engine from a snapshot directory.

    No signature is recomputed: the hash coefficients, signature matrices,
    and tree structure come straight from the arrays.  ``measure`` overrides
    the serialized measure (required for measures outside the registry).
    With ``mmap_columnar=True`` the compiled columnar arrays are adopted as
    read-only memory-mapped views (:func:`repro.core.columnar.load_npz_mmap`)
    instead of heap copies, so N processes loading the same snapshot share
    one physical copy through the page cache -- the multi-process serving
    tier's workers load this way.

    Raises
    ------
    SnapshotError
        On a missing/foreign directory, a format-version mismatch, or a
        fingerprint mismatch between the manifest's stored identity and the
        one recomputed from its contents.
    """
    directory = Path(path)
    manifest = read_manifest(directory)
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{directory} holds a {manifest.get('format')!r} snapshot; "
            "load it with ShardedEngine.load()"
        )

    try:
        config = EngineConfig(**manifest["config"])
        measure_payload = manifest["measure"]
        hash_family_meta = manifest["hash_family"]
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"invalid snapshot manifest in {directory}: {exc}") from exc
    expected = index_fingerprint(config, measure_payload, hash_family_meta)
    stored = manifest.get("fingerprint")
    if stored != expected:
        raise SnapshotError(
            f"snapshot fingerprint mismatch in {directory}: manifest says {stored!r} "
            f"but its contents hash to {expected!r}; the snapshot is corrupt or was "
            "edited by hand"
        )
    for name, recorded in manifest.get("content", {}).items():
        if name == _COLUMNAR_NAME:
            # The columnar payload is a pure cache verified lazily by its
            # loader at first query; a missing or corrupted file must drop
            # the cache (recompile), never fail the load.
            continue
        actual = _file_digest(directory / name)
        if actual != recorded:
            raise SnapshotError(
                f"snapshot payload {name} in {directory} does not match the manifest "
                f"digest ({actual} != {recorded}); the file was replaced or corrupted"
            )

    try:
        with open(directory / _HIERARCHY_NAME, encoding="utf-8") as handle:
            hierarchy_doc = json.load(handle)
        hierarchy = SpatialHierarchy()
        for unit_id, parent_id in hierarchy_doc["units"]:
            hierarchy.add_unit(unit_id, parent_id)
        hierarchy.validate()
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(
            f"unreadable snapshot hierarchy in {directory}: {exc}"
        ) from exc

    try:
        with np.load(directory / _ARRAYS_NAME, allow_pickle=False) as arrays:
            data = {key: arrays[key] for key in arrays.files}
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise SnapshotError(f"unreadable snapshot arrays in {directory}: {exc}") from exc
    required = {
        "hash_a", "hash_b", "dataset_entities",
        "presence_entity", "presence_unit", "presence_start", "presence_end",
        "node_level", "node_routing_index", "node_routing_value", "node_parent",
        "tree_entities", "entity_leaf", "signatures",
    }
    missing = sorted(required - set(data))
    if missing:
        raise SnapshotError(f"snapshot arrays in {directory} are missing {missing}")

    # The content digests above vouch for byte-level integrity, but manifest
    # sections like "dataset" and "tree" are plain JSON a hand-edit can
    # still skew -- so the whole reconstruction converts low-level errors
    # into SnapshotError for the CLI's graceful error path.
    try:
        base_units = hierarchy.base_units
        dataset = TraceDataset(hierarchy, horizon=manifest["dataset"]["explicit_horizon"])
        dataset_entities = [str(name) for name in data["dataset_entities"]]
        presence_entity = data["presence_entity"]
        presence_unit = data["presence_unit"]
        presence_start = data["presence_start"]
        presence_end = data["presence_end"]
        # Records were written grouped by entity, so one pass restores each
        # entity's whole trace in original order through the trusted bulk
        # path.
        traces: Dict[str, list] = {entity: [] for entity in dataset_entities}
        for slot in range(presence_entity.shape[0]):
            entity = dataset_entities[int(presence_entity[slot])]
            traces[entity].append(
                PresenceInstance(
                    entity=entity,
                    unit=base_units[int(presence_unit[slot])],
                    start=int(presence_start[slot]),
                    end=int(presence_end[slot]),
                )
            )
        for entity in dataset_entities:
            dataset.restore_trace(entity, traces[entity])

        resolved_measure = (
            measure if measure is not None else _measure_from_payload(measure_payload)
        )

        family = HierarchicalHashFamily(
            hierarchy,
            horizon=int(hash_family_meta["horizon"]),
            num_hashes=int(hash_family_meta["num_hashes"]),
            seed=int(hash_family_meta["seed"]),
        )
        family.restore_coefficients(data["hash_a"], data["hash_b"])
        if family.hash_range != int(hash_family_meta["hash_range"]):
            raise SnapshotError(
                f"restored hash range {family.hash_range} differs from the snapshot's "
                f"{hash_family_meta['hash_range']}; the hierarchy or horizon does not match"
            )

        tree = MinSigTree.import_structure(
            {
                "node_level": data["node_level"],
                "node_routing_index": data["node_routing_index"],
                "node_routing_value": data["node_routing_value"],
                "node_parent": data["node_parent"],
                "entities": [str(name) for name in data["tree_entities"]],
                "entity_leaf": data["entity_leaf"],
                "signatures": data["signatures"],
                "node_full_signatures": data.get("node_full_signatures"),
            },
            num_levels=manifest["dataset"]["num_levels"],
            num_hashes=config.num_hashes,
            store_full_signatures=config.store_full_signatures,
            routing_strategy=manifest["tree"]["routing_strategy"],
        )

        engine = TraceQueryEngine(dataset, measure=resolved_measure, config=config)
        engine._adopt_index(family, tree)
        _install_columnar_loader(engine, directory, manifest, mmap_columnar=mmap_columnar)
    except SnapshotError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise SnapshotError(
            f"snapshot {directory} failed to reconstruct: {exc}; the manifest or "
            "arrays are inconsistent"
        ) from exc
    return engine


def _install_columnar_loader(
    engine: TraceQueryEngine,
    directory: Path,
    manifest: Dict[str, object],
    mmap_columnar: bool = False,
) -> None:
    """Adopt a snapshot's precompiled columnar kernel as a *lazy* loader.

    The payload stays unread at load time (cold start is the whole point of
    a snapshot); the searcher imports it on the first query, after
    re-verifying the manifest digest.  The compiled arrays are a pure cache
    -- results are identical with or without them -- so *any* problem (a
    version-1 snapshot without them, the engine mutating before the first
    query, a missing/tampered/inconsistent file) simply falls back to the
    lazy recompile.  ``mmap_columnar`` prefers zero-copy memory-mapped views
    over heap copies (and itself falls back to a regular load when the
    archive cannot be mapped).
    """
    if not engine.config.columnar_queries:
        return
    recorded_digest = manifest.get("content", {}).get(_COLUMNAR_NAME)
    payload = directory / _COLUMNAR_NAME
    if recorded_digest is None or not payload.exists():
        return
    from repro.core.columnar import ColumnarTree, load_npz_mmap

    tree = engine.tree
    dataset = engine.dataset
    tree_mutation = tree.mutation_count
    dataset_mutation = dataset.mutation_count

    def load_compiled() -> Optional["ColumnarTree"]:
        """Import the persisted arrays iff nothing moved since load."""
        if (
            tree.mutation_count != tree_mutation
            or dataset.mutation_count != dataset_mutation
        ):
            return None
        try:
            if _file_digest(payload) != recorded_digest:
                return None
            data = load_npz_mmap(payload) if mmap_columnar else None
            if data is None:
                with np.load(payload, allow_pickle=False) as arrays:
                    data = {key: arrays[key] for key in arrays.files}
            compiled = ColumnarTree.import_arrays(
                data, num_levels=tree.num_levels, num_hashes=tree.num_hashes
            )
            if (
                compiled.num_entities != tree.num_entities
                or compiled.num_nodes != tree.num_nodes + 1
            ):
                return None
        except (OSError, KeyError, ValueError, zipfile.BadZipFile):
            return None
        compiled.stamp(tree, dataset)
        return compiled

    engine.searcher.adopt_compiled_loader(load_compiled)


def snapshot_info(path: PathLike) -> Dict[str, object]:
    """Manifest summary plus on-disk sizes (what ``repro index info`` prints)."""
    directory = Path(path)
    manifest = read_manifest(directory)
    size_bytes = sum(f.stat().st_size for f in directory.rglob("*") if f.is_file())
    info = dict(manifest)
    info["path"] = str(directory)
    info["size_bytes"] = size_bytes
    return info
