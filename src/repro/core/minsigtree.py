"""The MinSigTree index (Section 4.2.2, Algorithm 1).

The MinSigTree is an ``m``-level tree that recursively partitions entities by
the *routing index* of their per-level signatures -- the position of the
largest hash value -- so that entities sharing presence patterns at every
level of the sp-index end up in the same leaf.  Each node stores:

* its routing index ``u`` (which hash function the group maximises), and
* the group-level signature value at that index, ``SIG_N[u]`` -- the minimum
  of the member entities' values there, which is what the partial-pruned-set
  bound of Section 5.1 needs;
* optionally the full group-level signature vector (``store_full_signatures``)
  to support the tighter, more storage-hungry pruned sets of Section 4.2.2 --
  kept as an ablation knob.

Leaves (at tree level ``m``) own the entity lists.  The index supports
incremental updates (Section 4.2.3): inserting a new entity, removing one,
and re-signing an existing entity after new trace records arrive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["MinSigTree", "MinSigTreeNode"]


@dataclass
class MinSigTreeNode:
    """One node of the MinSigTree.

    ``level`` is the tree level: 0 for the virtual root, 1..m for signature
    levels; nodes at level ``m`` are leaves and carry entities.
    """

    level: int
    routing_index: int = -1
    routing_value: int = 0
    parent: Optional["MinSigTreeNode"] = None
    children: Dict[int, "MinSigTreeNode"] = field(default_factory=dict)
    entities: List[str] = field(default_factory=list)
    full_signature: Optional[np.ndarray] = None

    @property
    def is_root(self) -> bool:
        """Whether this is the virtual root node."""
        return self.level == 0

    @property
    def is_leaf(self) -> bool:
        """Whether this node carries entities (no children will be added)."""
        return not self.children and not self.is_root

    def child(self, routing_index: int) -> Optional["MinSigTreeNode"]:
        """The child with the given routing index, if any."""
        return self.children.get(routing_index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "root" if self.is_root else ("leaf" if not self.children else "node")
        return (
            f"MinSigTreeNode({kind}, level={self.level}, u={self.routing_index}, "
            f"value={self.routing_value}, children={len(self.children)}, "
            f"entities={len(self.entities)})"
        )


class MinSigTree:
    """The MinSigTree index over a set of entity signature matrices.

    Parameters
    ----------
    num_levels:
        Depth ``m`` of the sp-index (and of the tree).
    num_hashes:
        Signature dimensionality ``n_h``; the maximal fan-out of every node.
    store_full_signatures:
        When true every node keeps the full group-level signature vector,
        enabling the (tighter) full pruned sets at ``n_h`` times the per-node
        storage cost.  The paper's default -- and ours -- is to store only the
        routing-index value.
    routing_strategy:
        ``"argmax"`` (the paper's grouping principle: route on the position of
        the largest hash value, which keeps group-level signatures from
        collapsing towards zero) or ``"random"`` (ablation: route on a
        position chosen pseudo-randomly per entity and level).
    """

    def __init__(
        self,
        num_levels: int,
        num_hashes: int,
        store_full_signatures: bool = False,
        routing_strategy: str = "argmax",
    ) -> None:
        if num_levels < 1:
            raise ValueError(f"num_levels must be >= 1, got {num_levels}")
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        if routing_strategy not in ("argmax", "random"):
            raise ValueError(f"unknown routing strategy {routing_strategy!r}")
        self.num_levels = num_levels
        self.num_hashes = num_hashes
        self.store_full_signatures = store_full_signatures
        self.routing_strategy = routing_strategy
        self.root = MinSigTreeNode(level=0)
        self._signatures: Dict[str, np.ndarray] = {}
        self._leaf_of: Dict[str, MinSigTreeNode] = {}
        #: Number of removals (including the removal half of :meth:`update`)
        #: that left a surviving ancestor's group-level signature potentially
        #: looser than the minimum over its remaining members.  Loose values
        #: are still valid lower bounds -- results are never affected -- but
        #: pruning weakens as they accumulate; :meth:`rebuild` re-tightens
        #: and resets the counter.  This is a tightness diagnostic for
        #: operators and tests deciding when an explicit compaction is worth
        #: its cost; the streaming layer's *automatic* trigger
        #: (``compact_after``) counts index-changing retractions itself --
        #: see :class:`repro.streaming.window.SlidingWindow`.
        self.loose_operations: int = 0
        #: Monotone counter bumped by every structural change (insert,
        #: remove, update, rebuild).  The columnar query kernel records the
        #: value its flattened arrays were compiled at and recompiles
        #: lazily when it moved.
        self.mutation_count: int = 0
        # Touch journal: entity -> mutation_count at its last insert/remove.
        # ``touched_entities_since`` answers "what changed since count c" for
        # the columnar kernel's incremental patch; ``_touched_floor`` marks
        # the oldest count the journal still covers (rebuild resets it, so
        # consumers stamped before a rebuild fall back to a full recompile).
        self._touched: Dict[str, int] = {}
        self._touched_floor: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        signatures: Dict[str, np.ndarray],
        num_levels: int,
        num_hashes: int,
        store_full_signatures: bool = False,
        routing_strategy: str = "argmax",
    ) -> "MinSigTree":
        """Build a MinSigTree from per-entity signature matrices (Algorithm 1).

        ``signatures`` maps each entity to its ``(m, n_h)`` signature matrix.
        The construction is equivalent to the paper's breadth-first grouping:
        entities are routed level by level on the arg-max position of the
        corresponding signature row, and each node's group-level signature is
        the element-wise minimum over its members.
        """
        tree = cls(num_levels, num_hashes, store_full_signatures, routing_strategy)
        for entity, matrix in signatures.items():
            tree.insert(entity, matrix)
        return tree

    def _validate_matrix(self, entity: str, matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=np.int64)
        if matrix.shape != (self.num_levels, self.num_hashes):
            raise ValueError(
                f"signature matrix of {entity!r} has shape {matrix.shape}, "
                f"expected {(self.num_levels, self.num_hashes)}"
            )
        return matrix

    def insert(self, entity: str, signature_matrix: np.ndarray) -> MinSigTreeNode:
        """Insert a new entity, creating nodes along its routing path as needed.

        Returns the leaf the entity was placed in.

        Raises
        ------
        ValueError
            If the entity is already indexed (use :meth:`update` instead).
        """
        if entity in self._signatures:
            raise ValueError(f"entity {entity!r} is already indexed; use update()")
        matrix = self._validate_matrix(entity, signature_matrix)
        self.mutation_count += 1
        self._record_touch(entity)
        node = self.root
        for level in range(1, self.num_levels + 1):
            row = matrix[level - 1]
            routing_index = self._route(entity, level, row)
            child = node.children.get(routing_index)
            if child is None:
                child = MinSigTreeNode(
                    level=level,
                    routing_index=routing_index,
                    routing_value=int(row[routing_index]),
                    parent=node,
                    full_signature=row.copy() if self.store_full_signatures else None,
                )
                node.children[routing_index] = child
            else:
                # The group-level signature is the element-wise minimum of all
                # member signatures, so inserting can only lower the stored
                # values (keeping them valid lower bounds).
                child.routing_value = min(child.routing_value, int(row[routing_index]))
                if self.store_full_signatures and child.full_signature is not None:
                    np.minimum(child.full_signature, row, out=child.full_signature)
            node = child
        node.entities.append(entity)
        self._signatures[entity] = matrix
        self._leaf_of[entity] = node
        return node

    def _route(self, entity: str, level: int, row: np.ndarray) -> int:
        """Routing index for one entity and level under the configured strategy."""
        if self.routing_strategy == "argmax":
            return int(np.argmax(row))
        # Random ablation: deterministic pseudo-random position per entity/level.
        return hash((entity, level)) % self.num_hashes

    def remove(self, entity: str) -> None:
        """Remove an entity from the index.

        Empty nodes along the path are pruned.  Group-level signature values
        of the remaining ancestors are *not* re-tightened (they stay valid
        lower bounds); call :meth:`rebuild` to re-tighten after many removals.
        """
        leaf = self._leaf_of.pop(entity, None)
        if leaf is None:
            raise KeyError(f"entity {entity!r} is not indexed")
        self.mutation_count += 1
        self._record_touch(entity)
        del self._signatures[entity]
        leaf.entities.remove(entity)
        node: Optional[MinSigTreeNode] = leaf
        while node is not None and not node.is_root and not node.entities and not node.children:
            parent = node.parent
            if parent is not None:
                del parent.children[node.routing_index]
            node = parent
        if node is not None and not node.is_root:
            # At least one ancestor with other members survives; its stored
            # minimum may now be looser than its remaining members justify.
            self.loose_operations += 1

    def update(self, entity: str, signature_matrix: np.ndarray) -> MinSigTreeNode:
        """Re-index an existing entity with a new signature matrix.

        This is the Section 4.2.3 update path: locate and remove the entity,
        then insert it along the path of its new signatures.  New entities are
        accepted too (the removal step is skipped), matching the experiment of
        Figure 7.9 which mixes new and existing entities.
        """
        if entity in self._signatures:
            self.remove(entity)
        return self.insert(entity, signature_matrix)

    def rebuild(self) -> None:
        """Recompute every node's group-level signature from current members.

        Useful after many removals, when stored values may have become looser
        than necessary (they are never incorrect, only less effective for
        pruning).
        """
        signatures = dict(self._signatures)
        self.root = MinSigTreeNode(level=0)
        self._signatures.clear()
        self._leaf_of.clear()
        self.loose_operations = 0
        for entity, matrix in signatures.items():
            self.insert(entity, matrix)
        # A rebuild touches everything: reset the journal and raise its
        # floor, so kernels compiled before it take the full-recompile
        # (compaction) path instead of patching the whole population.
        self._touched.clear()
        self._touched_floor = self.mutation_count

    def _record_touch(self, entity: str) -> None:
        self._touched[entity] = self.mutation_count
        # Overflow valve: a journal much larger than the population costs
        # more to scan than the fallback it enables saves.  Resetting the
        # floor makes older consumers recompile once, which is always safe.
        if len(self._touched) > max(1024, 4 * len(self._signatures)):
            self._touched.clear()
            self._touched_floor = self.mutation_count

    def touched_entities_since(self, mutation_count: int) -> Optional[set]:
        """Entities inserted or removed after ``mutation_count``.

        Answers from the touch journal; returns ``None`` when the journal
        no longer reaches back that far (the count predates a
        :meth:`rebuild` or an overflow reset), in which case callers must
        treat *every* entity as potentially touched.
        """
        if mutation_count < self._touched_floor:
            return None
        if mutation_count >= self.mutation_count:
            return set()
        return {
            entity
            for entity, touched_at in self._touched.items()
            if touched_at > mutation_count
        }

    # ------------------------------------------------------------------
    # Structure export / import (the snapshot codec)
    # ------------------------------------------------------------------
    def export_structure(self) -> Dict[str, object]:
        """Flatten the tree into plain arrays for serialization.

        Nodes are laid out in DFS order (the virtual root at index 0) as
        parallel arrays; entities are listed in leaf-DFS order with their
        leaf's node index and their signature matrices stacked in the same
        order.  The arrays capture the tree *exactly* -- including routing
        values left loose by :meth:`remove` -- so a tree restored with
        :meth:`import_structure` prunes and traverses identically.
        """
        nodes = list(self.iter_nodes())
        index_of = {id(node): position for position, node in enumerate(nodes)}
        node_level = np.array([node.level for node in nodes], dtype=np.int32)
        node_routing_index = np.array([node.routing_index for node in nodes], dtype=np.int32)
        node_routing_value = np.array([node.routing_value for node in nodes], dtype=np.int64)
        node_parent = np.array(
            [-1 if node.parent is None else index_of[id(node.parent)] for node in nodes],
            dtype=np.int32,
        )
        entities: List[str] = []
        entity_leaf: List[int] = []
        for position, node in enumerate(nodes):
            for entity in node.entities:
                entities.append(entity)
                entity_leaf.append(position)
        if entities:
            signatures = np.stack([self._signatures[entity] for entity in entities])
        else:
            signatures = np.empty((0, self.num_levels, self.num_hashes), dtype=np.int64)
        structure: Dict[str, object] = {
            "node_level": node_level,
            "node_routing_index": node_routing_index,
            "node_routing_value": node_routing_value,
            "node_parent": node_parent,
            "entities": entities,
            "entity_leaf": np.array(entity_leaf, dtype=np.int32),
            "signatures": signatures,
        }
        if self.store_full_signatures:
            full = np.zeros((len(nodes), self.num_hashes), dtype=np.int64)
            for position, node in enumerate(nodes):
                if node.full_signature is not None:
                    full[position] = node.full_signature
            structure["node_full_signatures"] = full
        return structure

    @classmethod
    def import_structure(
        cls,
        structure: Dict[str, object],
        num_levels: int,
        num_hashes: int,
        store_full_signatures: bool = False,
        routing_strategy: str = "argmax",
    ) -> "MinSigTree":
        """Rebuild a tree from :meth:`export_structure` arrays.

        The reconstruction wires nodes directly instead of re-inserting
        entities, so group-level signature values (and hence pruning
        behaviour and query statistics) match the exported tree exactly.
        """
        tree = cls(num_levels, num_hashes, store_full_signatures, routing_strategy)
        node_level = np.asarray(structure["node_level"])
        node_routing_index = np.asarray(structure["node_routing_index"])
        node_routing_value = np.asarray(structure["node_routing_value"])
        node_parent = np.asarray(structure["node_parent"])
        full = structure.get("node_full_signatures")
        if node_level.size == 0 or node_level[0] != 0 or node_parent[0] != -1:
            raise ValueError("malformed tree structure: missing virtual root at index 0")
        nodes: List[MinSigTreeNode] = [tree.root]
        for position in range(1, node_level.size):
            parent_index = int(node_parent[position])
            if not 0 <= parent_index < position:
                raise ValueError(
                    f"malformed tree structure: node {position} has parent {parent_index}"
                )
            parent = nodes[parent_index]
            node = MinSigTreeNode(
                level=int(node_level[position]),
                routing_index=int(node_routing_index[position]),
                routing_value=int(node_routing_value[position]),
                parent=parent,
                full_signature=(
                    np.asarray(full)[position].copy()
                    if store_full_signatures and full is not None
                    else None
                ),
            )
            parent.children[node.routing_index] = node
            nodes.append(node)
        entities = list(structure["entities"])
        entity_leaf = np.asarray(structure["entity_leaf"])
        signatures = np.asarray(structure["signatures"], dtype=np.int64)
        if signatures.shape != (len(entities), num_levels, num_hashes):
            raise ValueError(
                f"signature block has shape {signatures.shape}, expected "
                f"{(len(entities), num_levels, num_hashes)}"
            )
        for slot, entity in enumerate(entities):
            leaf = nodes[int(entity_leaf[slot])]
            leaf.entities.append(entity)
            tree._signatures[entity] = signatures[slot]
            tree._leaf_of[entity] = leaf
        return tree

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_entities(self) -> int:
        """Number of entities currently indexed."""
        return len(self._signatures)

    def __contains__(self, entity: str) -> bool:
        return entity in self._signatures

    def signature_of(self, entity: str) -> np.ndarray:
        """The signature matrix the entity was last indexed with."""
        try:
            return self._signatures[entity]
        except KeyError:
            raise KeyError(f"entity {entity!r} is not indexed") from None

    def leaf_of(self, entity: str) -> MinSigTreeNode:
        """The leaf currently containing ``entity``."""
        try:
            return self._leaf_of[entity]
        except KeyError:
            raise KeyError(f"entity {entity!r} is not indexed") from None

    def iter_nodes(self) -> Iterator[MinSigTreeNode]:
        """Depth-first iteration over all nodes (root first)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            # Sort for determinism of traversal order.
            stack.extend(node.children[key] for key in sorted(node.children, reverse=True))

    def leaves(self) -> List[MinSigTreeNode]:
        """All leaf nodes in depth-first order."""
        return [node for node in self.iter_nodes() if not node.is_root and not node.children]

    def leaf_order(self) -> Dict[str, int]:
        """Position of every entity when leaves are laid out in DFS order.

        This is the physical layout used by the disk-backed store in the
        memory-size experiment (closely associated entities end up adjacent).
        """
        order: Dict[str, int] = {}
        position = 0
        for leaf in self.leaves():
            for entity in leaf.entities:
                order[entity] = position
                position += 1
        return order

    @property
    def num_nodes(self) -> int:
        """Number of nodes excluding the virtual root."""
        return sum(1 for node in self.iter_nodes() if not node.is_root)

    def size_bytes(self) -> int:
        """Approximate index size in bytes.

        Each node stores two integers (routing index and value) plus, for
        leaves, one pointer per entity; with ``store_full_signatures`` every
        node additionally stores ``n_h`` integers.  Mirrors the accounting in
        Figure 7.8(b).
        """
        per_node = 2 * 8
        if self.store_full_signatures:
            per_node += self.num_hashes * 8
        total = 0
        for node in self.iter_nodes():
            if node.is_root:
                continue
            total += per_node
            if not node.children:
                total += 8 * len(node.entities)
        return total

    def depth_histogram(self) -> Dict[int, int]:
        """Number of nodes per tree level (diagnostics and tests)."""
        histogram: Dict[int, int] = {}
        for node in self.iter_nodes():
            if node.is_root:
                continue
            histogram[node.level] = histogram.get(node.level, 0) + 1
        return histogram

    def path_to_leaf(self, entity: str) -> Tuple[MinSigTreeNode, ...]:
        """The root-to-leaf node path of an indexed entity (excluding the root)."""
        leaf = self.leaf_of(entity)
        path: List[MinSigTreeNode] = []
        node: Optional[MinSigTreeNode] = leaf
        while node is not None and not node.is_root:
            path.append(node)
            node = node.parent
        return tuple(reversed(path))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MinSigTree(entities={self.num_entities}, nodes={self.num_nodes}, "
            f"levels={self.num_levels}, num_hashes={self.num_hashes})"
        )
