"""The paper's primary contribution: signatures, the MinSigTree, and top-k search.

Modules
-------
``hashing``
    The hierarchical MinHash family -- ``n_h`` hash functions over base
    ST-cells, extended to coarser cells through the parent constraint
    ``h(t, parent(l)) = min over children h(t, child)`` (Section 4.2.1).
``signatures``
    Per-entity, per-level signature computation (the ``sig_a`` lists).
``minsigtree``
    The MinSigTree index: construction (Algorithm 1), incremental updates,
    and size accounting.
``pruning``
    Pruned sets and partial pruned sets derived from node signatures
    (Theorems 2 and 3, Section 5.1).
``query``
    Best-first top-k search with early termination (Theorem 4, Algorithm 2).
``engine``
    :class:`~repro.core.engine.TraceQueryEngine`, the high-level facade that
    wires a dataset, a measure, the hash family, the index and the searcher
    together.
"""

from repro.core.engine import EngineConfig, TraceQueryEngine
from repro.core.hashing import HierarchicalHashFamily
from repro.core.join import JoinResult, association_graph, mutual_top_k_pairs, top_k_join
from repro.core.minsigtree import MinSigTree, MinSigTreeNode
from repro.core.query import QueryStats, TopKResult, TopKSearcher
from repro.core.signatures import SignatureComputer

__all__ = [
    "EngineConfig",
    "HierarchicalHashFamily",
    "JoinResult",
    "MinSigTree",
    "MinSigTreeNode",
    "QueryStats",
    "SignatureComputer",
    "TopKResult",
    "TopKSearcher",
    "TraceQueryEngine",
    "association_graph",
    "mutual_top_k_pairs",
    "top_k_join",
]
