"""Per-entity signature lists (Section 4.2.1).

An entity's signature at sp-index level ``i`` is the element-wise minimum of
the hash vectors of its level-``i`` ST-cells:

    ``sig_a^i[u] = min over cells s in seq_a^i of h_u(s)``.

Because coarse cells are hashed with the parent constraint, Theorem 1 holds:
``sig_a^i[u] <= sig_a^{i+1}[u]`` for every ``u``.  Signatures are represented
as an ``(m, n_h)`` integer matrix with level 1 in row 0, and the ST-cell
universe size serves as the "positive infinity" initial value for entities
with no presence at some level (this only happens for empty traces).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.hashing import HierarchicalHashFamily
from repro.traces.dataset import TraceDataset
from repro.traces.events import CellSequence

__all__ = ["SignatureComputer"]


class SignatureComputer:
    """Computes the per-level signature matrix of entities.

    Parameters
    ----------
    hash_family:
        The hierarchical MinHash family shared by the whole index.
    """

    def __init__(self, hash_family: HierarchicalHashFamily) -> None:
        self.hash_family = hash_family

    @property
    def num_hashes(self) -> int:
        """Signature dimensionality ``n_h``."""
        return self.hash_family.num_hashes

    @property
    def empty_value(self) -> int:
        """Sentinel used for levels with no presence (acts as ``+inf``)."""
        return self.hash_family.hash_range

    def signature_matrix(self, sequence: CellSequence) -> np.ndarray:
        """Signature list of one entity as an ``(m, n_h)`` matrix.

        Row ``i`` holds ``sig^{i+1}`` (level 1 first).  Levels with no cells
        keep the sentinel :attr:`empty_value` in every position.
        """
        num_levels = sequence.num_levels
        matrix = np.full((num_levels, self.num_hashes), self.empty_value, dtype=np.int64)
        for level_index, cells in enumerate(sequence.levels):
            if not cells:
                continue
            hashes = self.hash_family.hash_matrix(cells)
            matrix[level_index] = hashes.min(axis=0)
        return matrix

    def signatures_for_dataset(
        self,
        dataset: TraceDataset,
        entities: Optional[Iterable[str]] = None,
    ) -> Dict[str, np.ndarray]:
        """Signature matrices for every entity of ``dataset`` (or a subset).

        This is the bulk path used when building the MinSigTree; each entity's
        sequence is fetched (and cached) from the dataset, then hashed.
        """
        selected = dataset.entities if entities is None else tuple(entities)
        return {
            entity: self.signature_matrix(dataset.cell_sequence(entity))
            for entity in selected
        }

    def hash_operations(self, dataset: TraceDataset) -> int:
        """Number of scalar hash evaluations a full re-signing would need.

        Matches the ``|E| * C * m * n_h`` processor-cost term of Section 4.3
        (up to the constant) and is used by the indexing-cost benchmark to
        report a machine-independent work measure.
        """
        total_cells = 0
        for entity in dataset.entities:
            sequence = dataset.cell_sequence(entity)
            total_cells += sum(len(level) for level in sequence.levels)
        return total_cells * self.num_hashes
