"""Per-entity signature lists (Section 4.2.1).

An entity's signature at sp-index level ``i`` is the element-wise minimum of
the hash vectors of its level-``i`` ST-cells:

    ``sig_a^i[u] = min over cells s in seq_a^i of h_u(s)``.

Because coarse cells are hashed with the parent constraint, Theorem 1 holds:
``sig_a^i[u] <= sig_a^{i+1}[u]`` for every ``u``.  Signatures are represented
as an ``(m, n_h)`` integer matrix with level 1 in row 0, and the ST-cell
universe size serves as the "positive infinity" initial value for entities
with no presence at some level (this only happens for empty traces).

Two construction paths produce **bitwise-identical** matrices:

* the **per-entity path** (:meth:`SignatureComputer.signature_matrix`):
  hashes one entity's cells through the family's per-cell cache -- used for
  incremental updates and ad-hoc signing;
* the **bulk path** (:meth:`SignatureComputer.bulk_signature_matrices`):
  collects the unique ST-cells of a whole dataset, hashes them once with the
  vectorised bulk kernel, and reduces per-(entity, level) minima with
  ``np.minimum.reduceat`` -- used when building (or batch-updating) the
  MinSigTree, where it is several times faster because the ``|E| * C * m *
  n_h`` hash evaluations of Section 4.3 collapse into a handful of
  broadcasted numpy calls.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.hashing import HierarchicalHashFamily
from repro.traces.dataset import TraceDataset
from repro.traces.events import CellSequence, STCell

__all__ = ["SignatureComputer"]

# Soft cap on the number of gathered (cell-row, hash-function) elements per
# reduction chunk of the bulk path (same spirit as the hashing kernel's cap).
_BULK_REDUCE_ELEMENTS = 1 << 22


class SignatureComputer:
    """Computes the per-level signature matrix of entities.

    Parameters
    ----------
    hash_family:
        The hierarchical MinHash family shared by the whole index.
    """

    def __init__(self, hash_family: HierarchicalHashFamily) -> None:
        self.hash_family = hash_family

    @property
    def num_hashes(self) -> int:
        """Signature dimensionality ``n_h``."""
        return self.hash_family.num_hashes

    @property
    def empty_value(self) -> int:
        """Sentinel used for levels with no presence (acts as ``+inf``)."""
        return self.hash_family.hash_range

    def signature_matrix(self, sequence: CellSequence) -> np.ndarray:
        """Signature list of one entity as an ``(m, n_h)`` matrix.

        Row ``i`` holds ``sig^{i+1}`` (level 1 first).  Levels with no cells
        keep the sentinel :attr:`empty_value` in every position.
        """
        num_levels = sequence.num_levels
        matrix = np.full((num_levels, self.num_hashes), self.empty_value, dtype=np.int64)
        for level_index, cells in enumerate(sequence.levels):
            if not cells:
                continue
            hashes = self.hash_family.hash_matrix(cells)
            matrix[level_index] = hashes.min(axis=0)
        return matrix

    # ------------------------------------------------------------------
    # Bulk path
    # ------------------------------------------------------------------
    def bulk_signature_matrices(
        self,
        dataset: TraceDataset,
        entities: Optional[Iterable[str]] = None,
    ) -> Dict[str, np.ndarray]:
        """Signature matrices for many entities via the vectorised bulk kernel.

        The unique ST-cells across all selected entities and levels are
        hashed once with :meth:`HierarchicalHashFamily.hash_cells_bulk`
        (amortising popular coarse cells exactly like the per-cell cache
        does), then every (entity, level) minimum is taken in one
        ``np.minimum.reduceat`` sweep over the gathered hash rows.  The
        result is bitwise-identical to calling :meth:`signature_matrix` per
        entity -- the equivalence test-suite pins this.
        """
        selected = dataset.entities if entities is None else tuple(entities)
        if not hasattr(self.hash_family, "hash_cells_bulk"):
            # Duck-typed hash families (e.g. the paper's worked-example
            # table) only need the per-cell interface.
            return self._per_entity_signatures(dataset, selected)
        num_levels = dataset.num_levels
        matrices = {
            entity: np.full((num_levels, self.num_hashes), self.empty_value, dtype=np.int64)
            for entity in selected
        }
        if not selected:
            return matrices

        # 1. Deduplicate cells across entities and levels, remembering for
        #    every non-empty (entity, level) segment which unique cells it
        #    references.
        cell_ids: Dict[STCell, int] = {}
        unique_cells: List[STCell] = []
        segments: List[np.ndarray] = []
        segment_owner: List[Tuple[str, int]] = []
        for entity in selected:
            sequence = dataset.cell_sequence(entity)
            for level_index, cells in enumerate(sequence.levels):
                if not cells:
                    continue
                refs = np.empty(len(cells), dtype=np.int64)
                for slot, cell in enumerate(cells):
                    cell_id = cell_ids.get(cell)
                    if cell_id is None:
                        cell_id = len(unique_cells)
                        cell_ids[cell] = cell_id
                        unique_cells.append(cell)
                    refs[slot] = cell_id
                segments.append(refs)
                segment_owner.append((entity, level_index))
        if not segments:
            return matrices

        # 2. One vectorised hash evaluation over the unique cells.  Hash
        #    values fit in int32 (the range is below the 2^31 modulus), which
        #    halves the memory traffic of the reduction below; the final
        #    matrices are int64, and equality with the per-entity path is
        #    exact because only the dtype, never a value, differs.
        cell_hashes = self.hash_family.hash_cells_bulk(unique_cells, out_dtype=np.int32)

        # 3. Per-segment minima.  Segments are grouped by cell count so each
        #    group reduces with one gather + one SIMD-friendly ``min`` over a
        #    dense (segments, count, n_h) block (ufunc.reduceat's generic
        #    inner loop is several times slower); chunked to bound memory.
        by_length: Dict[int, List[int]] = {}
        for seg_index, refs in enumerate(segments):
            by_length.setdefault(refs.size, []).append(seg_index)
        budget = max(1, _BULK_REDUCE_ELEMENTS // self.num_hashes)
        for length, seg_indexes in by_length.items():
            rows_per_chunk = max(1, budget // length)
            for start in range(0, len(seg_indexes), rows_per_chunk):
                chunk_indexes = seg_indexes[start : start + rows_per_chunk]
                ref_block = np.stack([segments[i] for i in chunk_indexes])
                minima = cell_hashes[ref_block].min(axis=1)
                for row, seg_index in enumerate(chunk_indexes):
                    entity, level_index = segment_owner[seg_index]
                    matrices[entity][level_index] = minima[row]
        return matrices

    def _per_entity_signatures(
        self, dataset: TraceDataset, selected: Iterable[str]
    ) -> Dict[str, np.ndarray]:
        """The per-entity path over a fixed entity selection."""
        return {
            entity: self.signature_matrix(dataset.cell_sequence(entity))
            for entity in selected
        }

    def signatures_for_dataset(
        self,
        dataset: TraceDataset,
        entities: Optional[Iterable[str]] = None,
        method: str = "bulk",
    ) -> Dict[str, np.ndarray]:
        """Signature matrices for every entity of ``dataset`` (or a subset).

        ``method`` selects the construction path: ``"bulk"`` (default, the
        vectorised pipeline used for index builds) or ``"per_entity"`` (the
        cache-backed path used by incremental updates).  Both return
        bitwise-identical matrices.
        """
        if method == "bulk":
            return self.bulk_signature_matrices(dataset, entities)
        if method == "per_entity":
            selected = dataset.entities if entities is None else tuple(entities)
            return self._per_entity_signatures(dataset, selected)
        raise ValueError(f"unknown signature method {method!r}")

    def hash_operations(self, dataset: TraceDataset) -> int:
        """Number of scalar hash evaluations a full re-signing would need.

        Matches the ``|E| * C * m * n_h`` processor-cost term of Section 4.3
        (up to the constant) and is used by the indexing-cost benchmark to
        report a machine-independent work measure.
        """
        total_cells = 0
        for entity in dataset.entities:
            sequence = dataset.cell_sequence(entity)
            total_cells += sum(len(level) for level in sequence.levels)
        return total_cells * self.num_hashes
