"""The columnar query kernel: a flattened MinSigTree plus vectorised search.

The reference search (:meth:`repro.core.query.TopKSearcher.search`) walks the
pointer-based :class:`~repro.core.minsigtree.MinSigTree` one child at a time:
every child costs one ``PruningState.refine`` (fresh per-level numpy masks)
and one Theorem 4 bound evaluation, and every candidate entity costs one
Python-set ``level_overlaps`` pass.  At serving rates that interpreter
overhead -- not the index -- is the bottleneck.

This module compiles the tree (and the dataset's per-level cell membership)
into contiguous arrays once, so the search can:

* refine pruning masks and evaluate the Theorem 4 bound for **every node of
  the tree in one vectorised pass per query**: the query's cells of every
  sp-index level are laid out on one concatenated axis, each node's direct
  pruning row is one gather + compare over the whole tree, cumulative
  root-to-node masks are an OR per tree level (Theorem 3 -- descendant
  pruned sets contain ancestor pruned sets -- is literally a running OR, and
  BFS layout keeps levels contiguous), per-level survivor counts are one
  ``reduceat``, and the measure scores the whole node batch through
  per-level bound tables
  (:meth:`~repro.measures.base.AssociationMeasure.bound_batch_kernel`); and
* score **all candidate entities in one sparse-intersection pass** (lazily,
  on the first leaf visit) over a combined entity×level CSR cell-membership
  matrix, instead of per-entity Python set math per leaf.

The best-first traversal itself then runs over plain Python floats -- the
heap pops/pushes and early-termination checks of Algorithm 2, with zero
array work per node.  Bounds capped along the path (``min(parent, child)``)
and all tie-breaks match the reference walk exactly.

Layout
------
Nodes are laid out breadth-first with the virtual root at index 0; a node's
children occupy the contiguous span ``[child_start[n], child_end[n])`` *in
the same order the reference search iterates them*, so heap tie-breaking --
and therefore results, orderings, and every ``QueryStats`` counter -- is
bit-for-bit identical to the reference path.  Leaf entities occupy spans
``[entity_start[n], entity_end[n])`` of one frozen entity order.  Dataset
cells are interned per level into one combined id space
(``level_cell_offset[l]`` marks each level's id range), and the membership
CSR stores one segment per ``(entity, level)`` pair -- ``member_indptr`` has
``n_entities * m + 1`` offsets -- so a whole leaf's per-level overlap counts
are one gather plus one ``reduceat``.

Invalidation
------------
A compiled tree records the ``mutation_count`` of the tree and dataset it
was built from and is recompiled lazily (on the next search) once either
moved -- streaming flushes, expiries, and compactions therefore invalidate
it automatically without touching the query API.

Incremental maintenance
-----------------------
Recompiling from scratch costs time proportional to the whole dataset, which
caps sustained ingest rates: a micro-batch touching three entities should
not pay for three hundred thousand.  :meth:`ColumnarTree.patch` therefore
rebuilds only what a mutation can change: the tree/node arrays are
re-flattened (cheap pointer walking, no per-cell work), while the expensive
entity×level membership CSR is spliced -- rows of untouched entities are
reused from the stale arrays (translated through a vectorised cell-id
remapping when the interned cell tables shifted) and only the *touched*
entities, reported by the :class:`~repro.core.minsigtree.MinSigTree` and
:class:`~repro.traces.dataset.TraceDataset` touch journals, are recomputed
from their traces.  The patched arrays are byte-identical to a fresh
:meth:`ColumnarTree.compile` -- cell interning is globally sorted per level,
so ids never depend on discovery order -- and a staleness ratio above
``max_staleness`` falls back to the full recompile (the compaction path;
``compact()`` additionally resets the touch journals, forcing it).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.minsigtree import MinSigTree
from repro.core.pruning import QueryHashes
from repro.measures.base import AssociationMeasure
from repro.traces.dataset import TraceDataset
from repro.traces.events import CellSequence, STCell

__all__ = [
    "ColumnarTree",
    "ColumnarQueryContext",
    "ColumnarUnsupportedQuery",
    "load_npz_mmap",
]


def load_npz_mmap(path) -> Optional[Dict[str, np.ndarray]]:
    """Load an uncompressed ``.npz`` archive as read-only memory-mapped views.

    ``np.load(..., mmap_mode="r")`` silently ignores ``mmap_mode`` for
    ``.npz`` archives (it only maps bare ``.npy`` files), so this helper does
    the work itself: for every ZIP member stored without compression
    (``np.savez`` stores, never deflates) it finds the member's data bytes
    through the ZIP local file header, parses the ``.npy`` header, and wraps
    the payload in a ``np.memmap`` view into the archive file.  N processes
    mapping the same snapshot this way share one physical copy of the
    compiled arrays through the OS page cache -- the zero-copy property the
    multi-process serving tier relies on (see docs/SERVING.md).

    Returns ``None`` whenever any member cannot be mapped (a compressed
    member, an object dtype, a malformed or unsupported header): callers
    fall back to a regular ``np.load``.  The views are opened read-only;
    writing through them raises.
    """
    import zipfile

    arrays: Dict[str, np.ndarray] = {}
    try:
        with zipfile.ZipFile(path) as archive:
            members = archive.infolist()
        with open(path, "rb") as handle:
            for info in members:
                if info.compress_type != zipfile.ZIP_STORED:
                    return None
                name = info.filename
                key = name[:-4] if name.endswith(".npy") else name
                # The central directory's extra-field length can differ from
                # the local header's, so the data offset must come from the
                # local header itself.
                handle.seek(info.header_offset)
                local = handle.read(30)
                if len(local) != 30 or local[:4] != b"PK\x03\x04":
                    return None
                name_length = int.from_bytes(local[26:28], "little")
                extra_length = int.from_bytes(local[28:30], "little")
                handle.seek(info.header_offset + 30 + name_length + extra_length)
                version = np.lib.format.read_magic(handle)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
                else:
                    return None
                if dtype.hasobject:
                    return None
                if int(np.prod(shape, dtype=np.int64)) == 0:
                    # mmap cannot express a zero-byte span; an empty array
                    # has no payload to share anyway.
                    arrays[key] = np.zeros(shape, dtype=dtype)
                    continue
                arrays[key] = np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    offset=handle.tell(),
                    shape=shape,
                    order="F" if fortran else "C",
                )
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        return None
    return arrays


class ColumnarUnsupportedQuery(ValueError):
    """A query sequence the columnar kernel cannot evaluate.

    Raised only for hand-built :class:`~repro.traces.events.CellSequence`
    objects that violate the sp-index consistency the engine guarantees
    (e.g. a coarse cell with no base descendant in the query).  The searcher
    catches it and answers through the reference traversal instead.
    """


class ColumnarTree:
    """A MinSigTree (plus dataset cell membership) flattened into arrays.

    Build one with :meth:`compile`; instances are immutable by convention
    and keyed to the exact tree/dataset state they were compiled from (see
    :meth:`matches`).  All arrays are documented in the module docstring.
    """

    def __init__(
        self,
        num_levels: int,
        num_hashes: int,
        node_level: np.ndarray,
        node_parent: np.ndarray,
        node_routing_index: np.ndarray,
        node_routing_value: np.ndarray,
        child_start: np.ndarray,
        child_end: np.ndarray,
        entity_start: np.ndarray,
        entity_end: np.ndarray,
        entity_order: Tuple[str, ...],
        level_cells: List[List[STCell]],
        member_indptr: np.ndarray,
        member_indices: np.ndarray,
        node_full_signatures: Optional[np.ndarray] = None,
    ) -> None:
        self.num_levels = int(num_levels)
        self.num_hashes = int(num_hashes)
        self.node_level = node_level
        self.node_parent = node_parent
        self.node_routing_index = node_routing_index
        self.node_routing_value = node_routing_value
        self.child_start = child_start
        self.child_end = child_end
        self.entity_start = entity_start
        self.entity_end = entity_end
        self.entity_order = entity_order
        self.level_cells = level_cells
        #: Combined-id offset of each level's cell range (length ``m + 1``).
        self.level_cell_offset = np.zeros(self.num_levels + 1, dtype=np.int64)
        np.cumsum([len(cells) for cells in level_cells], out=self.level_cell_offset[1:])
        #: Per-level interning maps from cells to *combined* ids.
        self.level_cell_index: List[Dict[STCell, int]] = [
            {
                cell: int(self.level_cell_offset[level_index]) + position
                for position, cell in enumerate(cells)
            }
            for level_index, cells in enumerate(level_cells)
        ]
        self.member_indptr = member_indptr
        self.member_indices = member_indices
        self.node_full_signatures = node_full_signatures
        #: Span arrays as plain Python lists, converted once per compile so
        #: the traversal loop never touches ndarray scalars.
        self.child_start_list: List[int] = child_start.tolist()
        self.child_end_list: List[int] = child_end.tolist()
        self.entity_start_list: List[int] = entity_start.tolist()
        self.entity_end_list: List[int] = entity_end.tolist()
        #: Per-entity per-level set sizes ``|A_l|`` in the frozen order,
        #: shape ``(n_entities, m)`` -- the diffs of the per-(entity, level)
        #: CSR segments.
        self.entity_level_sizes = np.diff(member_indptr).reshape(
            len(entity_order), self.num_levels
        )
        self._tree_ref: Optional[MinSigTree] = None
        self._tree_mutation = -1
        self._dataset_ref: Optional[TraceDataset] = None
        self._dataset_mutation = -1

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    @staticmethod
    def _flatten_structure(tree: MinSigTree) -> Tuple[List, Dict[str, np.ndarray], List[str]]:
        """BFS-flatten the tree's node structure into parallel arrays.

        Shared by :meth:`compile` and :meth:`patch` so both produce exactly
        the same node layout.  Children are laid out in the order
        ``node.children.values()`` iterates them (the order the reference
        search pushes them), which is what keeps heap tie-breaking
        identical.  Returns the BFS node list, the structure arrays, and
        the frozen leaf-entity order.
        """
        nodes = [tree.root]
        read = 0
        while read < len(nodes):
            nodes.extend(nodes[read].children.values())
            read += 1
        count = len(nodes)
        position_of = {id(node): position for position, node in enumerate(nodes)}

        node_level = np.fromiter((node.level for node in nodes), dtype=np.int32, count=count)
        node_parent = np.fromiter(
            (
                -1 if node.parent is None else position_of[id(node.parent)]
                for node in nodes
            ),
            dtype=np.int64,
            count=count,
        )
        node_routing_index = np.fromiter(
            (node.routing_index for node in nodes), dtype=np.int32, count=count
        )
        node_routing_value = np.fromiter(
            (node.routing_value for node in nodes), dtype=np.int64, count=count
        )
        child_start = np.zeros(count, dtype=np.int64)
        child_end = np.zeros(count, dtype=np.int64)
        entity_start = np.zeros(count, dtype=np.int64)
        entity_end = np.zeros(count, dtype=np.int64)
        entity_order: List[str] = []
        for position, node in enumerate(nodes):
            if node.children:
                children = list(node.children.values())
                child_start[position] = position_of[id(children[0])]
                child_end[position] = child_start[position] + len(children)
            if node.entities:
                entity_start[position] = len(entity_order)
                entity_order.extend(node.entities)
                entity_end[position] = len(entity_order)
        arrays = {
            "node_level": node_level,
            "node_parent": node_parent,
            "node_routing_index": node_routing_index,
            "node_routing_value": node_routing_value,
            "child_start": child_start,
            "child_end": child_end,
            "entity_start": entity_start,
            "entity_end": entity_end,
        }
        return nodes, arrays, entity_order

    @staticmethod
    def _sorted_levels(
        dataset: TraceDataset, entity: str, num_levels: int
    ) -> List[List[STCell]]:
        """The entity's per-level cells in sorted order (one list per level)."""
        sequence = dataset.cell_sequence(entity)
        if sequence.num_levels != num_levels:
            raise ValueError(
                f"entity {entity!r} has a {sequence.num_levels}-level sequence; "
                f"the tree indexes {num_levels} levels"
            )
        return [sorted(cells) for cells in sequence.levels]

    @classmethod
    def compile(cls, tree: MinSigTree, dataset: TraceDataset) -> "ColumnarTree":
        """Flatten ``tree`` and ``dataset`` membership into a columnar kernel.

        Every indexed entity must carry a trace in ``dataset`` -- the engine
        maintains that invariant through every build/update/expiry path.
        Cells are interned per level in globally sorted order, so interned
        ids depend only on the set of cells present -- never on discovery
        order -- which is what lets :meth:`patch` splice updated membership
        rows into stale arrays byte-identically.
        """
        nodes, structure, entity_order = cls._flatten_structure(tree)

        full_signatures: Optional[np.ndarray] = None
        if tree.store_full_signatures:
            full_signatures = np.zeros((len(nodes), tree.num_hashes), dtype=np.int64)
            for position, node in enumerate(nodes):
                if node.full_signature is not None:
                    full_signatures[position] = node.full_signature

        # Pass 1: gather each entity's sorted per-level cells and the
        # distinct-cell universe of every level.
        num_levels = tree.num_levels
        level_cell_sets: List[Set[STCell]] = [set() for _ in range(num_levels)]
        entity_cells: List[List[List[STCell]]] = []
        for entity in entity_order:
            per_level = cls._sorted_levels(dataset, entity, num_levels)
            for level_index, ordered in enumerate(per_level):
                level_cell_sets[level_index].update(ordered)
            entity_cells.append(per_level)
        # Globally sorted interning: ids are the sorted rank of each cell.
        level_cells: List[List[STCell]] = [sorted(cells) for cells in level_cell_sets]
        local_index: List[Dict[STCell, int]] = [
            {cell: slot for slot, cell in enumerate(cells)} for cells in level_cells
        ]

        # Pass 2: membership rows shifted into the combined id space and
        # concatenated into one CSR with a segment per (entity, level).
        offsets = np.zeros(num_levels + 1, dtype=np.int64)
        np.cumsum([len(cells) for cells in level_cells], out=offsets[1:])
        segments: List[np.ndarray] = []
        lengths: List[int] = []
        for per_level in entity_cells:
            for level_index, ordered in enumerate(per_level):
                interned = local_index[level_index]
                offset = int(offsets[level_index])
                row = np.fromiter(
                    (interned[cell] + offset for cell in ordered),
                    dtype=np.int64,
                    count=len(ordered),
                )
                segments.append(row)
                lengths.append(row.size)
        member_indptr = np.zeros(len(entity_order) * num_levels + 1, dtype=np.int64)
        if lengths:
            np.cumsum(lengths, out=member_indptr[1:])
        member_indices = (
            np.concatenate(segments) if segments and member_indptr[-1] else np.empty(0, dtype=np.int64)
        )

        compiled = cls(
            num_levels=num_levels,
            num_hashes=tree.num_hashes,
            entity_order=tuple(entity_order),
            level_cells=level_cells,
            member_indptr=member_indptr,
            member_indices=member_indices,
            node_full_signatures=full_signatures,
            **structure,
        )
        compiled.stamp(tree, dataset)
        return compiled

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def patch(
        self,
        tree: MinSigTree,
        dataset: TraceDataset,
        max_staleness: float = 0.25,
    ) -> Optional["ColumnarTree"]:
        """A fresh compiled tree spliced from these (stale) arrays.

        Consults the tree's and dataset's touch journals for the entities
        mutated since :meth:`stamp`, re-flattens the node structure (cheap:
        pointer walking only), recomputes membership rows for the touched
        entities alone, and splices everything else from the existing
        arrays -- translating cell ids through a vectorised remapping when
        the interned tables shifted.  The result is **byte-identical** to
        ``ColumnarTree.compile(tree, dataset)`` at a cost proportional to
        the delta, not the dataset.

        Returns ``None`` -- the caller falls back to a full recompile --
        when the patch cannot be both cheap and exact:

        * the arrays were stamped against a different tree/dataset object;
        * a journal cannot answer (its floor moved past our stamp, e.g.
          after ``rebuild()``/``compact()`` -- the designated compaction
          path -- or a journal overflow);
        * more than ``max_staleness`` of the population was touched (the
          staleness ratio: beyond it a full recompile is cheaper anyway);
        * full group-level signatures are stored (the ablation path stays
          on the full recompile).
        """
        if self._tree_ref is not tree or self._dataset_ref is not dataset:
            return None
        if self.matches(tree, dataset):
            return self
        if tree.store_full_signatures or self.node_full_signatures is not None:
            return None
        touched_tree = tree.touched_entities_since(self._tree_mutation)
        touched_data = dataset.touched_entities_since(self._dataset_mutation)
        if touched_tree is None or touched_data is None:
            return None
        touched = touched_tree | touched_data
        population = max(len(self.entity_order), 1)
        if len(touched) > max_staleness * population:
            return None

        _nodes, structure, entity_order = self._flatten_structure(tree)
        num_levels = self.num_levels
        old_position = {entity: slot for slot, entity in enumerate(self.entity_order)}
        new_present = set(entity_order)
        # Journal sanity: every appearance/disappearance must be accounted
        # for, otherwise the splice below would silently reuse wrong rows.
        if not (new_present.symmetric_difference(old_position)) <= touched:
            return None

        # Reference counts of every interned cell across current rows:
        # derived (one bincount), never stored, so patched trees carry no
        # extra state and snapshots are unaffected.
        counts = np.bincount(self.member_indices, minlength=self.num_cells)
        indptr = self.member_indptr
        drop_segments = [
            self.member_indices[indptr[old_position[e] * num_levels] : indptr[(old_position[e] + 1) * num_levels]]
            for e in touched
            if e in old_position
        ]
        if drop_segments:
            np.subtract.at(counts, np.concatenate(drop_segments), 1)

        # Fresh rows for the touched entities still present, counting their
        # cells back in; cells absent from the old tables are additions.
        new_rows: Dict[str, List[List[STCell]]] = {}
        extra: List[Dict[STCell, int]] = [defaultdict(int) for _ in range(num_levels)]
        for entity in touched:
            if entity not in new_present:
                continue
            per_level = self._sorted_levels(dataset, entity, num_levels)
            new_rows[entity] = per_level
            for level_index, ordered in enumerate(per_level):
                interned = self.level_cell_index[level_index]
                for cell in ordered:
                    cell_id = interned.get(cell)
                    if cell_id is None:
                        extra[level_index][cell] += 1
                    else:
                        counts[cell_id] += 1
        if (counts < 0).any():
            return None  # journal under-reported: stay exact, recompile

        # New per-level cell tables: survivors (old sorted order, minus the
        # cells whose count hit zero) merged with the sorted additions.
        # ``translate`` maps old combined ids to new ones (-1 = dead cell);
        # ``added_index`` maps each genuinely new cell to its combined id.
        new_level_cells: List[List[STCell]] = []
        translate = np.full(self.num_cells, -1, dtype=np.int64)
        added_index: List[Dict[STCell, int]] = []
        new_offset = 0
        for level_index in range(num_levels):
            old_cells = self.level_cells[level_index]
            base = int(self.level_cell_offset[level_index])
            survivors = counts[base : base + len(old_cells)] > 0
            additions = sorted(extra[level_index])
            added: Dict[STCell, int] = {}
            if not additions and survivors.all():
                merged = old_cells
                translate[base : base + len(old_cells)] = np.arange(
                    new_offset, new_offset + len(old_cells), dtype=np.int64
                )
            else:
                merged = []
                slot = 0
                i = 0
                j = 0
                while i < len(old_cells) or j < len(additions):
                    if i < len(old_cells) and not survivors[i]:
                        i += 1
                        continue
                    if j >= len(additions) or (
                        i < len(old_cells) and old_cells[i] < additions[j]
                    ):
                        merged.append(old_cells[i])
                        translate[base + i] = new_offset + slot
                        i += 1
                    else:
                        merged.append(additions[j])
                        added[additions[j]] = new_offset + slot
                        j += 1
                    slot += 1
            new_level_cells.append(list(merged) if merged is old_cells else merged)
            added_index.append(added)
            new_offset += len(merged)

        # Splice the CSR in the new entity order: untouched entities reuse
        # their old rows (all m level segments are contiguous per entity,
        # so each is one translated slice); touched entities get their
        # freshly computed rows.
        translated = (
            translate[self.member_indices]
            if self.member_indices.size
            else np.empty(0, dtype=np.int64)
        )
        sizes_old = self.entity_level_sizes
        segment_parts: List[np.ndarray] = []
        length_parts: List[np.ndarray] = []
        for entity in entity_order:
            per_level = new_rows.get(entity)
            if per_level is None:
                slot = old_position[entity]
                start = indptr[slot * num_levels]
                stop = indptr[(slot + 1) * num_levels]
                segment_parts.append(translated[start:stop])
                length_parts.append(sizes_old[slot])
            else:
                row_lengths = np.empty(num_levels, dtype=np.int64)
                for level_index, ordered in enumerate(per_level):
                    old_interned = self.level_cell_index[level_index]
                    added = added_index[level_index]
                    row = np.empty(len(ordered), dtype=np.int64)
                    for position, cell in enumerate(ordered):
                        cell_id = old_interned.get(cell)
                        row[position] = (
                            translate[cell_id] if cell_id is not None else added[cell]
                        )
                    segment_parts.append(row)
                    row_lengths[level_index] = len(ordered)
                length_parts.append(row_lengths)
        member_indptr = np.zeros(len(entity_order) * num_levels + 1, dtype=np.int64)
        if length_parts:
            np.cumsum(np.concatenate(length_parts), out=member_indptr[1:])
        member_indices = (
            np.concatenate(segment_parts)
            if segment_parts and member_indptr[-1]
            else np.empty(0, dtype=np.int64)
        )

        patched = type(self)(
            num_levels=num_levels,
            num_hashes=self.num_hashes,
            entity_order=tuple(entity_order),
            level_cells=new_level_cells,
            member_indptr=member_indptr,
            member_indices=member_indices,
            node_full_signatures=None,
            **structure,
        )
        patched.stamp(tree, dataset)
        return patched

    def stamp(self, tree: MinSigTree, dataset: TraceDataset) -> None:
        """Record the tree/dataset state these arrays are valid for."""
        self._tree_ref = tree
        self._tree_mutation = tree.mutation_count
        self._dataset_ref = dataset
        self._dataset_mutation = dataset.mutation_count

    def matches(self, tree: MinSigTree, dataset: TraceDataset) -> bool:
        """Whether the compiled arrays are still valid for this tree/dataset."""
        return (
            self._tree_ref is tree
            and self._tree_mutation == tree.mutation_count
            and self._dataset_ref is dataset
            and self._dataset_mutation == dataset.mutation_count
        )

    @property
    def num_nodes(self) -> int:
        """Number of flattened nodes, including the virtual root."""
        return int(self.node_level.size)

    @property
    def num_entities(self) -> int:
        """Number of entities in the frozen leaf order."""
        return len(self.entity_order)

    @property
    def num_cells(self) -> int:
        """Total interned dataset cells across all levels."""
        return int(self.level_cell_offset[-1])

    # ------------------------------------------------------------------
    # Snapshot codec
    # ------------------------------------------------------------------
    def export_arrays(self) -> Dict[str, np.ndarray]:
        """The compiled arrays as plain ndarrays (the snapshot payload).

        Cell tables are exported per level as parallel ``(time, unit)``
        arrays; :meth:`import_arrays` re-interns them, so a snapshot load
        skips the whole membership recompilation.
        """
        arrays: Dict[str, np.ndarray] = {
            "node_level": self.node_level,
            "node_parent": self.node_parent,
            "node_routing_index": self.node_routing_index,
            "node_routing_value": self.node_routing_value,
            "child_start": self.child_start,
            "child_end": self.child_end,
            "entity_start": self.entity_start,
            "entity_end": self.entity_end,
            "entity_order": np.array(self.entity_order, dtype=np.str_),
            "member_indptr": self.member_indptr,
            "member_indices": self.member_indices,
        }
        if self.node_full_signatures is not None:
            arrays["node_full_signatures"] = self.node_full_signatures
        for level_index in range(self.num_levels):
            cells = self.level_cells[level_index]
            arrays[f"cell_times_{level_index}"] = np.array(
                [cell.time for cell in cells], dtype=np.int64
            )
            arrays[f"cell_units_{level_index}"] = np.array(
                [cell.unit for cell in cells], dtype=np.str_
            )
        return arrays

    @classmethod
    def import_arrays(
        cls, arrays: Dict[str, np.ndarray], num_levels: int, num_hashes: int
    ) -> "ColumnarTree":
        """Rebuild a compiled tree from :meth:`export_arrays` output.

        Performs basic structural validation (root at index 0, spans within
        range, CSR shape consistency) and raises ``ValueError`` / ``KeyError``
        on malformed input; callers fall back to a fresh :meth:`compile`.
        """
        node_level = np.asarray(arrays["node_level"], dtype=np.int32)
        if node_level.size == 0 or node_level[0] != 0:
            raise ValueError("malformed columnar arrays: missing virtual root")
        node_parent = np.asarray(arrays["node_parent"], dtype=np.int64)
        if (
            node_parent.size != node_level.size
            or node_parent[0] != -1
            or (node_parent[1:] < 0).any()
            or (node_parent[1:] >= np.arange(1, node_level.size)).any()
        ):
            raise ValueError("malformed columnar arrays: bad parent links")
        # The bound pass walks levels in BFS-contiguous order and looks
        # parents up in the previous level -- both must hold structurally.
        if (np.diff(node_level) < 0).any() or (
            node_level.size > 1
            and (node_level[1:] != node_level[node_parent[1:]] + 1).any()
        ):
            raise ValueError("malformed columnar arrays: non-BFS level layout")
        entity_order = tuple(str(name) for name in arrays["entity_order"])
        level_cells: List[List[STCell]] = []
        total_cells = 0
        for level_index in range(num_levels):
            times = np.asarray(arrays[f"cell_times_{level_index}"], dtype=np.int64)
            units = arrays[f"cell_units_{level_index}"]
            if times.size != len(units):
                raise ValueError("malformed columnar arrays: cell table mismatch")
            level_cells.append(
                [STCell(int(time), str(unit)) for time, unit in zip(times, units)]
            )
            total_cells += times.size
        member_indptr = np.asarray(arrays["member_indptr"], dtype=np.int64)
        member_indices = np.asarray(arrays["member_indices"], dtype=np.int64)
        if member_indptr.size != len(entity_order) * num_levels + 1:
            raise ValueError("malformed columnar arrays: CSR indptr length mismatch")
        if member_indptr[-1] != member_indices.size or (np.diff(member_indptr) < 0).any():
            raise ValueError("malformed columnar arrays: CSR shape mismatch")
        if member_indices.size and (
            member_indices.min() < 0 or member_indices.max() >= total_cells
        ):
            raise ValueError("malformed columnar arrays: cell id out of range")
        child_start = np.asarray(arrays["child_start"], dtype=np.int64)
        child_end = np.asarray(arrays["child_end"], dtype=np.int64)
        entity_start = np.asarray(arrays["entity_start"], dtype=np.int64)
        entity_end = np.asarray(arrays["entity_end"], dtype=np.int64)
        count = node_level.size
        for span_start, span_end, limit in (
            (child_start, child_end, count),
            (entity_start, entity_end, len(entity_order)),
        ):
            if span_start.size != count or span_end.size != count:
                raise ValueError("malformed columnar arrays: span length mismatch")
            if ((span_start < 0) | (span_end < span_start) | (span_end > limit)).any():
                raise ValueError("malformed columnar arrays: span out of range")
        full = arrays.get("node_full_signatures")
        return cls(
            num_levels=num_levels,
            num_hashes=num_hashes,
            node_level=node_level,
            node_parent=node_parent,
            node_routing_index=np.asarray(arrays["node_routing_index"], dtype=np.int32),
            node_routing_value=np.asarray(arrays["node_routing_value"], dtype=np.int64),
            child_start=child_start,
            child_end=child_end,
            entity_start=entity_start,
            entity_end=entity_end,
            entity_order=entity_order,
            level_cells=level_cells,
            member_indptr=member_indptr,
            member_indices=member_indices,
            node_full_signatures=None if full is None else np.asarray(full, dtype=np.int64),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnarTree(nodes={self.num_nodes}, entities={self.num_entities}, "
            f"levels={self.num_levels}, num_hashes={self.num_hashes})"
        )


class ColumnarQueryContext:
    """Per-query state of one columnar search.

    Construction runs the whole vectorised bound pass: every node's direct
    pruning row, the cumulative root-to-node masks (one OR per tree level),
    per-level survivor counts, and the Theorem 4 upper bound of **every
    tree node** -- available afterwards as :attr:`node_bounds`.  Candidate
    scores are computed the same way, for all entities at once, lazily on
    the first leaf visit (:meth:`entity_scores`).  The traversal then needs
    no array work at all: it pops and pushes plain Python floats.

    Raises :class:`ColumnarUnsupportedQuery` for hand-built query sequences
    that violate sp-index consistency; the searcher falls back to the
    reference traversal for those.
    """

    def __init__(
        self,
        compiled: ColumnarTree,
        query: QueryHashes,
        query_sequence: CellSequence,
        measure: AssociationMeasure,
        bound_mode: str,
        use_full_signatures: bool,
    ) -> None:
        self.compiled = compiled
        self.query = query
        self.measure = measure
        self.bound_mode = bound_mode
        self.use_full_signatures = bool(
            use_full_signatures and compiled.node_full_signatures is not None
        )
        num_levels = compiled.num_levels
        sizes = [len(level) for level in query.cells]
        self.query_sizes = np.asarray(sizes, dtype=np.int64)
        self.query_empty = query_sequence.is_empty()
        #: Concatenated-axis offset of each level's query cells (length m+1).
        self.level_offsets = np.zeros(num_levels + 1, dtype=np.int64)
        np.cumsum(sizes, out=self.level_offsets[1:])
        self.total_cells = int(self.level_offsets[-1])
        if self.total_cells and min(sizes) == 0:
            # Engine-built sequences are all-or-nothing: a non-empty base
            # set implies non-empty sets at every coarser level.
            raise ColumnarUnsupportedQuery(
                "query sequence has an empty level alongside non-empty ones"
            )
        #: (total_q, n_h) hash matrix over the concatenated query cells.
        self.matrix = (
            np.concatenate(query.matrices, axis=0)
            if self.total_cells
            else np.empty((0, query.matrices[0].shape[1] if query.matrices else 0), dtype=np.int64)
        )
        # Theorem 4 bound scores only depend on per-level survivor counts at
        # fixed query sizes; the measure turns that into lookup tables once
        # per query (see AssociationMeasure.bound_batch_kernel).
        self._bound_kernel = measure.bound_batch_kernel(self.query_sizes)

        # Lifting plan: group the query's base-cell positions by their
        # ancestor at every coarse level, all on one concatenated axis, so
        # coarse reachability is a single reduceat.  Every coarse query cell
        # has at least one base descendant by construction (coarse sets are
        # derived bottom-up from the base set).
        self._lift_perm: Optional[np.ndarray] = None
        self._lift_starts: Optional[np.ndarray] = None
        if bound_mode == "lift" and num_levels > 1 and self.total_cells:
            n_base = sizes[num_levels - 1]
            perms: List[np.ndarray] = []
            starts: List[np.ndarray] = []
            for level_index in range(num_levels - 1):
                owner = query.owners[level_index]
                counts = np.bincount(owner, minlength=sizes[level_index])
                if counts.size != sizes[level_index] or (counts == 0).any():
                    raise ColumnarUnsupportedQuery(
                        "a coarse query cell has no base descendant in the query"
                    )
                # perm entries index base columns; the reduceat starts are
                # offset into the concatenated (per-level) gathered axis.
                perms.append(np.argsort(owner, kind="stable"))
                level_starts = np.zeros(sizes[level_index], dtype=np.int64)
                np.cumsum(counts[:-1], out=level_starts[1:])
                starts.append(level_starts + level_index * n_base)
            self._lift_perm = np.concatenate(perms)
            self._lift_starts = np.concatenate(starts)

        self._query_sequence = query_sequence
        self._entity_scores: Optional[List[float]] = None
        #: Theorem 4 upper bound of every node (plain Python floats, indexed
        #: by node id) -- ``min`` with the running path bound happens in the
        #: traversal loop, exactly like the reference walk.
        self.node_bounds: List[float] = self._compute_node_bounds()

    # ------------------------------------------------------------------
    def _compute_node_bounds(self) -> List[float]:
        """Theorem 4 bounds for every tree node in one vectorised pass.

        Computes each node's direct pruning row (Theorem 2 on its routing
        value -- or its full signature under the ablation), accumulates them
        into cumulative root-to-node masks (Theorem 3 is a running OR), then
        counts per-level survivors, lifts them under the Theorem 4 bound
        mode, and scores each node batch through the measure's bound
        tables.  Every value is bit-identical to the reference path's
        ``upper_bound(state, ...)`` for the same node.

        The pass walks the tree one level at a time (the BFS layout keeps
        levels contiguous, and a node's parent sits in the previous level),
        so the transient mask footprint is bounded by the two widest
        adjacent levels -- not the whole tree -- however large the index.
        """
        compiled = self.compiled
        num_nodes = compiled.num_nodes
        num_levels = compiled.num_levels
        if self.total_cells == 0:
            return [0.0] * num_nodes
        if not self.use_full_signatures:
            matrix_t = np.ascontiguousarray(self.matrix.T)

        bounds = np.zeros(num_nodes, dtype=np.float64)
        node_level = compiled.node_level
        boundaries = np.searchsorted(node_level, np.arange(num_levels + 2))
        # The virtual root constrains nothing (its bound slot is unused:
        # the traversal pushes the root with the fixed bound 1.0).
        previous_masks = np.zeros((1, self.total_cells), dtype=bool)
        previous_start = 0
        for level in range(1, num_levels + 1):
            start, stop = int(boundaries[level]), int(boundaries[level + 1])
            if start >= stop:
                break  # levels are contiguous: nothing deeper exists either
            # Direct pruning rows of this level: one gather + compare.
            if self.use_full_signatures:
                masks = np.empty((stop - start, self.total_cells), dtype=bool)
                chunk = max(
                    1, (1 << 24) // max(1, self.total_cells * compiled.num_hashes)
                )
                for chunk_start in range(start, stop, chunk):
                    chunk_stop = min(stop, chunk_start + chunk)
                    masks[chunk_start - start : chunk_stop - start] = (
                        self.matrix[None, :, :]
                        < compiled.node_full_signatures[chunk_start:chunk_stop, None, :]
                    ).any(axis=2)
            else:
                masks = matrix_t[compiled.node_routing_index[start:stop]] < (
                    compiled.node_routing_value[start:stop, None]
                )
            if level > 1:
                # A node at tree level i only constrains sp-index levels
                # >= i; coarser cells inherit the ancestors' masks alone.
                masks[:, : self.level_offsets[level - 1]] = False
            # Theorem 3: accumulate the parents' cumulative masks.
            masks |= previous_masks[compiled.node_parent[start:stop] - previous_start]

            if self.bound_mode == "lift":
                base_offset = int(self.level_offsets[num_levels - 1])
                base_surviving = ~masks[:, base_offset:]
                survivors = np.empty((stop - start, num_levels), dtype=np.int64)
                survivors[:, num_levels - 1] = base_surviving.sum(axis=1)
                if num_levels > 1:
                    # A coarse cell survives iff it is not directly pruned
                    # and at least one of its base descendants survives
                    # (Theorem 4's lift of the artificial entity).
                    grouped = base_surviving[:, self._lift_perm]
                    reachable = np.logical_or.reduceat(
                        grouped, self._lift_starts, axis=1
                    )
                    surviving_coarse = reachable & ~masks[:, :base_offset]
                    survivors[:, : num_levels - 1] = np.add.reduceat(
                        surviving_coarse, self.level_offsets[: num_levels - 1], axis=1
                    )
            else:
                survivors = np.add.reduceat(~masks, self.level_offsets[:-1], axis=1)

            raw = self._bound_kernel(survivors)
            level_bounds = np.minimum(np.maximum(raw, 0.0), 1.0)
            # All-surviving-zero nodes bound to exactly 0.0 without
            # consulting the measure, as in the reference upper_bound().
            level_bounds[~survivors.any(axis=1)] = 0.0
            bounds[start:stop] = level_bounds
            previous_masks = masks
            previous_start = start
        return bounds.tolist()

    # ------------------------------------------------------------------
    def entity_scores(self) -> List[float]:
        """Exact association degrees of *every* indexed entity, vectorised.

        Computed lazily on the first leaf visit: one membership-lookup
        gather over the combined CSR, one ``reduceat`` for the
        per-(entity, level) overlap counts, and one batched measure
        evaluation -- bit-identical per entity to
        ``measure.score(dataset.cell_sequence(entity), query_sequence)``
        (including the empty-sequence guard and the [0, 1] clamp).  Indexed
        by the compiled frozen entity order.
        """
        if self._entity_scores is not None:
            return self._entity_scores
        compiled = self.compiled
        n_entities = compiled.num_entities
        num_levels = compiled.num_levels
        if n_entities == 0 or self.query_empty:
            self._entity_scores = [0.0] * n_entities
            return self._entity_scores

        # Membership lookup over the combined cell-id space, true at the
        # query's cells.
        lookup = np.zeros(compiled.num_cells, dtype=bool)
        for level_index in range(num_levels):
            interned = compiled.level_cell_index[level_index]
            if not interned:
                continue
            for cell in self._query_sequence.levels[level_index]:
                cell_id = interned.get(cell)
                if cell_id is not None:
                    lookup[cell_id] = True

        sizes_a = compiled.entity_level_sizes
        indptr = compiled.member_indptr
        if compiled.member_indices.size:
            # Trailing sentinel keeps reduceat in-bounds for empty trailing
            # segments; empty segments are zeroed via the size mask below.
            hits = np.zeros(compiled.member_indices.size + 1, dtype=np.int64)
            hits[:-1] = lookup[compiled.member_indices]
            shared = np.add.reduceat(hits, indptr[:-1]).reshape(n_entities, num_levels)
            shared[sizes_a == 0] = 0
        else:
            shared = np.zeros((n_entities, num_levels), dtype=np.int64)
        sizes_b = np.broadcast_to(self.query_sizes, (n_entities, num_levels))
        raw = self.measure.score_levels_batch(sizes_a, sizes_b, shared)
        scores = np.minimum(np.maximum(raw, 0.0), 1.0)
        scores[sizes_a[:, num_levels - 1] == 0] = 0.0
        self._entity_scores = scores.tolist()
        return self._entity_scores
