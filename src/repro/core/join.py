"""Batch queries and similarity joins over digital traces.

The paper lists kNN-join style workloads as a natural follow-up to single
top-k queries (Section 8.2): issuing the top-k query for *every* entity of a
set and combining the answers.  This module provides that layer on top of an
existing :class:`~repro.core.query.TopKSearcher` / engine:

* :func:`top_k_join` -- the top-k associates of every entity in a probe set
  (a kNN join of the probe set against the indexed population);
* :func:`mutual_top_k_pairs` -- pairs of entities that appear in each other's
  top-k, the "strong ties" used by the marketing example to stitch cohorts;
* :func:`association_graph` -- an adjacency representation of every
  association above a threshold discovered by a join, ready to feed graph
  tooling (connected components, clustering, networkx, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.query import TopKResult

__all__ = ["JoinResult", "top_k_join", "mutual_top_k_pairs", "association_graph"]

Searcher = Callable[..., TopKResult]


@dataclass
class JoinResult:
    """The outcome of a top-k join."""

    #: Per-probe-entity top-k results.
    results: Dict[str, TopKResult] = field(default_factory=dict)
    #: Result size each probe asked for.
    k: int = 0

    @property
    def probe_entities(self) -> List[str]:
        """The probe entities, in join order."""
        return list(self.results)

    @property
    def total_entities_scored(self) -> int:
        """Total exact-scoring work across all probes."""
        return sum(result.stats.entities_scored for result in self.results.values())

    def pairs(self, min_degree: float = 0.0) -> List[Tuple[str, str, float]]:
        """All ``(probe, associate, degree)`` triples above ``min_degree``."""
        found: List[Tuple[str, str, float]] = []
        for probe, result in self.results.items():
            for entity, degree in result:
                if degree >= min_degree:
                    found.append((probe, entity, degree))
        return found

    def __len__(self) -> int:
        return len(self.results)


def top_k_join(
    search: Searcher,
    probe_entities: Sequence[str],
    k: int,
    approximation: float = 0.0,
) -> JoinResult:
    """Run one top-k query per probe entity (a kNN join against the index).

    Parameters
    ----------
    search:
        Any ``(entity, k, ...) -> TopKResult`` callable -- typically
        ``engine.searcher.search`` or ``engine.top_k``; the brute-force
        baseline works as well.
    probe_entities:
        Entities to probe with (duplicates are collapsed, order preserved).
    k:
        Result size per probe.
    approximation:
        Additive slack forwarded to searchers that support approximate
        queries; ignored for searchers that do not accept it.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    join = JoinResult(k=k)
    seen: Set[str] = set()
    for probe in probe_entities:
        if probe in seen:
            continue
        seen.add(probe)
        try:
            result = search(probe, k, approximation=approximation)
        except TypeError:
            result = search(probe, k)
        join.results[probe] = result
    return join


def mutual_top_k_pairs(
    search: Searcher,
    entities: Sequence[str],
    k: int = 5,
    min_degree: float = 0.0,
) -> List[Tuple[str, str, float]]:
    """Pairs of entities that rank in each other's top-k.

    The returned degree is the minimum of the two directed degrees (they are
    equal for symmetric measures).  Pairs are reported once with the two
    entities in lexicographic order, sorted by decreasing degree.
    """
    join = top_k_join(search, entities, k)
    probe_set = set(join.results)
    directed: Dict[Tuple[str, str], float] = {}
    for probe, result in join.results.items():
        for entity, degree in result:
            directed[(probe, entity)] = degree

    pairs: Dict[Tuple[str, str], float] = {}
    for (probe, entity), degree in directed.items():
        if entity not in probe_set:
            continue
        reverse = directed.get((entity, probe))
        if reverse is None:
            continue
        key = (probe, entity) if probe < entity else (entity, probe)
        strength = min(degree, reverse)
        if strength >= min_degree:
            pairs[key] = max(pairs.get(key, 0.0), strength)
    return sorted(
        [(left, right, degree) for (left, right), degree in pairs.items()],
        key=lambda item: (-item[2], item[0], item[1]),
    )


def association_graph(
    search: Searcher,
    entities: Sequence[str],
    k: int = 5,
    min_degree: float = 0.0,
) -> Dict[str, Dict[str, float]]:
    """An undirected weighted adjacency mapping of discovered associations.

    Every probe's top-k associates above ``min_degree`` contribute an edge;
    the edge weight is the association degree (the maximum of the two
    directions when both were probed).
    """
    join = top_k_join(search, entities, k)
    graph: Dict[str, Dict[str, float]] = {}
    for probe, associate, degree in join.pairs(min_degree=min_degree):
        graph.setdefault(probe, {})
        graph.setdefault(associate, {})
        existing = graph[probe].get(associate, 0.0)
        weight = max(existing, degree)
        graph[probe][associate] = weight
        graph[associate][probe] = weight
    return graph
