"""Pruned sets, partial pruned sets, and upper bounds (Sections 4.2.2 and 5.1).

Theorem 2 states that an entity whose level-``i`` signature has
``sig^i[u] > h_u(s)`` for some hash function ``u`` cannot be present in the
ST-cell ``s``.  Applied to a MinSigTree node's group-level signature, this
yields a set of query cells that *no* entity below the node can share with
the query -- the node's pruned set.  Removing those cells from the query and
scoring the query against the remainder (the *artificial entity* of
Theorem 4) gives an upper bound on the association degree of every entity in
the subtree.

The search keeps, per sp-index level, a boolean mask over the query's cells
at that level marking which cells have been pruned so far along the current
root-to-node path.  Theorem 3 (descendant pruned sets contain ancestor pruned
sets) is realised simply by OR-ing masks as the search descends.

Two pruning modes are supported:

* **partial** (the paper's default, Section 5.1): only the routing-index
  value of the node signature is used -- one comparison per query cell;
* **full** (ablation): the complete group-level signature is used, pruning a
  cell as soon as *any* hash position witnesses its absence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.hashing import HierarchicalHashFamily
from repro.core.minsigtree import MinSigTreeNode
from repro.measures.base import AssociationMeasure
from repro.traces.events import CellSequence, STCell

__all__ = ["QueryHashes", "PruningState", "upper_bound"]


@dataclass(frozen=True)
class QueryHashes:
    """Pre-hashed representation of the query entity's ST-cell set sequence.

    ``cells[l]`` lists the query's level-``l+1`` cells and ``matrices[l]`` is
    the corresponding ``(n_cells, n_h)`` hash matrix.  ``descendants[l]``
    maps each coarse cell (by position) to the positions of the query's
    *base* cells that descend from it, which the "lift" bound mode uses to
    rebuild the artificial entity's coarse sets from its surviving base
    cells.  All of it is computed once per query and shared by every bound
    evaluation.
    """

    cells: Tuple[Tuple[STCell, ...], ...]
    matrices: Tuple[np.ndarray, ...]
    #: For every level, an array of length ``|Q_m|`` giving, for each base
    #: query cell, the position of its ancestor cell within that level's list.
    owners: Tuple[np.ndarray, ...]

    @classmethod
    def from_sequence(
        cls,
        sequence: CellSequence,
        hash_family: HierarchicalHashFamily,
    ) -> "QueryHashes":
        """Hash every cell of the query sequence at every level."""
        hierarchy = hash_family.hierarchy
        num_levels = sequence.num_levels
        cells: List[Tuple[STCell, ...]] = []
        matrices: List[np.ndarray] = []
        for level_cells in sequence.levels:
            ordered = tuple(sorted(level_cells))
            cells.append(ordered)
            matrices.append(hash_family.hash_matrix(ordered))

        # Map every base query cell to the position of its ancestor cell at
        # each level (the "lift" bound rebuilds coarse sets from this).
        base_cells = cells[-1]
        owners: List[np.ndarray] = []
        for level_index in range(num_levels):
            level = level_index + 1
            positions = {cell: position for position, cell in enumerate(cells[level_index])}
            owner = np.empty(len(base_cells), dtype=np.intp)
            for base_index, base_cell in enumerate(base_cells):
                if level == num_levels:
                    owner[base_index] = base_index
                else:
                    ancestor_unit = hierarchy.ancestor_at_level(base_cell.unit, level)
                    owner[base_index] = positions[STCell(base_cell.time, ancestor_unit)]
            owners.append(owner)
        return cls(cells=tuple(cells), matrices=tuple(matrices), owners=tuple(owners))

    @property
    def num_levels(self) -> int:
        """Depth ``m`` of the underlying sp-index."""
        return len(self.cells)

    def level_sizes(self) -> Tuple[int, ...]:
        """Number of query cells per level (``|Q_l|``)."""
        return tuple(len(level) for level in self.cells)


@dataclass(frozen=True)
class PruningState:
    """Per-level masks over the query's cells pruned along a search path.

    Immutable: :meth:`refine` returns a new state, so sibling branches of the
    search share their ancestors' masks without interference.
    """

    masks: Tuple[np.ndarray, ...]

    @classmethod
    def initial(cls, query: QueryHashes) -> "PruningState":
        """The empty state at the MinSigTree root (nothing pruned yet)."""
        return cls(masks=tuple(np.zeros(len(level), dtype=bool) for level in query.cells))

    def refine(
        self,
        node: MinSigTreeNode,
        query: QueryHashes,
        use_full_signature: bool = False,
    ) -> "PruningState":
        """Apply a node's signature constraint on top of the current state.

        A node at tree level ``i`` constrains the query's cells at every
        sp-index level ``l >= i`` (its signature is a lower bound of the
        members' level-``l`` signatures by Theorem 1): a cell whose hash at
        the witnessing position is *below* the stored signature value cannot
        be shared by any member entity (Theorem 2).
        """
        if node.is_root:
            return self
        new_masks: List[np.ndarray] = []
        for level_index, (mask, matrix) in enumerate(zip(self.masks, query.matrices)):
            level = level_index + 1
            if level < node.level or matrix.shape[0] == 0:
                new_masks.append(mask)
                continue
            if use_full_signature and node.full_signature is not None:
                pruned_here = (matrix < node.full_signature[None, :]).any(axis=1)
            else:
                pruned_here = matrix[:, node.routing_index] < node.routing_value
            new_masks.append(mask | pruned_here)
        return PruningState(masks=tuple(new_masks))

    def surviving_counts(self) -> Tuple[int, ...]:
        """Number of query cells per level *not* pruned yet (``|V_l|``)."""
        return tuple(int((~mask).sum()) for mask in self.masks)

    def pruned_counts(self) -> Tuple[int, ...]:
        """Number of query cells per level pruned so far."""
        return tuple(int(mask.sum()) for mask in self.masks)

    def lifted_surviving_counts(self, query: QueryHashes) -> Tuple[int, ...]:
        """Per-level sizes of the artificial entity built by *lifting* survivors.

        This is the literal Theorem 4 construction: the artificial entity's
        base cell set is the query's base cells minus the pruned set, and its
        coarser sets are derived from that base set through the sp-index (a
        coarse cell survives only if at least one of its base descendants
        survives).  Direct coarse-level prunings recorded in the state are
        applied on top.
        """
        base_surviving = ~self.masks[-1]
        counts: List[int] = []
        for level_index, (mask, owner) in enumerate(zip(self.masks, query.owners)):
            if level_index == len(self.masks) - 1:
                counts.append(int(base_surviving.sum()))
                continue
            if mask.size == 0:
                counts.append(0)
                continue
            # A coarse cell survives if it is not directly pruned and at least
            # one of its base descendants survives.
            reachable = np.zeros(mask.size, dtype=bool)
            if base_surviving.any():
                reachable[np.unique(owner[base_surviving])] = True
            counts.append(int((reachable & ~mask).sum()))
        return tuple(counts)

    def surviving_base_cells(self, query: QueryHashes) -> Tuple[STCell, ...]:
        """The query's base cells that survive pruning (the artificial entity)."""
        mask = self.masks[-1]
        return tuple(cell for cell, pruned in zip(query.cells[-1], mask) if not pruned)


def upper_bound(
    state: PruningState,
    query: QueryHashes,
    measure: AssociationMeasure,
    mode: str = "lift",
) -> float:
    """Theorem 4 upper bound for a node given its accumulated pruning state.

    Two bound modes are supported:

    * ``"lift"`` (the paper's construction, default): the artificial entity is
      the lift of the query's surviving *base* cells -- tight, and exact in
      every workload we generate, but in principle it can under-estimate
      associations that exist only at coarse levels (two entities meeting in
      the same district but never in the same building);
    * ``"per_level"``: every level keeps all query cells not explicitly pruned
      at that level, which is strictly admissible for any measure satisfying
      the Section 3.2 properties (the conservative choice, at the price of a
      much looser bound at coarse levels).
    """
    query_sizes = query.level_sizes()
    if mode == "lift":
        survivors = state.lifted_surviving_counts(query)
    elif mode == "per_level":
        survivors = state.surviving_counts()
    else:
        raise ValueError(f"unknown bound mode {mode!r}; expected 'lift' or 'per_level'")
    overlaps = [
        (surviving, total, surviving)
        for surviving, total in zip(survivors, query_sizes)
    ]
    if all(surviving == 0 for surviving, _total, _shared in overlaps):
        return 0.0
    value = measure.score_levels(overlaps)
    # Clamp for safety against floating point drift; bounds must stay in [0, 1].
    return min(max(value, 0.0), 1.0)
