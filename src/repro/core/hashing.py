"""The hierarchical MinHash family (Section 4.2.1).

A family of ``n_h`` universal hash functions maps every *base* ST-cell
``(t, l)`` -- encoded as the integer ``t * |L| + index(l)`` -- to a value in
``[0, |S| - 1]`` where ``|S| = |L| * horizon`` is the size of the ST-cell
universe.  Cells at coarser levels are hashed through the paper's parent
constraint:

    ``h_u(t, l_x) = min over children l_c of l_x of h_u(t, l_c)``

applied recursively, i.e. the hash of a coarse cell is the minimum hash of
all its *base* descendants at the same time.  This guarantees Theorem 1
(signatures at coarser levels are element-wise no larger than at finer
levels) and makes signatures of different levels comparable, which is what
the MinSigTree's pruning relies on.

Hash evaluation is vectorised with numpy across the whole family and cached
per (time, unit) cell because popular coarse cells are shared by many
entities.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.traces.events import STCell
from repro.traces.spatial import SpatialHierarchy

__all__ = ["HierarchicalHashFamily"]

# A Mersenne prime: universal hashing modulus.  Coefficients and (reduced)
# cell codes are both below 2^31, so products fit comfortably in uint64.
_MERSENNE_PRIME = (1 << 31) - 1


class HierarchicalHashFamily:
    """``n_h`` universal hash functions over ST-cells with the parent constraint.

    Parameters
    ----------
    hierarchy:
        The sp-index; needed to enumerate base descendants of coarse units.
    horizon:
        Number of base temporal units; together with the number of base
        spatial units it fixes the hash range ``|S|``.
    num_hashes:
        Family size ``n_h`` (the signature dimensionality).
    seed:
        Seed for the hash coefficients; two families built with the same seed
        and shape are identical, which the incremental-update path relies on.
    """

    def __init__(
        self,
        hierarchy: SpatialHierarchy,
        horizon: int,
        num_hashes: int,
        seed: int = 0,
    ) -> None:
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        hierarchy.validate()
        self.hierarchy = hierarchy
        self.horizon = int(horizon)
        self.num_hashes = int(num_hashes)
        self.seed = int(seed)
        self.num_base_units = hierarchy.num_base_units
        #: Size of the ST-cell universe; hash values live in [0, hash_range).
        self.hash_range = self.num_base_units * self.horizon
        if self.hash_range >= _MERSENNE_PRIME:
            raise ValueError(
                f"ST-cell universe of size {self.hash_range} exceeds the hash modulus; "
                "reduce the horizon or the number of base units"
            )

        rng = np.random.default_rng(seed)
        # Multipliers must be non-zero modulo the prime for universality.
        self._a = rng.integers(1, _MERSENNE_PRIME, size=self.num_hashes, dtype=np.uint64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=self.num_hashes, dtype=np.uint64)
        # Cache of hash vectors per cell; keyed by (time, unit_id).
        self._cell_cache: Dict[Tuple[int, str], np.ndarray] = {}
        # Cache of base descendant index arrays per non-base unit.
        self._descendant_indexes: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_base_cell(self, time: int, unit_id: str) -> int:
        """Integer code of a base ST-cell (row-major over time then unit)."""
        index = self.hierarchy.base_unit_index(unit_id)
        return int(time) * self.num_base_units + index

    def _codes_for_unit(self, time: int, unit_id: str) -> np.ndarray:
        """Codes of all base descendants of ``unit_id`` at ``time``."""
        indexes = self._descendant_indexes.get(unit_id)
        if indexes is None:
            descendants = self.hierarchy.base_descendants(unit_id)
            indexes = np.array(
                [self.hierarchy.base_unit_index(base) for base in descendants],
                dtype=np.uint64,
            )
            self._descendant_indexes[unit_id] = indexes
        return np.uint64(time) * np.uint64(self.num_base_units) + indexes

    # ------------------------------------------------------------------
    # Hash evaluation
    # ------------------------------------------------------------------
    def _hash_codes(self, codes: np.ndarray) -> np.ndarray:
        """Hash a vector of cell codes with every function: shape (n_h, len(codes))."""
        if codes.size == 0:
            return np.empty((self.num_hashes, 0), dtype=np.int64)
        reduced = codes.astype(np.uint64) % np.uint64(_MERSENNE_PRIME)
        # a, reduced < 2^31, so a * reduced < 2^62 fits in uint64.
        product = (self._a[:, None] * reduced[None, :] + self._b[:, None]) % np.uint64(
            _MERSENNE_PRIME
        )
        return (product % np.uint64(self.hash_range)).astype(np.int64)

    def hash_base_cell(self, time: int, unit_id: str) -> np.ndarray:
        """Hash vector (length ``n_h``) of a base ST-cell."""
        code = np.array([self.encode_base_cell(time, unit_id)], dtype=np.uint64)
        return self._hash_codes(code)[:, 0]

    def hash_cell(self, cell: STCell) -> np.ndarray:
        """Hash vector of an ST-cell at any level (cached).

        For base cells this is the direct universal hash; for coarser cells it
        is the element-wise minimum over all base descendants at the same
        time, which realises the parent constraint exactly.
        """
        key = (cell.time, cell.unit)
        cached = self._cell_cache.get(key)
        if cached is not None:
            return cached
        unit = self.hierarchy.unit(cell.unit)
        if unit.is_base:
            values = self.hash_base_cell(cell.time, cell.unit)
        else:
            codes = self._codes_for_unit(cell.time, cell.unit)
            values = self._hash_codes(codes).min(axis=1)
        self._cell_cache[key] = values
        return values

    def hash_value(self, function_index: int, cell: STCell) -> int:
        """Scalar hash ``h_u(cell)`` for one function of the family."""
        if not 0 <= function_index < self.num_hashes:
            raise IndexError(f"hash function index {function_index} out of range")
        return int(self.hash_cell(cell)[function_index])

    def hash_matrix(self, cells: Iterable[STCell]) -> np.ndarray:
        """Stack hash vectors of many cells into a matrix of shape (n_cells, n_h)."""
        rows = [self.hash_cell(cell) for cell in cells]
        if not rows:
            return np.empty((0, self.num_hashes), dtype=np.int64)
        return np.stack(rows, axis=0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_size(self) -> int:
        """Number of cached cell hash vectors (useful for memory accounting)."""
        return len(self._cell_cache)

    def clear_cache(self) -> None:
        """Drop the cell hash cache (e.g. between unrelated experiments)."""
        self._cell_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HierarchicalHashFamily(num_hashes={self.num_hashes}, "
            f"range={self.hash_range}, seed={self.seed})"
        )
